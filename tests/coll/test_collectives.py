"""Tests for the NIC-based collective extensions (barrier, allreduce)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ReproError
from repro.mcast.manager import install_group, next_group_id
from repro.net import BernoulliLoss, PacketType, ScriptedLoss
from repro.trees import build_tree


def make_cluster(n=8, loss=None, seed=0, **cfg):
    return Cluster(ClusterConfig(n_nodes=n, seed=seed, **cfg), loss=loss)


def install_coll_group(cluster, shape="binomial"):
    gid = next_group_id()
    tree = build_tree(
        0, range(1, cluster.n_nodes), shape=shape,
        cost=cluster.cost, size=64,
    )
    install_group(cluster, gid, tree)
    return gid


def run_allreduce(cluster, gid, values, op="sum", rounds=1):
    """values: dict node -> list of per-round contributions."""
    results = {i: [] for i in range(cluster.n_nodes)}

    def program(i):
        port = cluster.port(i)
        for r in range(rounds):
            out = yield from cluster.node(i).coll.allreduce(
                port, gid, values[i][r], op=op
            )
            results[i].append(out)

    procs = [
        cluster.spawn(program(i), name=f"coll[{i}]")
        for i in range(cluster.n_nodes)
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    return results


class TestNicAllreduce:
    def test_sum(self):
        cluster = make_cluster(8)
        gid = install_coll_group(cluster)
        values = {i: [i * 10] for i in range(8)}
        results = run_allreduce(cluster, gid, values)
        expected = sum(i * 10 for i in range(8))
        assert all(results[i] == [expected] for i in range(8))

    @pytest.mark.parametrize("op,expected", [
        ("min", 0), ("max", 70), ("prod", 0),
    ])
    def test_other_ops(self, op, expected):
        cluster = make_cluster(8)
        gid = install_coll_group(cluster)
        values = {i: [i * 10] for i in range(8)}
        results = run_allreduce(cluster, gid, values, op=op)
        assert all(results[i] == [expected] for i in range(8))

    def test_unknown_op_rejected(self):
        cluster = make_cluster(2)
        gid = install_coll_group(cluster)
        with pytest.raises(ReproError):
            next(cluster.node(0).coll.allreduce(cluster.port(0), gid, 1,
                                                op="xor"))

    def test_multiple_rounds_epochs_isolated(self):
        cluster = make_cluster(6)
        gid = install_coll_group(cluster)
        values = {i: [i, i * 100, -i] for i in range(6)}
        results = run_allreduce(cluster, gid, values, rounds=3)
        sums = [sum(values[i][r] for i in range(6)) for r in range(3)]
        assert all(results[i] == sums for i in range(6))

    def test_state_cleaned_after_completion(self):
        cluster = make_cluster(6)
        gid = install_coll_group(cluster)
        run_allreduce(cluster, gid, {i: [1] for i in range(6)})
        cluster.run()
        for node in cluster.nodes:
            coll_state = node.coll._state.get(gid)
            if coll_state is not None:
                assert coll_state.epochs == {}

    def test_chain_tree(self):
        cluster = make_cluster(5)
        gid = install_coll_group(cluster, shape="chain")
        results = run_allreduce(cluster, gid, {i: [2**i] for i in range(5)})
        assert all(results[i] == [31] for i in range(5))

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n=st.integers(min_value=2, max_value=9),
        vals=st.lists(st.integers(min_value=-100, max_value=100),
                      min_size=9, max_size=9),
        shape=st.sampled_from(["binomial", "chain", "flat", "optimal"]),
    )
    def test_property_sum_correct(self, n, vals, shape):
        cluster = make_cluster(n)
        gid = install_coll_group(cluster, shape=shape)
        values = {i: [vals[i]] for i in range(n)}
        results = run_allreduce(cluster, gid, values)
        expected = sum(vals[:n])
        assert all(results[i] == [expected] for i in range(n))


class TestNicBarrier:
    def test_barrier_waits_for_slowest(self):
        cluster = make_cluster(6)
        gid = install_coll_group(cluster)
        exits = {}

        def program(i):
            yield from cluster.node(i).host.compute(i * 50.0)
            yield from cluster.node(i).coll.barrier(cluster.port(i), gid)
            exits[i] = cluster.now

        procs = [cluster.spawn(program(i)) for i in range(6)]
        cluster.run(until=cluster.sim.all_of(procs))
        assert min(exits.values()) >= 250.0
        assert max(exits.values()) - min(exits.values()) < 40.0

    def test_repeated_barriers(self):
        cluster = make_cluster(4)
        gid = install_coll_group(cluster)
        counts = []

        def program(i):
            for _ in range(4):
                yield from cluster.node(i).coll.barrier(cluster.port(i), gid)
            counts.append(i)

        procs = [cluster.spawn(program(i)) for i in range(4)]
        cluster.run(until=cluster.sim.all_of(procs))
        assert len(counts) == 4

    def test_nic_barrier_faster_than_dissemination(self):
        # log(n) host round trips vs one NIC tree sweep.
        from repro.mpi import Communicator

        def barrier_time(nic):
            cluster = make_cluster(16)
            comm = Communicator(cluster)
            times = {}

            def program(ctx):
                # group-creation warmup for the NIC path
                yield from ctx.barrier(nic=nic)
                t0 = ctx.sim.now
                yield from ctx.barrier(nic=nic)
                times[ctx.rank] = ctx.sim.now - t0

            comm.run(program)
            return max(times.values())

        t_host = barrier_time(False)
        t_nic = barrier_time(True)
        assert t_nic < t_host


class TestReliability:
    def test_lost_up_recovered(self):
        loss = ScriptedLoss(
            lambda p: p.header.ptype is PacketType.CONTROL
            and p.header.info.get("coll") == "up"
        )
        cluster = make_cluster(6, loss=loss)
        gid = install_coll_group(cluster)
        results = run_allreduce(cluster, gid, {i: [i] for i in range(6)})
        assert all(results[i] == [15] for i in range(6))
        assert any(n.coll.up_resends for n in cluster.nodes)

    def test_lost_down_recovered(self):
        loss = ScriptedLoss(
            lambda p: p.header.ptype is PacketType.CONTROL
            and p.header.info.get("coll") == "down"
        )
        cluster = make_cluster(6, loss=loss)
        gid = install_coll_group(cluster)
        results = run_allreduce(cluster, gid, {i: [i] for i in range(6)})
        assert all(results[i] == [15] for i in range(6))
        # Recovery path: either the root's DOWN timer fires, or the
        # stranded child's UP resend provokes a fresh DOWN — both count.
        assert any(
            n.coll.down_resends or n.coll.up_resends for n in cluster.nodes
        )

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        rate=st.floats(min_value=0.0, max_value=0.2),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_property_allreduce_under_loss(self, rate, seed):
        cluster = make_cluster(5, loss=BernoulliLoss(rate), seed=seed)
        gid = install_coll_group(cluster)
        values = {i: [i + 1, (i + 1) * 3] for i in range(5)}
        results = run_allreduce(cluster, gid, values, rounds=2)
        assert all(results[i] == [15, 45] for i in range(5))


class TestMPIIntegration:
    def test_mpi_allreduce_both_paths(self):
        from repro.mpi import Communicator

        for nic in (False, True):
            cluster = make_cluster(8)
            comm = Communicator(cluster)
            results = {}

            def program(ctx):
                out = yield from ctx.allreduce(ctx.rank + 1, op="sum",
                                               nic=nic)
                results[ctx.rank] = out

            comm.run(program)
            assert all(results[r] == 36 for r in range(8)), nic

    def test_mpi_allreduce_min(self):
        from repro.mpi import Communicator

        cluster = make_cluster(5)
        comm = Communicator(cluster)
        results = {}

        def program(ctx):
            out = yield from ctx.allreduce(10 - ctx.rank, op="min", nic=True)
            results[ctx.rank] = out

        comm.run(program)
        assert all(v == 6 for v in results.values())

    def test_rdma_bcast_large_message(self):
        from repro.mpi import Communicator

        cluster = make_cluster(8)
        comm = Communicator(cluster, nic_bcast_rdma=True)
        results = {}

        def program(ctx):
            value = "bulk" if ctx.rank == 0 else None
            value = yield from ctx.bcast(root=0, size=65536, payload=value)
            results[ctx.rank] = value

        comm.run(program)
        assert all(results[r] == "bulk" for r in range(8))
        for node in cluster.nodes:
            assert node.memory.registered_bytes == 0

    def test_rdma_bcast_beats_host_rendezvous_bcast(self):
        from repro.mpi import Communicator

        def bcast_time(rdma):
            cluster = make_cluster(16)
            comm = Communicator(cluster, nic_bcast_rdma=rdma)
            times = {}

            def program(ctx):
                yield from ctx.bcast(root=0, size=65536)  # warmup/group
                yield from ctx.barrier()
                t0 = ctx.sim.now
                yield from ctx.bcast(root=0, size=65536)
                times[ctx.rank] = ctx.sim.now - t0

            comm.run(program)
            return max(times.values())

        t_host = bcast_time(False)
        t_rdma = bcast_time(True)
        assert t_rdma < t_host
