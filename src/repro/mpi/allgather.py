"""All-to-all broadcast (MPI_Allgather): ring vs concurrent NIC multicasts.

The second collective named in the paper's future work ("Alltoall
broadcast", §7).  Host-based baseline: the classic ring — n-1 steps of
neighbor exchange, each relaying the block it just received.  NIC-based:
every rank owns a multicast group rooted at itself; one call is n
concurrent NIC-based multicasts, which the decentralized reliability
scheme lets proceed independently (no central manager, no credits).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.mcast.group import CreateGroupCommand, local_views
from repro.mcast.manager import next_group_id
from repro.trees.builder import build_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import RankContext

__all__ = ["host_allgather", "nic_allgather"]

_RING_TAG = -45
_AG_GROUP_TAG = -46


def host_allgather(
    ctx: "RankContext", size: int, value: Any
) -> Generator[Any, Any, list[Any]]:
    """Ring allgather: n-1 neighbor-exchange steps."""
    yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
    n = ctx.comm.size
    results: list[Any] = [None] * n
    results[ctx.rank] = value
    if n == 1:
        return results
    right = (ctx.rank + 1) % n
    left = (ctx.rank - 1) % n
    carrying_rank, carrying = ctx.rank, value
    for _step in range(n - 1):
        yield from ctx.send(
            right, size, tag=_RING_TAG,
            payload={"rank": carrying_rank, "value": carrying},
        )
        entry = yield from ctx.recv(source=left, tag=_RING_TAG)
        carrying_rank = entry["payload"]["rank"]
        carrying = entry["payload"]["value"]
        results[carrying_rank] = carrying
    return results


def _ensure_allgather_groups(ctx: "RankContext") -> Generator[Any, Any, dict]:
    """Create one multicast group per rank, all at once.

    A three-phase handshake (everyone sends specs, everyone installs and
    acks, everyone collects acks) — the naive per-root sequential
    creation would deadlock when every rank is a root simultaneously.
    """
    comm = ctx.comm
    groups = getattr(comm, "_allgather_groups", None)
    known = getattr(ctx, "_allgather_known", False)
    if groups is not None and known:
        return groups
    n = comm.size
    # Phase A: this rank builds ITS tree and sends every member its view.
    group_id = next_group_id()
    members = [comm.node_of_rank[r] for r in range(n)]
    tree = build_tree(
        ctx.node.id,
        [m for m in members if m != ctx.node.id],
        shape="optimal",
        cost=ctx.cost,
        size=ctx.cost.mpi_eager_max // 4,
    )
    views = local_views(group_id, tree, port_num=ctx.port.port_num)
    yield ctx.sim.timeout(ctx.cost.host_send_post)
    ctx.node.nic.post_command(
        CreateGroupCommand(port=ctx.port.port_num, state=views[ctx.node.id])
    )
    for rank in range(n):
        if rank == ctx.rank:
            continue
        member_node = comm.node_of_rank[rank]
        yield from ctx.send(
            rank, 96, tag=_AG_GROUP_TAG,
            payload={"kind": "spec", "root_rank": ctx.rank,
                     "group_id": group_id, "view": views[member_node]},
        )
    # Phases B+C: install the n-1 incoming specs (acking each), while
    # also collecting the n-1 acks for our own group.  Specs and acks
    # interleave arbitrarily (especially under loss-induced reordering).
    group_of_rank = {ctx.rank: group_id}
    specs_needed = n - 1
    acks_needed = n - 1
    while specs_needed or acks_needed:
        entry = yield from ctx.recv(tag=_AG_GROUP_TAG)
        kind = entry["payload"]["kind"]
        if kind == "spec":
            specs_needed -= 1
            root_rank = entry["payload"]["root_rank"]
            group_of_rank[root_rank] = entry["payload"]["group_id"]
            yield ctx.sim.timeout(ctx.cost.host_send_post)
            ctx.node.nic.post_command(
                CreateGroupCommand(
                    port=ctx.port.port_num, state=entry["payload"]["view"]
                )
            )
            yield from ctx.send(
                root_rank, 0, tag=_AG_GROUP_TAG, payload={"kind": "ack"}
            )
        else:
            assert kind == "ack", kind
            acks_needed -= 1
    # Publish on the communicator once; every rank verifies agreement.
    existing = getattr(comm, "_allgather_groups", None)
    if existing is None:
        comm._allgather_groups = group_of_rank
    else:
        existing.update(group_of_rank)
    ctx._allgather_known = True
    return comm._allgather_groups


def nic_allgather(
    ctx: "RankContext", size: int, value: Any
) -> Generator[Any, Any, list[Any]]:
    """n concurrent NIC-based multicasts, one per rank."""
    yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
    comm = ctx.comm
    n = comm.size
    results: list[Any] = [None] * n
    results[ctx.rank] = value
    if n == 1:
        return results
    groups = yield from _ensure_allgather_groups(ctx)
    rank_of_group = {gid: rank for rank, gid in groups.items()}
    handle = yield from ctx.node.mcast.multicast_send(
        ctx.port, groups[ctx.rank], size,
        info={"ag_rank": ctx.rank, "ag_value": value},
    )
    del handle
    # Collect exactly one block per other rank.  Per-group deliveries
    # are ordered, so the first unconsumed completion of each group is
    # this round's; any further ones (a fast sender's next round) stay
    # stashed for the next call.
    pending_ranks = set(range(n)) - {ctx.rank}
    for gid, stashed in ctx.group_pending.items():
        rank = rank_of_group.get(gid)
        if rank in pending_ranks and stashed:
            completion = stashed.pop(0)
            results[rank] = completion.info["ag_value"]
            pending_ranks.discard(rank)
            yield ctx.sim.timeout(ctx.cost.memcpy_time(size))
    while pending_ranks:
        completion = yield from ctx._pump()
        rank = rank_of_group.get(completion.group)
        if rank in pending_ranks:
            results[rank] = completion.info["ag_value"]
            pending_ranks.discard(rank)
            yield ctx.sim.timeout(ctx.cost.memcpy_time(size))
        else:
            ctx._stash(completion)
    return results
