"""Spanning-tree construction for multicast.

Trees are constructed **at the host** (paper §5: the LANai is too slow)
and preposted to the NICs as group tables.  The package provides the
binomial tree MPICH's host-based broadcast uses, reference shapes (flat,
chain, k-ary), and the latency-optimal postal-model tree of Bar-Noy &
Kipnis that the paper's NIC-based multicast uses — whose shape depends on
the message size through the cost model.
"""

from repro.trees.base import SpanningTree
from repro.trees.binomial import binomial_tree
from repro.trees.builder import TREE_SHAPES, build_tree, check_deadlock_ordering
from repro.trees.manager import (
    Regraft,
    RepairResult,
    TreeManager,
    check_feasible,
)
from repro.trees.metrics import TreeStats, tree_stats
from repro.trees.postal import (
    PostalParams,
    optimal_postal_tree,
    postal_completion_time,
    postal_params,
)
from repro.trees.shapes import chain_tree, flat_tree, kary_tree

__all__ = [
    "PostalParams",
    "Regraft",
    "RepairResult",
    "SpanningTree",
    "TREE_SHAPES",
    "TreeManager",
    "TreeStats",
    "binomial_tree",
    "build_tree",
    "chain_tree",
    "check_deadlock_ordering",
    "check_feasible",
    "flat_tree",
    "kary_tree",
    "optimal_postal_tree",
    "postal_completion_time",
    "postal_params",
    "tree_stats",
]
