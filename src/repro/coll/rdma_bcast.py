"""NIC-based broadcast beyond the eager limit, with RDMA-style delivery.

The paper restricts its MPI integration to eager-sized messages because
MPICH-GM switches to a rendezvous remote-DMA protocol above 16 K, and
leaves "the NIC-based multicast using remote DMA operations" to future
work (§5, §7).  This module implements that extension:

1. the root multicasts a small RENDEZVOUS control message through the
   group (carried in the ordinary NIC-based multicast path);
2. every destination host registers its receive buffer and replies with
   a 0-byte clear-to-send unicast to the root;
3. the root multicasts the bulk data through the same group; because
   every destination preregistered, delivery is zero-copy (no eager
   memcpy at the receivers).

Steps (1) and (3) both enjoy NIC forwarding and per-packet pipelining;
step (2) is the rendezvous round trip the protocol pays for zero-copy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import RankContext

__all__ = ["rdma_bcast"]


def rdma_bcast(
    ctx: "RankContext", root: int, size: int, payload: Any, group_id: int
) -> Generator[Any, Any, Any]:
    """Large-message NIC-based broadcast for the MPI layer.

    Requires the (root-rooted) broadcast group to exist already; the
    caller (``repro.mpi.bcast``) handles demand-driven creation.
    """
    from repro.mpi.bcast import _group_recv

    if ctx.rank == root:
        # (1) rendezvous announcement through the group.
        handle = yield from ctx.node.mcast.multicast_send(
            ctx.port, group_id, 0, info={"rdma_bcast": "rts", "size": size}
        )
        del handle
        # (2) every destination registers and replies CTS.
        cts_needed = ctx.comm.size - 1
        while cts_needed:
            completion = yield from ctx._pump()
            info = completion.info.get("mpi", {})
            if info.get("kind") == "rdma_bcast_cts":
                cts_needed -= 1
            else:
                ctx._stash(completion)
        region = ctx.node.memory.register(size)
        region.pin()
        yield ctx.sim.timeout(ctx.cost.host_register_cost)
        # (3) the bulk data rides the NIC-based multicast.
        handle = yield from ctx.node.mcast.multicast_send(
            ctx.port, group_id, size,
            info={"rdma_bcast": "data", "mpi_payload": payload},
        )
        yield handle.done  # buffer reusable once every subtree acked
        region.unpin()
        ctx.node.memory.deregister(region)
        return payload

    # Destinations: take the announcement, register, CTS, take the data.
    rts = yield from _group_recv(ctx, group_id)
    assert rts.info.get("rdma_bcast") == "rts", rts.info
    region = ctx.node.memory.register(rts.info["size"])
    region.pin()
    yield ctx.sim.timeout(ctx.cost.host_register_cost)
    root_node = ctx.comm.node_of_rank[root]
    handle = yield from ctx.port.send(
        root_node, 0, info={"mpi": {"kind": "rdma_bcast_cts",
                                    "src_rank": ctx.rank}}
    )
    del handle
    data = yield from _group_recv(ctx, group_id)
    # Zero-copy: the NIC DMAed straight into the registered user buffer;
    # no eager memcpy here — that is the point of the rendezvous.
    region.unpin()
    ctx.node.memory.deregister(region)
    return data.info.get("mpi_payload")
