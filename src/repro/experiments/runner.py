"""Measurement harness: the paper's timing methodology in simulation.

The paper times 10,000 iterations after 20 warmup iterations on real
hardware; the simulator is deterministic, so far fewer iterations give
stable means (loss-free runs are exactly periodic).  Methodology notes:

* **Multisend (Fig. 3)** — "the source node transmits a message to
  multiple destinations and waits for an acknowledgment from the last
  destination": one iteration = post → all GM acks back at the root.
* **Multicast (Figs. 4/5)** — "wait for an acknowledgment from one of
  the leaf nodes ... repeated with different leaf nodes ... maximum
  taken": we record every destination's delivery time each iteration
  and add the measured 0-byte unicast (the leaf's ack trip), then take
  the maximum over destinations — the same quantity in one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Any, Generator

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast.schemes import create_scheme, get_scheme, resolve_scheme
from repro.mpi.comm import Communicator
from repro.trees import build_tree

__all__ = [
    "MulticastMeasurement",
    "measure_unicast",
    "measure_multisend",
    "measure_gm_multicast",
    "measure_mpi_bcast",
    "PAPER_SIZES",
    "MPI_SIZES",
]

#: Message sizes swept in the paper's GM-level figures.
PAPER_SIZES = [1, 4, 16, 64, 256, 512, 1024, 2048, 4096, 8192, 16384]
#: MPI-level sweep ends at the largest eager message.
MPI_SIZES = [1, 4, 16, 64, 256, 512, 1024, 2048, 4096, 8192, 16287]

DEFAULT_ITERATIONS = 30
DEFAULT_WARMUP = 5


def _cluster(n: int, cost: GMCostModel | None, seed: int) -> Cluster:
    return Cluster(
        ClusterConfig(n_nodes=n, cost=cost or GMCostModel(), seed=seed)
    )


def measure_unicast(
    cost: GMCostModel | None = None,
    size: int = 0,
    iterations: int = 10,
    seed: int = 0,
) -> float:
    """Mean one-way GM latency (send post → receive event at the host)."""
    cluster = _cluster(2, cost, seed)
    deliveries: list[float] = []
    starts: list[float] = []

    def receiver() -> Generator:
        port = cluster.port(1)
        for _ in range(iterations):
            yield from port.receive()
            deliveries.append(cluster.now)
            yield from port.provide_receive_buffer()

    def sender() -> Generator:
        port = cluster.port(0)
        for _ in range(iterations):
            starts.append(cluster.now)
            handle = yield from port.send(1, size)
            yield handle.done

    s = cluster.spawn(sender())
    r = cluster.spawn(receiver())
    cluster.run(until=cluster.sim.all_of([s, r]))
    return mean(d - t0 for d, t0 in zip(deliveries, starts))


def measure_multisend(
    n_dest: int,
    size: int,
    scheme: str,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    cost: GMCostModel | None = None,
    seed: int = 0,
) -> float:
    """Fig. 3 metric: mean time from post to the last destination's ack.

    ``scheme``: a registry key (``"nic_multisend"``, ``"host_based"``)
    or the legacy spelling ``"nb"`` / ``"hb"``.
    """
    n = n_dest + 1
    cluster = _cluster(n, cost, seed)
    tree = build_tree(0, range(1, n), shape="flat")
    durations: list[float] = []
    total = warmup + iterations

    bound = create_scheme(
        resolve_scheme(scheme, context="multisend"), cluster, tree
    )
    bound.install()

    def root() -> Generator:
        for it in range(total):
            start = cluster.now
            yield from bound.send(size)
            if it >= warmup:
                durations.append(cluster.now - start)

    def receiver(i: int) -> Generator:
        port = cluster.port(i)
        for _ in range(total):
            yield from port.receive()
            yield from port.provide_receive_buffer()

    procs = [cluster.spawn(root())]
    procs += [cluster.spawn(receiver(i)) for i in range(1, n)]
    cluster.run(until=cluster.sim.all_of(procs))
    return mean(durations)


@dataclass
class MulticastMeasurement:
    """Per-size multicast timing."""

    latency: float  #: the paper's metric (max leaf delivery + leaf ack)
    per_dest_delivery: dict[int, float]  #: mean delivery per destination
    ack_trip: float  #: measured 0-byte unicast added as the leaf ack


def measure_gm_multicast(
    n_nodes: int,
    size: int,
    scheme: str,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    cost: GMCostModel | None = None,
    seed: int = 0,
    tree_shape: str | None = None,
) -> MulticastMeasurement:
    """Figs. 5 metric for one (system size, message size, scheme) point.

    ``scheme``: a registry key (``"nic_based"``, ``"host_based"``,
    ``"nic_assisted"``) or the legacy spelling ``"nb"`` / ``"hb"``.
    The spanning tree defaults to the scheme's registered shape
    (optimal for NIC-based, binomial for the host-driven baselines).
    """
    cost = cost or GMCostModel()
    cluster = _cluster(n_nodes, cost, seed)
    dests = list(range(1, n_nodes))
    total = warmup + iterations
    sums: dict[int, float] = {d: 0.0 for d in dests}
    iteration_start = [0.0]
    round_done: list[Any] = [None]

    def begin_round() -> None:
        remaining = set(dests)
        ev = cluster.sim.event()
        round_done[0] = (remaining, ev)
        iteration_start[0] = cluster.now

    def mark_delivered(dest: int, it: int) -> None:
        if it >= warmup:
            sums[dest] += cluster.now - iteration_start[0]
        remaining, ev = round_done[0]
        remaining.discard(dest)
        if not remaining:
            ev.succeed(None)

    spec = get_scheme(resolve_scheme(scheme, context="multicast"))
    shape = tree_shape or spec.default_tree
    if spec.tree_uses_cost:
        tree = build_tree(0, dests, shape=shape, cost=cost, size=size)
    else:
        tree = build_tree(0, dests, shape=shape)
    bound = spec.cls(spec, cluster, tree)
    bound.install()

    def root() -> Generator:
        for _ in range(total):
            begin_round()
            yield from bound.post(size)
            yield round_done[0][1]

    def member(i: int) -> Generator:
        port = cluster.port(i)
        for it in range(total):
            yield from port.receive()
            mark_delivered(i, it)
            yield from port.provide_receive_buffer()
            yield from bound.relay(i, size)

    procs = [cluster.spawn(root())]
    procs += [cluster.spawn(member(i)) for i in dests]
    cluster.run(until=cluster.sim.all_of(procs))

    per_dest = {d: sums[d] / iterations for d in dests}
    ack_trip = measure_unicast(cost, size=0)
    return MulticastMeasurement(
        latency=max(per_dest.values()) + ack_trip,
        per_dest_delivery=per_dest,
        ack_trip=ack_trip,
    )


def measure_mpi_bcast(
    n_ranks: int,
    size: int,
    nic: bool,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    cost: GMCostModel | None = None,
    seed: int = 0,
) -> float:
    """Fig. 4 metric: mean broadcast latency at the MPI level.

    One iteration = root's bcast entry to the last rank's bcast exit,
    plus the measured 0-byte unicast for the leaf's acknowledgment (as
    in the GM-level methodology).  Ranks are pre-synchronized with a
    barrier per iteration, mirroring the paper's loop.
    """
    cost = cost or GMCostModel()
    cluster = _cluster(n_ranks, cost, seed)
    comm = Communicator(cluster, nic_bcast=nic)
    root_enter: dict[int, float] = {}
    last_exit: dict[int, float] = {}
    total = warmup + iterations

    def program(ctx) -> Generator:
        for it in range(total):
            yield from ctx.barrier()
            if ctx.rank == 0:
                root_enter[it] = ctx.sim.now
            yield from ctx.bcast(root=0, size=size)
            last_exit[it] = max(last_exit.get(it, 0.0), ctx.sim.now)

    comm.run(program)
    durations = [
        last_exit[it] - root_enter[it] for it in range(warmup, total)
    ]
    ack_trip = measure_unicast(cost, size=0)
    return mean(durations) + ack_trip
