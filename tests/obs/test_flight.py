"""Flight-recorder unit behavior + the non-perturbation guarantees.

The recorder's core promise is that attaching it never moves an event:
instrumentation sites do one attribute check when detached and one list
append when attached, and neither touches the event queue.  The tests
here pin that promise against the two committed golden fixtures — the
54-record 8-node multicast trace and the fig3 quick tables — with the
recorder attached at ``sample=1.0`` and detached.
"""

from repro.obs.flight import (
    EV_STAGE,
    EV_TRACE,
    ORIGIN_STRIDE,
    FlightRecorder,
    event_to_dict,
    gauge_series,
)

from tests.mcast.test_golden_trace import FIXTURE, golden_lines


# -- unit behavior ----------------------------------------------------------

def test_trace_ids_are_per_origin():
    fr = FlightRecorder()
    assert fr.begin(0.0, 3, "mcast") == 3 * ORIGIN_STRIDE
    assert fr.begin(1.0, 3, "mcast") == 3 * ORIGIN_STRIDE + 1
    assert fr.begin(2.0, 5, "unicast") == 5 * ORIGIN_STRIDE
    assert fr.traces() == [
        3 * ORIGIN_STRIDE, 3 * ORIGIN_STRIDE + 1, 5 * ORIGIN_STRIDE
    ]


def test_sampling_is_a_deterministic_counter_walk():
    fr = FlightRecorder(sample=0.25)
    tids = [fr.begin(float(i), 0, "mcast") for i in range(20)]
    sampled = [i for i, t in enumerate(tids) if t >= 0]
    assert len(sampled) == 5  # floor walk: exactly a quarter
    # Re-running the same walk gives the same decisions.
    fr2 = FlightRecorder(sample=0.25)
    assert [fr2.begin(float(i), 0, "m") for i in range(20)] == tids


def test_sample_zero_records_nothing():
    fr = FlightRecorder(sample=0.0)
    assert fr.begin(0.0, 0, "mcast") == -1
    assert len(fr) == 0


def test_ring_overwrites_oldest_and_reorders_on_read():
    fr = FlightRecorder(cap=4)
    for i in range(6):
        fr.record(float(i), 0, "tx", node=0, uid=i)
    assert fr.dropped == 2
    assert [ev[4] for ev in fr.events] == [2, 3, 4, 5]


def test_fork_absorb_roundtrip():
    fr = FlightRecorder(sample=0.5, cap=128)
    shard = fr.fork()
    assert (shard.sample, shard.cap) == (0.5, 128)
    shard.record(1.0, 7, "deliver", node=2, uid=9)
    fr.absorb(shard.events)
    assert len(fr) == 1 and fr.events[0][EV_TRACE] == 7


def test_event_to_dict_and_gauge_series():
    fr = FlightRecorder()
    fr.note(2.0, "gauge", 3, name="nic.send_buffers_in_use", value=5)
    fr.note(4.0, "gauge", 3, name="nic.send_buffers_in_use", value=2)
    ev = fr.events[0]
    assert event_to_dict(ev) == {
        "t": 2.0, "trace": -1, "stage": "gauge", "node": 3,
        "name": "nic.send_buffers_in_use", "value": 5,
    }
    assert gauge_series(fr.events) == {
        "nic.send_buffers_in_use": [(2.0, 3, 5), (4.0, 3, 2)],
    }


# -- non-perturbation against the golden fixtures ---------------------------

def test_golden_trace_identical_with_flight_attached():
    """Full-sampling hop recording must not move one of the 54 records."""
    fr = FlightRecorder(sample=1.0)
    attached = golden_lines(flight=fr)
    assert attached == FIXTURE.read_text().splitlines()
    # ...and the recorder actually saw the whole flight.
    events = fr.events
    stages = {ev[EV_STAGE] for ev in events}
    assert {"post", "tx", "inject", "deliver", "host_deliver",
            "drop"} <= stages
    # The forced loss puts a Go-back-N resend on the wire: at least one
    # transmission with attempt > 0.
    from repro.obs.flight import EV_EXTRA
    assert any(
        ev[EV_STAGE] == "tx" and (ev[EV_EXTRA] or {}).get("attempt", 0) > 0
        for ev in events
    )
    assert fr.traces() == [0]  # one root message, origin 0, first post


def test_fig3_quick_tables_identical_with_flight_attached():
    """The fig3 sweep renders byte-identically attached vs detached."""
    from repro.experiments.cli import run_figure
    from repro.sim.engine import set_default_flight

    detached = run_figure("fig3", quick=True, jobs=1).render()
    previous = set_default_flight(FlightRecorder(sample=1.0))
    try:
        attached = run_figure("fig3", quick=True, jobs=1).render()
    finally:
        set_default_flight(previous)
    assert attached == detached
