#!/usr/bin/env python
"""Enforce the import layering described in docs/architecture.md.

Three rules are load-bearing enough to gate CI on:

* ``repro.sim`` is the bottom of the stack: it may import nothing from
  the rest of the package except :mod:`repro.perf.counters` (a leaf the
  kernel increments on its hot path);
* ``repro.proto`` is the transport-agnostic reliability core: it sits
  below the protocol engines and must never import ``repro.gm`` or
  ``repro.mcast`` (nor anything above them);
* ``repro.proto.engines`` (the pluggable reliability families) gets the
  same bound pinned *explicitly*: engine senders/receivers serve the
  ``repro.gm`` and ``repro.mcast`` transports and are therefore the
  modules most tempted to import their types — they must talk to
  transports only through the duck-typed transport surface
  (``self.transport``), never by importing ``repro.gm``/``repro.mcast``
  back.  A future widening of the ``proto`` entry cannot silently
  widen this one;
* ``repro.obs`` is the observation layer on *top*: it may import from
  every layer, but nothing outside ``repro.obs``, ``repro.experiments``,
  and ``repro.perf`` may import it back (instrumented layers reach the
  registry only through the duck-typed ``sim.metrics`` slot and the
  flight recorder only through ``sim.flight`` — no instrumentation
  back-edges).  ``repro.obs.flight`` gets its own dedicated back-edge
  check on top of the package-wide one: hot-path layers must never
  grow a direct dependency on the recorder type;
* ``repro.scenario`` sits between the protocol engines and the
  experiment harness: it may import anything below it but never
  ``repro.experiments``, and only ``repro.scenario``,
  ``repro.workload``, ``repro.experiments``, ``repro.perf``, and
  ``repro.obs`` (the observation layer drives specs through the
  harness) may import it back (the engines stay spec-agnostic);
* ``repro.workload`` (sustained-traffic generators) sits just above the
  scenario layer: it may import the engines and ``repro.scenario`` (it
  registers its runner with the harness on import) but never
  ``repro.experiments`` or ``repro.obs``, and only ``repro.workload``,
  ``repro.experiments``, ``repro.perf``, and ``repro.obs`` may import
  it back.

* ``repro.trees`` is pure structure (shapes, backup/repair managers,
  deadlock-feasibility checks): it may never import ``repro.mcast`` —
  the recovery schemes bind a tree manager to a group, not vice versa;
* failure-injector hooks (``FailureInjector.subscribe``) may only be
  subscribed from ``repro.mcast``, ``repro.scenario``, and
  ``repro.workload`` — failure *application* lives in ``repro.net``,
  failure *reaction* above the engines, and nothing else gets to peek.

Imports guarded by ``if TYPE_CHECKING:`` are ignored — annotations may
name types from anywhere without creating a runtime dependency.

Usage: ``python tools/check_layering.py`` (exit 0 = clean).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: package -> module prefixes it may import from ``repro``.
ALLOWED = {
    "sim": ("repro.sim", "repro.perf.counters", "repro.perf"),
    # Per-module exception: the conservative-parallel conductor
    # partitions Topology/Network state, so it may reach one layer up
    # into repro.net (and the shared error types) — but nothing higher;
    # scenario binds it via PartitionSpec, not an import back-edge.
    "sim/parallel.py": (
        "repro.sim",
        "repro.net",
        "repro.errors",
        "repro.perf.counters",
        "repro.perf",
    ),
    "proto": (
        "repro.proto",
        "repro.sim",
        "repro.net",
        "repro.nic",
        "repro.errors",
        "repro.perf.counters",
        "repro.perf",
    ),
    # Explicit pin for the pluggable reliability engines: their
    # sender/receiver pairs are *used by* repro.gm and repro.mcast, so a
    # back-edge import would be an easy mistake and an instant cycle.
    # Engines reach the transport only through the duck-typed
    # ``self.transport`` surface; this entry keeps that true even if the
    # parent ``proto`` entry is ever widened.
    "proto/engines": (
        "repro.proto",
        "repro.sim",
        "repro.net",
        "repro.nic",
        "repro.errors",
        "repro.perf.counters",
        "repro.perf",
    ),
    # Trees are pure structure (shapes, repair, feasibility checks):
    # they may use the cost model (repro.gm) and packet geometry
    # (repro.net) but never the protocol engines — repro.mcast binds a
    # TreeManager to a group, not the other way around.
    "trees": (
        "repro.trees",
        "repro.errors",
        "repro.gm",
        "repro.net",
        "repro.perf",
    ),
    "scenario": (
        "repro.scenario",
        "repro.cluster",
        "repro.config",
        "repro.errors",
        "repro.gm",
        "repro.host",
        "repro.mcast",
        "repro.mpi",
        "repro.net",
        "repro.nic",
        "repro.proto",
        "repro.sim",
        "repro.trees",
        "repro.perf",
    ),
    "workload": (
        "repro.workload",
        "repro.scenario",
        "repro.cluster",
        "repro.config",
        "repro.errors",
        "repro.gm",
        "repro.host",
        "repro.mcast",
        "repro.net",
        "repro.nic",
        "repro.proto",
        "repro.sim",
        "repro.trees",
        "repro.perf",
    ),
}

#: Packages (and top-level modules) allowed to import ``repro.obs``.
OBS_IMPORTERS = ("obs", "experiments", "perf")
#: Packages allowed to import ``repro.obs.flight`` specifically — same
#: set today, but checked separately so a future widening of
#: OBS_IMPORTERS cannot silently hand the hot-path recorder type to a
#: lower layer (instrumentation sites stay duck-typed on ``sim.flight``).
OBS_FLIGHT_IMPORTERS = ("obs", "experiments", "perf")
#: Packages (and top-level modules) allowed to import ``repro.scenario``.
SCENARIO_IMPORTERS = ("scenario", "workload", "experiments", "perf", "obs")
#: Packages (and top-level modules) allowed to import ``repro.workload``.
WORKLOAD_IMPORTERS = ("workload", "experiments", "perf", "obs")

#: Modules allowed to subscribe to failure-injector hooks
#: (``<injector>.subscribe(cb)``).  Failure *detection* is a protocol /
#: scenario concern: the recovery control plane (repro.mcast) and the
#: declarative layer (repro.scenario) react to it; everything else —
#: trees, net internals, the kernel — must stay failure-agnostic, and
#: repro/net/failure.py itself defines the hook.
SUBSCRIBE_ALLOWED = ("mcast", "scenario", "workload")
SUBSCRIBE_ALLOWED_FILES = ("net/failure.py",)


def check_failure_subscribers() -> list[str]:
    """Only the allowed layers may call ``.subscribe(...)``."""
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        rel_parts = path.relative_to(SRC).parts
        owner = rel_parts[0] if len(rel_parts) > 1 else path.stem
        rel_src = path.relative_to(SRC).as_posix()
        if owner in SUBSCRIBE_ALLOWED or rel_src in SUBSCRIBE_ALLOWED_FILES:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "subscribe"
            ):
                rel = path.relative_to(REPO)
                violations.append(
                    f"{rel}:{node.lineno}: only "
                    f"{', '.join(SUBSCRIBE_ALLOWED)} (and net/failure.py) "
                    "may subscribe to failure hooks"
                )
    return violations


def check_back_edges(
    target: str, importers: tuple[str, ...], reason: str
) -> list[str]:
    """No module outside ``importers`` may import ``repro.<target>``."""
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        rel_parts = path.relative_to(SRC).parts
        owner = rel_parts[0] if len(rel_parts) > 1 else path.stem
        if owner in importers:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, module in runtime_imports(tree):
            prefix = f"repro.{target}"
            if module == prefix or module.startswith(prefix + "."):
                rel = path.relative_to(REPO)
                violations.append(
                    f"{rel}:{lineno}: only {', '.join(importers)} may "
                    f"import {prefix} ({reason})"
                )
    return violations


def check_obs_back_edges() -> list[str]:
    return check_back_edges(
        "obs", OBS_IMPORTERS, "instrumentation back-edge"
    )


def check_obs_flight_back_edges() -> list[str]:
    return check_back_edges(
        "obs.flight", OBS_FLIGHT_IMPORTERS,
        "hot paths reach the flight recorder only via sim.flight"
    )


def check_scenario_back_edges() -> list[str]:
    return check_back_edges(
        "scenario", SCENARIO_IMPORTERS, "engines stay spec-agnostic"
    )


def check_workload_back_edges() -> list[str]:
    return check_back_edges(
        "workload", WORKLOAD_IMPORTERS, "runners register via the harness"
    )


def _is_type_checking_guard(node: ast.If) -> bool:
    test = node.test
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def runtime_imports(tree: ast.Module) -> list[tuple[int, str]]:
    """(lineno, module) for every import outside TYPE_CHECKING guards."""
    found: list[tuple[int, str]] = []

    def visit(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                found.extend((node.lineno, a.name) for a in node.names)
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.level == 0:
                    found.append((node.lineno, node.module))
            elif isinstance(node, ast.If):
                if not _is_type_checking_guard(node):
                    visit(node.body)
                visit(node.orelse)
            elif isinstance(
                node,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.With,
                    ast.Try,
                    ast.For,
                    ast.While,
                ),
            ):
                visit(node.body)
                for extra in ("orelse", "finalbody", "handlers"):
                    for sub in getattr(node, extra, []):
                        visit(getattr(sub, "body", [sub]) if isinstance(
                            sub, ast.excepthandler) else [sub])

    visit(tree.body)
    return found


def check_package(package: str, allowed: tuple[str, ...]) -> list[str]:
    violations = []
    target = SRC / package
    if target.suffix == ".py":
        # A single-module exception entry (e.g. ``sim/parallel.py``).
        paths = [target]
    else:
        # Modules with their own ALLOWED entry are checked under that
        # entry's (usually wider) bounds, not the package's.
        exceptions = {
            SRC / key for key in ALLOWED if (SRC / key).suffix == ".py"
        }
        paths = [
            p for p in sorted(target.rglob("*.py")) if p not in exceptions
        ]
    for path in paths:
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, module in runtime_imports(tree):
            if not (module == "repro" or module.startswith("repro.")):
                continue
            if not any(
                module == prefix or module.startswith(prefix + ".")
                for prefix in allowed
            ):
                rel = path.relative_to(REPO)
                violations.append(
                    f"{rel}:{lineno}: repro.{package} must not import "
                    f"{module} (allowed: {', '.join(allowed)})"
                )
    return violations


def main() -> int:
    violations = []
    for package, allowed in ALLOWED.items():
        violations.extend(check_package(package, allowed))
    violations.extend(check_obs_back_edges())
    violations.extend(check_obs_flight_back_edges())
    violations.extend(check_scenario_back_edges())
    violations.extend(check_workload_back_edges())
    violations.extend(check_failure_subscribers())
    if violations:
        print("import layering violations:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(
        f"layering clean: {', '.join(ALLOWED)} respect their bounds; "
        "no repro.obs, repro.scenario, or repro.workload back-edges; "
        "failure hooks subscribed only from sanctioned layers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
