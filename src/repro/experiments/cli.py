"""Command line driver: regenerate the paper's figures.

Usage::

    python -m repro.experiments --figure fig3
    python -m repro.experiments --all --quick
    python -m repro.experiments --all -o EXPERIMENTS-results.md
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import FIGURES

__all__ = ["main"]


def run_figure(figure_id: str, quick: bool):
    module = importlib.import_module(FIGURES[figure_id])
    return module.run(quick=quick)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from 'High Performance and "
        "Reliable NIC-Based Multicast over Myrinet/GM-2' (ICPP 2003).",
    )
    parser.add_argument(
        "--figure", choices=sorted(FIGURES), action="append",
        help="figure(s) to run (repeatable)",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweeps/iterations (seconds instead of minutes)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="also append rendered results to this markdown file",
    )
    args = parser.parse_args(argv)
    targets = sorted(FIGURES) if args.all else (args.figure or [])
    if not targets:
        parser.error("pick --all or at least one --figure")
    chunks: list[str] = []
    for figure_id in targets:
        started = time.time()
        print(f"=== {figure_id} ===", flush=True)
        result = run_figure(figure_id, quick=args.quick)
        text = result.render()
        if "table" in result.extra:
            text += "\n\n" + result.extra["table"]
        if "forwarding_timeline" in result.extra:
            text += "\n\nforwarding timeline: " + ", ".join(
                f"{k}={v:.1f}us"
                for k, v in result.extra["forwarding_timeline"].items()
            )
        print(text)
        print(f"({time.time() - started:.1f}s wall)\n", flush=True)
        chunks.append(text)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n")
        print(f"appended results to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
