"""The host processor model.

The paper's skew experiments measure *host CPU time* — the time a process
spends inside a blocking ``MPI_Bcast``.  The :class:`Host` provides the
compute/blocking vocabulary experiments use and accounts busy time.

Hosts in the testbed are fast (700 MHz PIII vs the 133 MHz LANai): host
work costs come from the cost model and are small; the interesting cost
is *waiting*, which is what the accounting here exposes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.params import GMCostModel
    from repro.sim.engine import Simulator

__all__ = ["Host"]


class Host:
    """The host CPU of one node."""

    def __init__(self, sim: "Simulator", node_id: int, cost: "GMCostModel"):
        self.sim = sim
        self.id = node_id
        self.cost = cost
        self.name = f"host[{node_id}]"
        #: The host CPU.  Experiments that model contention between the
        #: application and communication library can share it; by default
        #: each host runs a single process.
        self.cpu = Resource(sim, 1, name=f"{self.name}.cpu")
        #: Accumulated compute time (µs).
        self.compute_time = 0.0
        #: Accumulated time blocked inside communication calls (µs);
        #: maintained by the MPI layer's blocking operations.
        self.blocked_time = 0.0

    def compute(self, duration: float) -> Generator[Any, Any, None]:
        """Spin the host CPU for *duration* µs of application work."""
        if duration < 0:
            raise ValueError(f"negative compute duration {duration}")
        if duration == 0:
            return
        ev = self.cpu.use_fast(duration)
        if ev is None:
            yield from self.cpu.use(duration)
        else:
            yield ev
        self.compute_time += duration

    def charge_blocked(self, duration: float) -> None:
        """Account *duration* µs spent blocked in a communication call."""
        self.blocked_time += duration

    def reset_accounting(self) -> None:
        self.compute_time = 0.0
        self.blocked_time = 0.0

    def __repr__(self) -> str:
        return f"<Host {self.id}>"
