"""NACK + XOR-FEC: parity blocks repair single losses with no round trip.

Extends the :mod:`~repro.proto.engines.nack` family: every *sending*
node (the root's multisend and each forwarding intermediate — parity is
generated per hop, never forwarded) emits one MCAST_FEC parity packet
per ``fec_block`` data packets of its own transmitted stream, flushing a
partial block at each message boundary so blocks never straddle
messages.  The parity header carries the block's member descriptors;
the packet's wire payload is the widest member's (the XOR block size).

A receiver missing **exactly one** member of an arriving parity block
reconstructs it locally — synthesizing the data packet and feeding it
back through the ordinary receive path, so sequencing, acks, forwarding
and host delivery all behave as if the wire had delivered it — with no
repair round-trip at all.  Zero missing members: the parity was
redundant.  Two or more: XOR cannot help; the NACK machinery recovers.

The byte-level codec this models is :mod:`repro.proto.engines.fec`
(length-prefixed XOR); the simulation carries payload sizes, so the
in-sim reconstruction is structural.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.net.packet import PacketType, make_packet
from repro.nic import PacketDescriptor
from repro.nic.lanai import TX_PRIO_DATA
from repro.proto.engines import EngineFamily, register_engine
from repro.proto.engines.nack import NACK_DEFAULTS, NackReceiver, NackSender

__all__ = ["NackFecReceiver", "NackFecSender"]

NACK_FEC_DEFAULTS = dict(NACK_DEFAULTS)
#: data packets protected by one parity packet (per sending node)
NACK_FEC_DEFAULTS["fec_block"] = 4


class NackFecReceiver(NackReceiver):
    """NACK receiver that can also cash in parity blocks."""

    __slots__ = ()
    name = "nack_fec"

    def _missing(self, group: Any, st: dict, members: tuple) -> list:
        received = st.get("r_received", ())
        return [
            member for member in members
            if member[0] > group.recv_seq and member[0] not in received
        ]

    def _hole_limit(self, group: Any, st: dict) -> int:
        """Missing seqs below this are definite losses (something later
        arrived on a FIFO link); at or above, possibly just in flight."""
        return max(st.get("r_received", ()), default=group.recv_seq)

    def on_parity(self, group: Any, pkt: Any) -> Generator:
        t = self.transport
        m = t.sim.metrics
        st = self.state(group)
        members = tuple(pkt.header.info.get("fec", ()))
        missing = self._missing(group, st, members)
        if not missing:
            return
        if len(missing) == 1 and missing[0][0] < self._hole_limit(group, st):
            # A definite hole, one erasure: reconstruct on the spot.
            yield from self._reconstruct(
                group, pkt.header.src, pkt.header.origin, missing[0]
            )
            return
        # Either >1 member absent (parity can overtake its own block's
        # data: replica chains interleave per-child emission) or the
        # one absentee may still be in flight.  Hold the parity:
        # accepts re-evaluate it, and the quiescence timer cashes it in
        # for overdue tail losses.
        if len(missing) > 1 and m is not None:
            m.inc("proto.fec_insufficient")
        st.setdefault("r_parity", []).append(
            (pkt.header.src, pkt.header.origin, members)
        )

    def on_accept(self, group: Any, h: Any) -> None:
        super().on_accept(group, h)
        st = self.state(group)
        held = st.get("r_parity")
        if not held:
            return
        t = self.transport
        hole_limit = self._hole_limit(group, st)
        keep = []
        for src, origin, members in held:
            missing = self._missing(group, st, members)
            if not missing:
                continue  # fully arrived: parity was redundant
            if len(missing) == 1 and missing[0][0] < hole_limit:
                # Reconstruction re-enters the receive path as its own
                # process (this hook runs inside packet handling).
                t.sim.process(
                    self._reconstruct(group, src, origin, missing[0]),
                    name=f"{t.nic.name}.fec_repair",
                )
            else:
                keep.append((src, origin, members))
        st["r_parity"] = keep

    def _repair_from_parity(
        self, group: Any, st: dict, gaps: list[int]
    ) -> list[int]:
        """Quiescence-timer hook: overdue gaps covered by a held parity
        with exactly one absent member reconstruct locally — the NACK
        round trip is skipped for them entirely."""
        held = st.get("r_parity")
        if not held:
            return gaps
        t = self.transport
        keep: list[tuple] = []
        repaired: set[int] = set()
        for src, origin, members in held:
            missing = [
                member for member in self._missing(group, st, members)
                if member[0] not in repaired
            ]
            if not missing:
                continue
            if len(missing) == 1:
                repaired.add(missing[0][0])
                t.sim.process(
                    self._reconstruct(group, src, origin, missing[0]),
                    name=f"{t.nic.name}.fec_repair",
                )
            else:
                keep.append((src, origin, members))
        st["r_parity"] = keep
        return [seq for seq in gaps if seq not in repaired]

    def _defer_gaps(
        self, group: Any, st: dict, gaps: list[int]
    ) -> list[int]:
        """NACK is this family's *backstop*: parity covering a fresh gap
        is usually still in the sender's transmit queue (it trails the
        block it protects, plus the replica chain), so each gap gets one
        extra timer cycle before its first NACK.  Single per-hop losses
        then repair from parity with no NACK at all; only multi-loss
        blocks and lost parity pay the (backed-off) round trip."""
        deferred = st.setdefault("r_fec_deferred", set())
        deferred.difference_update(
            seq for seq in tuple(deferred) if seq <= group.recv_seq
        )
        ready = [seq for seq in gaps if seq in deferred]
        deferred.update(gaps)
        return ready

    def _reconstruct(
        self, group: Any, src: int, origin: int, member: tuple
    ) -> Generator:
        t = self.transport
        m = t.sim.metrics
        seq, msg_id, chunk, nchunks, payload, msg_size, trace_id, app = member
        if m is not None:
            m.inc("proto.fec_repairs")
        data = make_packet(
            PacketType.MCAST_DATA, src, t.nic.id, origin,
            group=group.group_id,
            port=group.port_num,
            from_port=group.port_num,
            seq=seq,
            msg_id=msg_id,
            chunk=chunk,
            nchunks=nchunks,
            payload=payload,
            msg_size=msg_size,
            trace_id=trace_id,
        )
        if app:
            data.header.info["app"] = dict(app)
        # Through the front door: the reconstruction is indistinguishable
        # from a wire arrival (acks, forwarding, host copy included).
        yield from t.inject_data(data)


class NackFecSender(NackSender):
    """NACK sender that shields its stream with per-block parity."""

    __slots__ = ()
    name = "nack_fec"

    def on_data_queued(self, group: Any, record: Any) -> None:
        block = self.state(group).setdefault("s_block", [])
        block.append((
            record.seq, record.msg_id, record.chunk, record.nchunks,
            record.payload, record.msg_size, record.trace_id,
            dict(record.app_info) if record.app_info else None,
        ))
        if (
            len(block) >= self.param(group, "fec_block")
            or record.chunk == record.nchunks - 1  # message boundary
        ):
            members, block[:] = list(block), []
            t = self.transport
            t.sim.process(
                self._emit_parity(group, members),
                name=f"{t.nic.name}.fec_parity",
            )

    def _emit_parity(self, group: Any, members: list[tuple]) -> Generator:
        t = self.transport
        yield from t.nic.processing(t.cost.nic_per_packet_send)
        m = t.sim.metrics
        payload = max(member[4] for member in members)
        for child in group.children:
            pkt = make_packet(
                PacketType.MCAST_FEC, t.nic.id, child, group.root,
                group=group.group_id,
                port=group.port_num,
                from_port=group.port_num,
                seq=members[-1][0],  # diagnostic: newest protected seq
                payload=payload,
            )
            pkt.header.info["fec"] = list(members)
            if m is not None:
                m.inc("proto.fec_parity_sent")
            t.nic.queue_tx(PacketDescriptor(pkt), TX_PRIO_DATA)


register_engine(EngineFamily(
    name="nack_fec",
    title="NACK + XOR parity blocks (single-loss repair, no round trip)",
    sender_cls=NackFecSender,
    receiver_cls=NackFecReceiver,
    defaults=NACK_FEC_DEFAULTS,
))
