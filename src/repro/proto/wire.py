"""The one cumulative-ack builder.

The GM ACK and the multicast MCAST_ACK are the same wire action — spend
``nic_ack_generation`` of LANai time, build a zero-payload packet
carrying the receiver's cumulative sequence number, queue it at ack
priority — differing only in packet type, addressing, and whether a
group id rides in the header.  Both engines previously open-coded it;
they now call :func:`send_ack`.
"""

from __future__ import annotations

from typing import Generator

from repro.net.packet import Packet, PacketType, make_packet
from repro.nic import PacketDescriptor
from repro.nic.lanai import TX_PRIO_ACK

__all__ = ["build_ack_packet", "send_ack"]


def build_ack_packet(
    *,
    ptype: PacketType,
    src: int,
    dst: int,
    port: int,
    from_port: int,
    ack_seq: int,
    group: int | None = None,
) -> Packet:
    """A zero-payload cumulative acknowledgment packet."""
    # make_packet: one ack per data packet makes this the busiest
    # header-construction site in the stack.
    return make_packet(
        ptype, src, dst, src,
        port=port,
        from_port=from_port,
        ack_seq=ack_seq,
        group=group,
    )


def send_ack(
    nic,
    cost,
    *,
    ptype: PacketType,
    dst: int,
    port: int,
    from_port: int,
    ack_seq: int,
    group: int | None = None,
) -> Generator:
    """Generate and queue a cumulative ack from *nic* (a NIC coroutine).

    Models the LANai cost of building the ack, then hands it to the send
    DMA queue at :data:`~repro.nic.lanai.TX_PRIO_ACK` so acknowledgments
    overtake queued data.
    """
    # nic.processing() inlined: one ack per data packet makes this a
    # per-packet site, and the wrapper generator showed up in profiles.
    ev = nic.cpu.use_fast(cost.nic_ack_generation)
    if ev is None:
        yield from nic.cpu.use(cost.nic_ack_generation)
    else:
        yield ev
    ack = build_ack_packet(
        ptype=ptype,
        src=nic.id,
        dst=dst,
        port=port,
        from_port=from_port,
        ack_seq=ack_seq,
        group=group,
    )
    nic.queue_tx(PacketDescriptor(ack), TX_PRIO_ACK)
