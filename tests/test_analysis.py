"""Tests for the utilization analysis — and the mechanism it evidences."""

import pytest

from repro.analysis import cluster_utilization, render_utilization
from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mcast import host_based_multicast, multicast
from repro.trees import build_tree


def run_scheme(scheme, size=8192, n=8):
    cluster = Cluster(ClusterConfig(n_nodes=n))
    if scheme == "nb":
        tree = build_tree(0, range(1, n), shape="optimal",
                          cost=cluster.cost, size=size)
        multicast(cluster, tree, size)
    else:
        tree = build_tree(0, range(1, n), shape="binomial")
        host_based_multicast(cluster, tree, size)
    cluster.run()
    return cluster


def test_snapshot_structure():
    cluster = run_scheme("nb")
    report = cluster_utilization(cluster)
    assert len(report.nodes) == 8
    assert report.elapsed > 0
    assert report.wire_bytes_total > 8 * 8192  # replicas on the wire
    assert report.link_bytes  # busiest links listed
    assert report.total_nic_cpu > 0


def test_idle_cluster_all_zero():
    cluster = Cluster(ClusterConfig(n_nodes=3))
    report = cluster_utilization(cluster)
    assert report.total_pci == 0
    assert report.wire_bytes_total == 0
    assert report.node_fraction(0, "nic_cpu") == 0.0


def test_render_is_readable():
    cluster = run_scheme("nb", size=1024)
    text = render_utilization(cluster_utilization(cluster))
    assert "NIC cpu" in text
    assert "busiest links" in text
    assert text.count("\n") >= 10


def test_mechanism_hb_burns_more_pci():
    """The paper's core mechanism, made visible: host-based forwarding
    crosses PCI twice per intermediate hop; the NIC-based scheme's
    intermediates only pay the off-critical-path host copy (up), never
    the resend (down)."""
    nb = cluster_utilization(run_scheme("nb"))
    hb = cluster_utilization(run_scheme("hb"))
    assert hb.total_pci > 1.5 * nb.total_pci


def test_mechanism_nb_burns_more_copy_engine():
    nb = cluster_utilization(run_scheme("nb"))
    hb = cluster_utilization(run_scheme("hb"))
    # SRAM staging is unique to NIC forwarding.
    assert nb.total_copy > 0
    assert hb.total_copy == 0


def test_intermediates_idle_hosts_under_nb():
    nb = cluster_utilization(run_scheme("nb"))
    # No host computes during a GM-level multicast.
    assert all(n.host_compute == 0 for n in nb.nodes)


def test_multicast_nic_cpu_exceeds_host_busy():
    """The paper's offload claim on a multicast (not unicast) workload:
    under the registry's nic_based scheme the whole protocol runs on the
    LANai, so NIC-CPU busy time dominates host busy time — in aggregate
    and on every node (intermediates forward without host involvement)."""
    from repro.mcast.manager import run_scheme as run_registered_scheme

    cluster = Cluster(ClusterConfig(n_nodes=8))
    tree = build_tree(0, range(1, 8), shape="optimal",
                      cost=cluster.cost, size=4096)
    result = run_registered_scheme(cluster, "nic_based", tree, 4096)
    assert len(result["delivered"]) == 7  # all members got the message

    report = cluster_utilization(cluster)
    total_host = sum(n.host_compute for n in report.nodes)
    assert report.total_nic_cpu > total_host
    assert report.total_nic_cpu > 0
    for n in report.nodes:
        assert n.nic_cpu >= n.host_compute


def test_resource_busy_accounting_unit():
    from repro.sim import Resource, Simulator

    sim = Simulator()
    res = Resource(sim, 1, name="x")

    def user():
        yield from res.use(5.0)
        yield from res.use(2.5)

    sim.run(until=sim.process(user()))
    assert res.busy_time == pytest.approx(7.5)
    assert res.use_count == 2
