"""Network packets and headers.

GM segments messages into MTU-sized packets (4096-byte payload on
Myrinet-2000).  The header carries everything the protocol engines need:
type, endpoints, the GM sequence number, and — for the paper's scheme — the
multicast group identifier that lets an intermediate NIC look up forwarding
state without host involvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from itertools import count
from typing import Any

__all__ = [
    "PacketType",
    "PacketHeader",
    "Packet",
    "GM_MTU_PAYLOAD",
    "GM_HEADER_BYTES",
    "split_message",
]

#: Maximum GM packet payload in bytes (paper §6.1: "The maximum packet size
#: in GM is 4096 bytes").
GM_MTU_PAYLOAD = 4096

#: Bytes of header + CRC on the wire per packet (route bytes, GM header,
#: trailing CRC — a fixed small constant in GM).
GM_HEADER_BYTES = 16


class PacketType(Enum):
    """Wire-level packet kinds."""

    DATA = "data"  #: unicast GM data
    ACK = "ack"  #: cumulative acknowledgment
    MCAST_DATA = "mcast_data"  #: multicast data (group id in header)
    MCAST_ACK = "mcast_ack"  #: per-group acknowledgment to parent
    MCAST_NACK = "mcast_nack"  #: receiver-detected gap report to parent
    MCAST_FEC = "mcast_fec"  #: XOR parity block over recent data packets
    CREDIT = "credit"  #: credit grant (FM/MC, LFC baselines only)
    CONTROL = "control"  #: miscellaneous small control traffic

    @property
    def is_data(self) -> bool:
        return self in (PacketType.DATA, PacketType.MCAST_DATA)


_packet_ids = count()


@dataclass
class PacketHeader:
    """All protocol-visible packet metadata.

    Attributes
    ----------
    ptype:
        Packet kind.
    src, dst:
        Network IDs (NIC indices) of this hop's sender and receiver.  For a
        forwarded multicast packet these are rewritten at each hop.
    origin:
        Network ID of the node that first injected the message (the
        multicast root for group traffic); never rewritten.
    port:
        GM port number at the destination.
    from_port:
        GM port number at the sender (connections are per port pair).
    seq:
        GM sequence number (per-connection for unicast, per-group for
        multicast).
    group:
        Multicast group identifier, ``None`` for unicast traffic.
    msg_id:
        Sender-assigned message identifier (ties packets of one message
        together).
    chunk:
        Packet index within the message (0-based).
    nchunks:
        Total packets in the message.
    payload:
        Payload bytes carried by this packet.
    msg_size:
        Total message size in bytes.
    ack_seq:
        For ACK packets: cumulative acknowledged sequence number.
    trace_id:
        Flight-recorder trace identifier of the root message this packet
        carries data for (``-1`` = untraced).  Assigned once at the root
        post and propagated through fragmentation, cloning (NIC
        forwarding), retransmission, and recovery replay so a sampled
        message's packets can be causally stitched back together.
    info:
        Scheme-specific extras (e.g. the NIC-assisted scheme carries its
        destination list here; credits ride here for FM/MC and LFC).
    """

    ptype: PacketType
    src: int
    dst: int
    origin: int
    port: int = 0
    from_port: int = 0
    seq: int = 0
    group: int | None = None
    msg_id: int = 0
    chunk: int = 0
    nchunks: int = 1
    payload: int = 0
    msg_size: int = 0
    ack_seq: int = -1
    trace_id: int = -1
    info: dict[str, Any] = field(default_factory=dict)


#: Field names accepted by :meth:`Packet.clone` overrides.
_HEADER_FIELDS = frozenset(PacketHeader.__dataclass_fields__)


@dataclass
class Packet:
    """A packet in flight.

    ``uid`` is unique per wire transmission *clone* — a retransmitted or
    replicated packet gets a fresh ``uid`` so traces can tell copies apart —
    while ``header.msg_id``/``header.chunk`` identify the logical data.
    """

    header: PacketHeader
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def wire_size(self) -> int:
        """Bytes occupying the wire (payload + fixed header/CRC)."""
        return self.header.payload + GM_HEADER_BYTES

    @property
    def dst(self) -> int:
        return self.header.dst

    @property
    def src(self) -> int:
        return self.header.src

    def clone(self, **header_overrides: Any) -> "Packet":
        """A fresh copy with a new uid and updated header fields.

        This is what a GM-2 descriptor callback does when it "changes the
        packet header and queues it for transmission again".
        """
        # Dict-level copy instead of dataclasses.replace: clone runs once
        # per forwarded/replicated packet, and replace() re-runs the whole
        # 15-field constructor.  Unknown keys are still rejected.
        bad = header_overrides.keys() - _HEADER_FIELDS
        if bad:
            raise TypeError(f"unknown header field(s): {sorted(bad)}")
        new_header = PacketHeader.__new__(PacketHeader)
        d = new_header.__dict__
        d.update(self.header.__dict__)
        d["info"] = dict(self.header.info)
        d.update(header_overrides)
        return Packet(header=new_header)

    def describe(self) -> str:
        h = self.header
        grp = f" grp={h.group}" if h.group is not None else ""
        return (
            f"{h.ptype.value}[{h.src}->{h.dst}{grp} seq={h.seq} "
            f"msg={h.msg_id} chunk={h.chunk}/{h.nchunks} {h.payload}B]"
        )


#: Default values for every optional :class:`PacketHeader` field, used by
#: :func:`make_packet` to skip the generated dataclass ``__init__``.
_HEADER_DEFAULTS = {
    "port": 0, "from_port": 0, "seq": 0, "group": None, "msg_id": 0,
    "chunk": 0, "nchunks": 1, "payload": 0, "msg_size": 0, "ack_seq": -1,
    "trace_id": -1,
}


def make_packet(
    ptype: PacketType, src: int, dst: int, origin: int, **fields: Any
) -> Packet:
    """Fast-path packet construction (header + packet via ``__new__``).

    Equivalent to ``Packet(header=PacketHeader(...))`` but without
    re-running the 15-field generated constructor — packets are built
    once per transmission on the protocol hot paths.  Unknown header
    fields are rejected exactly as :meth:`Packet.clone` rejects them.
    """
    bad = fields.keys() - _HEADER_FIELDS
    if bad:
        raise TypeError(f"unknown header field(s): {sorted(bad)}")
    header = PacketHeader.__new__(PacketHeader)
    d = header.__dict__
    d.update(_HEADER_DEFAULTS)
    d["ptype"] = ptype
    d["src"] = src
    d["dst"] = dst
    d["origin"] = origin
    d["info"] = {}
    if fields:
        d.update(fields)
    pkt = Packet.__new__(Packet)
    pkt.header = header
    pkt.uid = next(_packet_ids)
    return pkt


def split_message(size: int, mtu: int = GM_MTU_PAYLOAD) -> list[int]:
    """Payload sizes of the packets a *size*-byte message segments into.

    A zero-byte message still occupies one (header-only) packet, matching
    GM's behaviour for empty sends.
    """
    if size < 0:
        raise ValueError(f"negative message size {size}")
    if mtu <= 0:
        raise ValueError(f"mtu must be positive, got {mtu}")
    if size == 0:
        return [0]
    full, rem = divmod(size, mtu)
    chunks = [mtu] * full
    if rem:
        chunks.append(rem)
    return chunks
