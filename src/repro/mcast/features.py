"""The Fig. 1 feature comparison, as data.

"Figure 1 shows a diagram, which uses six axes to represent these
features, and compares the features of available multicast schemes, as
well as the scheme we are proposing" (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "Forwarding",
    "TreeConstruction",
    "TreeInformation",
    "FlowControl",
    "SchemeFeatures",
    "SCHEMES",
    "feature_table",
]


class Forwarding(Enum):
    NIC = "NIC"
    HOST = "Host"


class TreeConstruction(Enum):
    HOST = "Host"
    NIC = "NIC"


class TreeInformation(Enum):
    PREPOSTED = "pre-posted"
    PER_MESSAGE = "per message"


class FlowControl(Enum):
    NONE_ACK_BASED = "ack/timeout (no credits)"
    END_TO_END_CREDITS = "end-to-end credits (central manager)"
    POINT_TO_POINT_CREDITS = "point-to-point credits (per hop)"


@dataclass(frozen=True)
class SchemeFeatures:
    """One scheme's position on the paper's six axes."""

    name: str
    reliable: bool
    forwarding: Forwarding
    tree_construction: TreeConstruction
    tree_information: TreeInformation
    protection: bool
    flow_control: FlowControl
    scalability: str  # "higher" / "lower" with the limiting factor
    deadlock_free: bool
    module: str  # where this repo implements/demonstrates it


SCHEMES: dict[str, SchemeFeatures] = {
    "ours": SchemeFeatures(
        name="NIC-based multicast (this paper)",
        reliable=True,
        forwarding=Forwarding.NIC,
        tree_construction=TreeConstruction.HOST,
        tree_information=TreeInformation.PREPOSTED,
        protection=True,
        flow_control=FlowControl.NONE_ACK_BASED,
        scalability="higher (no central component; per-group NIC state)",
        deadlock_free=True,
        module="repro.mcast.engine",
    ),
    "lfc": SchemeFeatures(
        name="LFC (Bhoedjang et al.)",
        reliable=False,  # assumes a reliable network
        forwarding=Forwarding.NIC,
        tree_construction=TreeConstruction.HOST,
        tree_information=TreeInformation.PREPOSTED,
        protection=False,
        flow_control=FlowControl.POINT_TO_POINT_CREDITS,
        scalability="higher (distributed credits) but deadlock-prone",
        deadlock_free=False,
        module="repro.mcast.lfc",
    ),
    "fmmc": SchemeFeatures(
        name="FM/MC (Verstoep et al.)",
        reliable=False,  # credit scheme assumes reliable fabric
        forwarding=Forwarding.NIC,
        tree_construction=TreeConstruction.HOST,
        tree_information=TreeInformation.PREPOSTED,
        protection=False,
        flow_control=FlowControl.END_TO_END_CREDITS,
        scalability="lower (centralized credit manager)",
        deadlock_free=True,
        module="repro.mcast.fmmc",
    ),
    "nic_assisted": SchemeFeatures(
        name="NIC-assisted (Buntinas et al.)",
        reliable=True,
        forwarding=Forwarding.HOST,
        tree_construction=TreeConstruction.HOST,
        tree_information=TreeInformation.PER_MESSAGE,
        protection=True,
        flow_control=FlowControl.NONE_ACK_BASED,
        scalability="lower (host involvement at every hop)",
        deadlock_free=True,
        module="repro.mcast.nic_assisted",
    ),
}


def feature_table() -> str:
    """Render the Fig. 1 comparison as a markdown table."""
    headers = [
        "Scheme",
        "Reliable",
        "Forwarding",
        "Tree built at",
        "Tree info",
        "Protection",
        "Flow control",
        "Deadlock-free",
        "Scalability",
    ]
    rows = []
    for scheme in SCHEMES.values():
        rows.append(
            [
                scheme.name,
                "yes" if scheme.reliable else "no",
                scheme.forwarding.value,
                scheme.tree_construction.value,
                scheme.tree_information.value,
                "yes" if scheme.protection else "no",
                scheme.flow_control.value,
                "yes" if scheme.deadlock_free else "no",
                scheme.scalability,
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    def fmt(row):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    lines = [fmt(headers), "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
