#!/usr/bin/env python3
"""MPI-level demo: broadcast real payloads with both implementations.

Shows the MPICH-GM integration: communicators over GM ports, the
demand-driven group creation on the first NIC-based broadcast, eager vs
rendezvous point-to-point, and the latency difference per message size.

Run:  python examples/mpi_bcast_demo.py
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mpi import Communicator


def bcast_demo(nic: bool) -> None:
    label = "NIC-based" if nic else "host-based"
    cluster = Cluster(ClusterConfig(n_nodes=8))
    comm = Communicator(cluster, nic_bcast=nic)
    results = {}

    def program(ctx):
        # Every rank broadcasts a dict from rank 3; the payload really
        # travels through the simulated stack (in packet headers).
        value = {"model": "lanai9", "round": 1} if ctx.rank == 3 else None
        value = yield from ctx.bcast(root=3, size=2048, payload=value)
        results[ctx.rank] = value
        # Second bcast reuses the (demand-created) group.
        t0 = ctx.sim.now
        yield from ctx.bcast(root=3, size=2048, payload=value)
        if ctx.rank == 3:
            results["second_latency"] = ctx.sim.now - t0

    comm.run(program)
    ok = all(results[r] == {"model": "lanai9", "round": 1} for r in range(8))
    print(f"{label:11s}: payload correct on all ranks: {ok}, "
          f"steady-state root latency {results['second_latency']:.1f} us")


def p2p_demo() -> None:
    cluster = Cluster(ClusterConfig(n_nodes=2))
    comm = Communicator(cluster)
    log = []

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1_000, tag=1, payload="eager path")
            yield from ctx.send(1, 100_000, tag=2, payload="rendezvous path")
        else:
            for tag in (1, 2):
                entry = yield from ctx.recv(source=0, tag=tag)
                log.append((entry["size"], entry["kind"], entry["payload"]))

    comm.run(program)
    for size, kind, payload in log:
        print(f"p2p {size:>7}B via {kind:9s}: {payload!r}")


def main() -> None:
    print("== MPI_Bcast implementations ==")
    bcast_demo(nic=False)
    bcast_demo(nic=True)
    print("\n== point-to-point protocols ==")
    p2p_demo()


if __name__ == "__main__":
    main()
