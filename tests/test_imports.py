"""Every module imports cleanly and every __all__ name resolves."""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if not name.endswith("__main__")
)


def test_module_discovery_found_the_stack():
    packages = {name.split(".")[1] for name in MODULES if "." in name}
    assert {
        "sim", "net", "nic", "gm", "mcast", "trees", "host", "mpi",
        "coll", "experiments", "analysis",
    } <= packages


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        assert hasattr(module, export), f"{name}.__all__ lists {export}"


def test_top_level_api():
    assert repro.Cluster is not None
    assert repro.ClusterConfig is not None
    assert repro.GMCostModel is not None
    assert isinstance(repro.__version__, str)
