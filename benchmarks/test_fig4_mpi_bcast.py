"""Bench: Figure 4 — MPI-level broadcast latency and improvement."""

from repro.experiments import fig4


def test_fig4_mpi_bcast(once):
    result = once(
        lambda: fig4.run(quick=False, sizes=[4, 512, 8192, 16287])
    )
    print()
    print(result.render())

    f16 = result.get("factor-16")
    # NIC-based MPI_Bcast wins at every size on 16 ranks.
    assert all(y > 1.1 for y in f16.ys())
    # Paper: up to 2.02x at 8 KB (we land 1.5-1.9, compressed by the
    # per-call MPI constants; see EXPERIMENTS.md).
    assert 1.35 < f16.y_at(8192) < 2.2
    # Trend mirrors the GM level: factor grows toward 8 KB.
    assert f16.y_at(8192) > f16.y_at(4)
    # Factor grows with the communicator size.
    assert (
        result.get("factor-4").y_at(8192)
        < result.get("factor-8").y_at(8192)
        < f16.y_at(8192)
    )
    # Latencies monotone in message size.
    for label in ("HB-16", "NB-16"):
        ys = result.get(label).ys()
        assert ys == sorted(ys)
