"""Harness execution, grid mechanics, and wrapper equivalence."""

import pytest

from repro.experiments.parallel import run_grid
from repro.experiments.runner import measure_multisend, measure_unicast
from repro.gm.params import GMCostModel
from repro.scenario import (
    Harness,
    MulticastMeasurement,
    ScenarioGrid,
    ScenarioSpec,
    multicast_point,
    multisend_point,
    run_cell,
    run_spec,
    unicast_point,
)
from repro.scenario.spec import MeasurementSpec, WorkloadSpec


def test_wrappers_equal_direct_harness_runs():
    """measure_* and Harness(point).run() are the same computation."""
    spec = multisend_point(4, 64, "nb", iterations=5, warmup=2)
    direct = Harness(spec).run().values[64]
    assert direct == measure_multisend(4, 64, "nb", iterations=5, warmup=2)
    assert direct == run_spec(spec).values[64]

    spec = unicast_point(size=64, iterations=5)
    assert Harness(spec).run().values[64] == measure_unicast(
        size=64, iterations=5
    )


def test_run_cell_round_trips_the_json_payload():
    spec = multicast_point(4, 512, "nb", iterations=3, warmup=1)
    values = run_cell(spec.to_json())
    assert values == Harness(spec).run().values
    assert isinstance(values[512], MulticastMeasurement)


def test_multi_size_measurement_one_cluster_per_size():
    spec = ScenarioSpec(
        workload=WorkloadSpec(kind="multisend", scheme="nb"),
        cluster=multisend_point(3, 0, "nb").cluster,
        measurement=MeasurementSpec(sizes=(16, 64), iterations=3, warmup=1),
    )
    result = Harness(spec).run()
    assert list(result.values) == [16, 64]
    for size in (16, 64):
        assert result.values[size] == measure_multisend(
            3, size, "nb", iterations=3, warmup=1
        )


def test_scalar_covers_every_value_shape():
    m = Harness(multicast_point(4, 64, "nb", iterations=3, warmup=1)).run()
    assert m.scalar(64) == m.values[64].latency
    u = Harness(unicast_point(size=0, iterations=3)).run()
    assert u.scalar(0) == u.values[0]


def test_registry_attaches_via_duck_typed_slot():
    sentinel = object()
    harness = Harness(unicast_point(size=0), registry=sentinel)
    assert harness.build_cluster().sim.metrics is sentinel
    # Without a registry the slot keeps the simulator's default.
    assert Harness(unicast_point(size=0)).build_cluster() is not None


def test_config_loss_changes_the_measurement():
    """A declarative loss spec reaches the wire (drops force retransmits)."""
    clean = multicast_point(4, 4096, "nb", iterations=4, warmup=1)
    lossy_cluster = ScenarioSpec.from_dict(
        {
            "workload": {"kind": "multicast", "scheme": "nb"},
            "cluster": {
                "n_nodes": 4,
                "loss": {"kind": "bernoulli", "rate": 0.4},
            },
            "measurement": {"sizes": [4096], "iterations": 4, "warmup": 1},
        }
    )
    clean_latency = Harness(clean).run().values[4096].latency
    lossy_latency = Harness(lossy_cluster).run().values[4096].latency
    assert lossy_latency > clean_latency


def test_grid_rejects_duplicate_keys_and_keeps_order():
    grid = ScenarioGrid("figX")
    grid.add(("NB", 1), unicast_point(size=1)).add(("NB", 2), unicast_point(size=2))
    assert grid.keys() == [("NB", 1), ("NB", 2)]
    assert len(grid) == 2
    with pytest.raises(ValueError, match="duplicate"):
        grid.add(("NB", 1), unicast_point(size=1))


def test_grid_auto_labels_from_coordinates():
    grid = ScenarioGrid("fig9")
    grid.add(("NB", 64), unicast_point(size=64))
    grid.add("solo", unicast_point(size=0), label="custom")
    assert grid.cells[0].label == "fig9[NB,64]"
    assert grid.cells[1].label == "custom"


def test_grid_cells_serialize_and_reconstruct():
    grid = ScenarioGrid("figX")
    spec = multisend_point(3, 64, "nb", iterations=3, warmup=1)
    grid.add(("NB", 64), spec)
    (payload,) = grid.to_json_cells()
    assert payload["label"] == "figX[NB,64]"
    assert ScenarioSpec.from_dict(payload["spec"]) == spec


def test_run_grid_serial_matches_direct_runs():
    cost = GMCostModel()
    grid = ScenarioGrid("figX")
    for size in (16, 256):
        grid.add(size, multisend_point(3, size, "nb", iterations=3, warmup=1,
                                       cost=cost))
    values = run_grid(grid, jobs=1)
    assert list(values) == [16, 256]
    for size in (16, 256):
        assert values[size] == measure_multisend(
            3, size, "nb", iterations=3, warmup=1, cost=cost
        )
