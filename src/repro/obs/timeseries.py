"""Windowed time-series snapshots of a metrics registry.

Long-running serving workloads (:mod:`repro.workload.serving`) end with
one aggregate registry snapshot — throughput *over time* is invisible.
:class:`TimeSeriesRecorder` samples the registry at a fixed simulated
interval: each window captures the cumulative value of every counter
under the configured prefixes, the per-window delta, and bucketed
quantiles of the configured histograms.

Sampling is a bounded host program (one ``timeout`` per window), so it
adds scheduler events but reads protocol state only — it never mutates
anything, and a run with the sampler installed delivers the same
messages at the same instants.  Install it through the duck-typed
``Harness.timeseries`` slot (the scenario layer calls ``install`` /
``finalize`` without importing obs), or directly on any simulator.

The invariant the acceptance test pins: after :meth:`finalize`, the sum
of per-window counter deltas equals the final registry value for every
tracked counter.
"""

from __future__ import annotations

import json
from typing import Any, Generator, Iterable

__all__ = ["TimeSeriesRecorder", "render_timeseries"]

#: Counter-name prefixes captured by default.
DEFAULT_PREFIXES = ("serving", "net", "proto", "mcast")
#: Histograms whose quantiles are captured by default.
DEFAULT_HISTOGRAMS = ("serving.delivery_us",)
DEFAULT_QUANTILES = (0.50, 0.99)


class TimeSeriesRecorder:
    """Periodic windowed snapshots of one registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` to sample.
    interval_us:
        Simulated microseconds between windows.
    prefixes:
        Counter sections to track (name up to the first dot, or any
        dotted prefix).
    histograms / quantiles:
        Histogram names and quantile points to capture per window.
    """

    def __init__(
        self,
        registry: Any,
        interval_us: float = 1000.0,
        prefixes: Iterable[str] = DEFAULT_PREFIXES,
        histograms: Iterable[str] = DEFAULT_HISTOGRAMS,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
    ):
        if interval_us <= 0:
            raise ValueError(
                f"interval_us must be positive, got {interval_us}"
            )
        self.registry = registry
        self.interval_us = interval_us
        self.prefixes = tuple(prefixes)
        self.histograms = tuple(histograms)
        self.quantiles = tuple(quantiles)
        self.snapshots: list[dict[str, Any]] = []
        self._prev: dict[str, float] = {}
        self._finalized = False

    # -- sampling ----------------------------------------------------------
    def _counters(self) -> dict[str, float]:
        reg = self.registry
        out: dict[str, float] = {}
        for name in reg.names():
            if not any(
                name == p or name.startswith(p + ".")
                for p in self.prefixes
            ):
                continue
            inst = reg.get(name)
            value = getattr(inst, "value", None)
            if isinstance(value, (int, float)):
                out[name] = value
        return out

    def _quantile_block(self) -> dict[str, dict[str, float]]:
        reg = self.registry
        out: dict[str, dict[str, float]] = {}
        for name in self.histograms:
            inst = reg.get(name)
            if inst is None or not hasattr(inst, "percentile"):
                continue
            block = {"count": inst.count, "mean": inst.mean}
            for q in self.quantiles:
                block[f"p{int(q * 100)}"] = (
                    inst.percentile(q) if inst.count else 0.0
                )
            out[name] = block
        return out

    def take(self, now: float) -> dict[str, Any]:
        """Capture one window ending at *now* (appended and returned)."""
        counters = self._counters()
        deltas = {
            name: value - self._prev.get(name, 0.0)
            for name, value in counters.items()
        }
        snap = {
            "t": now,
            "window": len(self.snapshots),
            "counters": counters,
            "deltas": deltas,
            "quantiles": self._quantile_block(),
        }
        self._prev = counters
        self.snapshots.append(snap)
        return snap

    # -- wiring (duck-typed from the scenario layer) -----------------------
    def install(self, sim: Any, duration_us: float) -> None:
        """Spawn the bounded sampler on *sim* (one window per interval).

        The sampler is a plain host program: ``floor(duration /
        interval)`` timeouts, then it ends — runs to quiescence are not
        kept alive past the workload.
        """
        n = int(duration_us // self.interval_us)
        if n <= 0:
            return

        def sampler() -> Generator:
            for _ in range(n):
                yield sim.timeout(self.interval_us)
                self.take(sim.now)

        sim.process(sampler(), name="obs.timeseries")

    def finalize(self, now: float) -> None:
        """Append the closing window so totals match the final registry."""
        if not self._finalized:
            self._finalized = True
            self.take(now)

    # -- output ------------------------------------------------------------
    def totals(self) -> dict[str, float]:
        """Sum of per-window deltas per counter (== final cumulative)."""
        out: dict[str, float] = {}
        for snap in self.snapshots:
            for name, d in snap["deltas"].items():
                out[name] = out.get(name, 0.0) + d
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval_us": self.interval_us,
            "prefixes": list(self.prefixes),
            "windows": len(self.snapshots),
            "snapshots": self.snapshots,
            "totals": self.totals(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)


def render_timeseries(
    ts: TimeSeriesRecorder,
    counters: Iterable[str] = ("serving.msgs_posted",
                               "serving.msgs_delivered"),
) -> str:
    """A per-window text table: deltas of *counters* + quantiles."""
    from repro.experiments.report import render_table

    names = [n for n in counters if any(
        n in snap["counters"] for snap in ts.snapshots
    )]
    headers = ["window", "t us"] + [f"d {n.split('.', 1)[-1]}"
                                    for n in names]
    # Histograms appear once first fed, so the *last* window names them.
    qnames = list(ts.snapshots[-1]["quantiles"]) if ts.snapshots else []
    for qn in qnames:
        for q in ts.quantiles:
            headers.append(f"{qn.split('.', 1)[-1]} p{int(q * 100)}")
    rows = []
    for snap in ts.snapshots:
        row = [str(snap["window"]), f"{snap['t']:g}"]
        row += [f"{snap['deltas'].get(n, 0.0):g}" for n in names]
        for qn in qnames:
            block = snap["quantiles"].get(qn, {})
            for q in ts.quantiles:
                row.append(f"{block.get(f'p{int(q * 100)}', 0.0):.1f}")
        rows.append(row)
    head = [
        f"## time series: {len(ts.snapshots)} windows at "
        f"{ts.interval_us:g}us",
        "",
    ]
    return "\n".join(head) + render_table(headers, rows)
