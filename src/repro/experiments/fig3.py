"""Figure 3: NIC-based multisend vs host-based multiple unicasts.

"(a) Latency and (b) the performance improvement of using the NIC-based
multisend operation to transmit messages to 3, 4 and 8 destinations,
compared to the same tests conducted using host-based multiple
unicasts."  Paper headline: up to 2.05× for ≤128-byte messages to 4
destinations; the factor decays with size and levels off around/below 1
at 16 KB.
"""

from __future__ import annotations

from repro.experiments.parallel import run_grid
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.scenario import (
    PAPER_SIZES,
    QUICK_SIZES,
    ScenarioGrid,
    multisend_point,
)

__all__ = ["run", "DEST_COUNTS"]

DEST_COUNTS = (3, 4, 8)


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    sizes: list[int] | None = None,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    sizes = sizes or (QUICK_SIZES["multisend"] if quick else PAPER_SIZES)
    iterations = 10 if quick else 30
    result = FigureResult(
        figure_id="fig3",
        title="NIC-based multisend vs host-based multiple unicasts "
        "(latency to last ack, µs, and improvement factor)",
    )
    lat = {
        (scheme, k): Series(label=f"{scheme.upper()}-{k}")
        for scheme in ("hb", "nb")
        for k in DEST_COUNTS
    }
    imp = {k: Series(label=f"factor-{k}dest") for k in DEST_COUNTS}
    grid = ScenarioGrid("fig3")
    for size in sizes:
        for k in DEST_COUNTS:
            for scheme in ("hb", "nb"):
                grid.add(
                    (scheme, k, size),
                    multisend_point(
                        k, size, scheme, iterations=iterations, cost=cost
                    ),
                    label=f"fig3[{scheme},k={k},size={size}]",
                )
    values = run_grid(grid, jobs=jobs)
    for size in sizes:
        for k in DEST_COUNTS:
            hb, nb = values[("hb", k, size)], values[("nb", k, size)]
            lat[("hb", k)].add(size, hb)
            lat[("nb", k)].add(size, nb)
            imp[k].add(size, hb / nb)
    result.series = [lat[("hb", k)] for k in DEST_COUNTS]
    result.series += [lat[("nb", k)] for k in DEST_COUNTS]
    result.series += [imp[k] for k in DEST_COUNTS]
    small = [x for x in sizes if x <= 128]
    result.headlines["max factor, 4 dests, <=128B (paper: 2.05)"] = max(
        imp[4].y_at(s) for s in small
    )
    result.headlines["factor, 4 dests, 16KB (paper: ~1, slightly below)"] = (
        imp[4].y_at(16384) if 16384 in sizes else float("nan")
    )
    result.notes.append(
        "latency = root's post until the GM acknowledgment from the last "
        "destination returns (the paper's loop condition)"
    )
    return result
