"""Tests for the baseline schemes: NIC-assisted, LFC, FM/MC, Fig. 1."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import DeadlockDetected
from repro.mcast import host_based_multicast, multicast
from repro.mcast.features import SCHEMES, feature_table
from repro.mcast.fmmc import (
    FMMCCreditManager,
    fmmc_consumer_program,
    fmmc_sender_program,
)
from repro.mcast.lfc import run_lfc_multicasts
from repro.mcast.nic_assisted import nic_assisted_multicast
from repro.sim import Simulator
from repro.trees import SpanningTree, build_tree


class TestNicAssisted:
    def test_all_destinations_receive(self):
        cluster = Cluster(ClusterConfig(n_nodes=8))
        tree = build_tree(0, range(1, 8), shape="binomial")
        result = nic_assisted_multicast(cluster, tree, 1024)
        assert sorted(result["delivered"]) == list(range(1, 8))

    def test_multipacket(self):
        cluster = Cluster(ClusterConfig(n_nodes=4))
        tree = build_tree(0, [1, 2, 3], shape="binomial")
        result = nic_assisted_multicast(cluster, tree, 12000)
        assert sorted(result["delivered"]) == [1, 2, 3]

    def test_faster_than_host_based_flat(self):
        # The multidestination send saves repeated request processing.
        size, n = 64, 9
        tree = build_tree(0, range(1, n), shape="flat")
        na = nic_assisted_multicast(
            Cluster(ClusterConfig(n_nodes=n)), tree, size
        )
        hb = host_based_multicast(
            Cluster(ClusterConfig(n_nodes=n)), tree, size
        )
        assert max(na["delivered"].values()) < max(hb["delivered"].values())

    def test_slower_than_nic_based_deep_tree(self):
        # Host involvement at every hop loses to NIC forwarding.
        size, n = 1024, 8
        tree = build_tree(0, range(1, n), shape="chain")
        na = nic_assisted_multicast(
            Cluster(ClusterConfig(n_nodes=n)), tree, size
        )
        nb = multicast(Cluster(ClusterConfig(n_nodes=n)), tree, size)
        assert max(nb["delivered"].values()) < max(na["delivered"].values())

    def test_resources_drain(self):
        cluster = Cluster(ClusterConfig(n_nodes=6))
        tree = build_tree(0, range(1, 6), shape="binomial")
        nic_assisted_multicast(cluster, tree, 4096)
        cluster.run()
        for node in cluster.nodes:
            assert node.nic.send_buffers.free == node.nic.send_buffers.size
        assert (
            cluster.port(0).free_send_tokens
            == cluster.cost.send_tokens_per_port
        )


class TestLFC:
    def test_single_multicast_completes(self):
        sim = Simulator()
        tree = SpanningTree(root=0, children={0: (1, 2), 1: (3,)})
        fabric = run_lfc_multicasts(sim, 4, [tree], n_buffers=2)
        assert fabric.nodes[3].delivered == [0]

    def test_many_buffers_no_deadlock(self):
        sim = Simulator()
        t1 = SpanningTree(root=0, children={0: (1,), 1: (2,)})
        t2 = SpanningTree(root=3, children={3: (2,), 2: (1,)})
        fabric = run_lfc_multicasts(sim, 4, [t1, t2], n_buffers=4)
        assert 0 in fabric.nodes[2].delivered
        assert 1 in fabric.nodes[1].delivered

    def test_cyclic_trees_with_one_buffer_deadlock(self):
        # The paper's LFC hazard: node 1 must forward A to 2 while node
        # 2 must forward B to 1; with one buffer each, the credit each
        # needs is held by the other's stalled packet.
        sim = Simulator()
        t1 = SpanningTree(root=0, children={0: (1,), 1: (2,)})
        t2 = SpanningTree(root=3, children={3: (2,), 2: (1,)})
        with pytest.raises(DeadlockDetected):
            # Saturate the buffers with extra traffic so the circular
            # wait actually forms.
            run_lfc_multicasts(
                sim, 4, [t1, t2, t1, t2], n_buffers=1
            )

    def test_id_ordered_trees_never_deadlock_lfc(self):
        # Even LFC survives when every tree obeys the paper's
        # ID-ordering rule — the wait graph cannot form a cycle.
        sim = Simulator()
        trees = [
            build_tree(root, [n for n in range(6) if n != root], shape="chain")
            for root in range(3)
        ]
        fabric = run_lfc_multicasts(sim, 6, trees, n_buffers=3)
        for tree_id in range(3):
            for node in fabric.nodes:
                if node.id != trees[tree_id].root:
                    assert tree_id in node.delivered


class TestFMMC:
    def run_fmmc(self, n_senders, rounds=3, service_time=2.0,
                 total_credits=4, credits_per_grant=4):
        from repro.mcast.manager import install_group

        n = 8
        cluster = Cluster(ClusterConfig(n_nodes=n))
        manager = FMMCCreditManager(
            cluster,
            node_id=0,
            service_time=service_time,
            total_credits=total_credits,
            credits_per_grant=credits_per_grant,
        )
        sent: dict[int, list] = {}
        procs = []
        senders = list(range(1, 1 + n_senders))
        for idx, sender in enumerate(senders):
            gid = 500 + idx
            dests = [d for d in range(1, n) if d != sender]
            tree = build_tree(sender, dests, shape="flat")
            install_group(cluster, gid, tree)
            sent[sender] = []
            procs.append(
                cluster.spawn(
                    fmmc_sender_program(
                        manager, sender, gid, 64, rounds, sent[sender]
                    )
                )
            )
            for d in dests:
                procs.append(
                    cluster.spawn(fmmc_consumer_program(cluster, d, rounds))
                )
        procs.append(
            cluster.spawn(manager.program(n_requests=n_senders * rounds))
        )
        cluster.run(until=cluster.sim.all_of(procs))
        return cluster, manager, sent

    def test_single_sender_completes(self):
        cluster, manager, sent = self.run_fmmc(1)
        assert len(sent[1]) == 3
        assert manager.grants == 3

    def test_manager_serializes_concurrent_senders(self):
        # The credit pool only covers one outstanding multicast, so
        # concurrent roots must queue at the manager — FM/MC's defect.
        _c1, m1, s1 = self.run_fmmc(1, rounds=4)
        t_single = max(t for log in s1.values() for t in log)
        _c4, m4, s4 = self.run_fmmc(4, rounds=4)
        t_four = max(t for log in s4.values() for t in log)
        # 4x the multicasts take >2x the time: the central manager is a
        # bottleneck (perfect scaling would keep the time flat).
        assert t_four > 2.0 * t_single
        assert m4.max_queue >= 2

    def test_credits_conserved(self):
        _c, manager, _s = self.run_fmmc(3, rounds=2)
        assert manager.available == manager.total_credits


class TestFeatureTable:
    def test_all_four_schemes_present(self):
        assert set(SCHEMES) == {"ours", "lfc", "fmmc", "nic_assisted"}

    def test_paper_claims_encoded(self):
        ours = SCHEMES["ours"]
        assert ours.reliable and ours.protection and ours.deadlock_free
        assert SCHEMES["lfc"].deadlock_free is False
        assert "central" in SCHEMES["fmmc"].scalability
        assert SCHEMES["nic_assisted"].forwarding.value == "Host"
        # Everyone builds trees at the host ("to be efficient in tree
        # construction, all these schemes have the host construct...").
        assert all(
            s.tree_construction.value == "Host" for s in SCHEMES.values()
        )

    def test_table_renders(self):
        table = feature_table()
        assert "LFC" in table and "FM/MC" in table
        assert table.count("\n") >= 5
