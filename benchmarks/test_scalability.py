"""Bench: §7 claim — "promises good scalability".

Two demonstrations:

* the NIC-based scheme's advantage persists (grows) on 32/64-node Clos
  fabrics, which the paper could not measure on its 16-node testbed;
* FM/MC's centralized credit manager saturates with concurrent roots
  while the paper's decentralized scheme scales them independently.
"""

from statistics import mean

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.experiments.runner import measure_gm_multicast
from repro.mcast.fmmc import (
    FMMCCreditManager,
    fmmc_consumer_program,
    fmmc_sender_program,
)
from repro.mcast.manager import install_group, next_group_id, nic_based_multicast
from repro.trees import build_tree


def test_multicast_scaling_beyond_testbed(once):
    def sweep():
        rows = {}
        for n in (16, 32, 64):
            hb = measure_gm_multicast(n, 512, "hb", iterations=6, warmup=2)
            nb = measure_gm_multicast(n, 512, "nb", iterations=6, warmup=2)
            rows[n] = (hb.latency, nb.latency)
        return rows

    rows = once(sweep)
    print()
    print(f"{'nodes':>6} {'HB us':>9} {'NB us':>9} {'factor':>7}")
    factors = {}
    for n, (hb, nb) in rows.items():
        factors[n] = hb / nb
        print(f"{n:>6} {hb:>9.1f} {nb:>9.1f} {factors[n]:>7.2f}")
    # The factor does not collapse at scale; it grows from 16 to 64.
    assert factors[64] > factors[16] * 0.95
    assert all(f > 1.3 for f in factors.values())
    # NB latency grows sub-linearly in node count (tree depth effect):
    # 4x the nodes costs < 2.5x the latency.
    assert rows[64][1] < rows[16][1] * 2.5


def test_concurrent_roots_scale_without_central_manager(once):
    """Many simultaneous NIC-based multicast roots proceed in parallel;
    the same workload under FM/MC serializes at the manager."""

    def nic_based(n_roots):
        n = 12
        cluster = Cluster(ClusterConfig(n_nodes=n))
        rounds = 3
        procs = []
        for idx, root in enumerate(range(1, 1 + n_roots)):
            gid = next_group_id()
            dests = [d for d in range(n) if d != root]
            install_group(
                cluster, gid, build_tree(root, dests, shape="flat")
            )

            def sender(root=root, gid=gid):
                for _ in range(rounds):
                    handle = yield from nic_based_multicast(
                        cluster, gid, 64, root
                    )
                    yield handle.done

            procs.append(cluster.spawn(sender()))
            for d in dests:
                def consumer(d=d):
                    port = cluster.port(d)
                    for _ in range(rounds):
                        yield from port.receive()
                        yield from port.provide_receive_buffer()

                procs.append(cluster.spawn(consumer()))
        cluster.run(until=cluster.sim.all_of(procs))
        return cluster.now

    def fmmc(n_roots):
        n = 12
        cluster = Cluster(ClusterConfig(n_nodes=n))
        manager = FMMCCreditManager(
            cluster, node_id=0, total_credits=4, credits_per_grant=4
        )
        rounds = 3
        procs = []
        for idx, root in enumerate(range(1, 1 + n_roots)):
            gid = next_group_id()
            dests = [d for d in range(1, n) if d != root]
            install_group(
                cluster, gid, build_tree(root, dests, shape="flat")
            )
            procs.append(
                cluster.spawn(
                    fmmc_sender_program(manager, root, gid, 64, rounds, [])
                )
            )
            for d in dests:
                procs.append(
                    cluster.spawn(fmmc_consumer_program(cluster, d, rounds))
                )
        procs.append(cluster.spawn(manager.program(n_roots * rounds)))
        cluster.run(until=cluster.sim.all_of(procs))
        return cluster.now

    def sweep():
        return {
            "ours": {k: nic_based(k) for k in (1, 4)},
            "fmmc": {k: fmmc(k) for k in (1, 4)},
        }

    res = once(sweep)
    ours_ratio = res["ours"][4] / res["ours"][1]
    fmmc_ratio = res["fmmc"][4] / res["fmmc"][1]
    print()
    print(f"completion-time ratio 4 roots vs 1 root: "
          f"ours {ours_ratio:.2f}x, FM/MC {fmmc_ratio:.2f}x")
    # Decentralized reliability: concurrent roots barely interfere.
    # Central credit manager: near-linear serialization.
    assert ours_ratio < 2.2
    assert fmmc_ratio > 2.4
    assert fmmc_ratio > ours_ratio * 1.3
