"""Result containers and table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "Series",
    "FigureResult",
    "render_table",
    "render_scenario_result",
]


@dataclass
class Series:
    """One curve: a label and (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def xs(self) -> list[float]:
        return [p[0] for p in self.points]

    def ys(self) -> list[float]:
        return [p[1] for p in self.points]

    def y_at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"no point at x={x} in series {self.label!r}")


@dataclass
class FigureResult:
    """Everything one figure reproduction produced."""

    figure_id: str
    title: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: headline numbers to compare against the paper, name -> value
    headlines: dict[str, float] = field(default_factory=dict)
    #: free-form extra payload (tables, traces)
    extra: dict[str, Any] = field(default_factory=dict)

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure_id}")

    def table(self, x_name: str = "x", fmt: str = "{:.2f}") -> str:
        """Render all series against their shared x values."""
        xs = sorted({x for s in self.series for x in s.xs()})
        headers = [x_name] + [s.label for s in self.series]
        rows = []
        for x in xs:
            row = [str(int(x)) if float(x).is_integer() else f"{x:g}"]
            for s in self.series:
                try:
                    row.append(fmt.format(s.y_at(x)))
                except KeyError:
                    row.append("-")
            rows.append(row)
        return render_table(headers, rows)

    def render(self) -> str:
        out = [f"## {self.figure_id}: {self.title}", "", self.table()]
        if self.headlines:
            out.append("")
            out.append("Headlines:")
            for name, value in self.headlines.items():
                out.append(f"  {name}: {value:.2f}")
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def render_scenario_result(result: Any, registry: Any = None) -> str:
    """Render a :class:`~repro.scenario.harness.ScenarioResult` as text.

    Duck-typed over the per-point value shapes the harness produces
    (plain latencies, multicast measurements with per-destination
    detail, skew results) so this module needs no scenario import.

    ``registry`` — the metrics registry that observed the run, if any;
    failure-injected runs get a resilience section (``net.failures.*``
    and ``mcast.recovery.*`` counters plus the ``delivery_gap_us``
    histogram) appended after the result table.
    """
    spec = result.spec
    w = spec.workload
    title = spec.name or f"{w.kind} scenario"
    head = [
        f"## scenario: {title}",
        f"workload: {w.kind} scheme={w.scheme} "
        f"n_nodes={spec.cluster.n_nodes} topology={spec.cluster.topology}"
        + (f" tree={w.tree_shape}" if w.tree_shape else "")
        + (f" max_skew={w.max_skew:g}" if w.max_skew else "")
        + (
            f" loss={spec.cluster.loss.kind}"
            if spec.cluster.loss is not None
            else ""
        ),
        f"measurement: iterations={spec.measurement.iterations} "
        f"warmup={spec.measurement.warmup} metric={result.metric}",
        "",
    ]
    sizes = list(result.values)
    sample = result.values[sizes[0]]
    if hasattr(sample, "per_dest_delivery"):  # MulticastMeasurement
        headers = ["size", "latency", "max delivery", "ack trip"]
        rows = [
            [
                str(size),
                f"{m.latency:.2f}",
                f"{max(m.per_dest_delivery.values()):.2f}",
                f"{m.ack_trip:.2f}",
            ]
            for size, m in result.values.items()
        ]
    elif hasattr(sample, "mean_bcast_cpu_time"):  # SkewResult
        headers = ["size", "mean applied skew", "bcast cpu time"]
        rows = [
            [
                str(size),
                f"{r.mean_applied_skew:.2f}",
                f"{r.mean_bcast_cpu_time:.2f}",
            ]
            for size, r in result.values.items()
        ]
    elif hasattr(sample, "completion_us"):  # BroadcastResult
        headers = ["size", "completion us", "delivered",
                   "first delivery us", "last delivery us"]
        rows = [
            [
                str(size),
                f"{b.completion_us:.2f}",
                str(len(b.deliveries)),
                f"{min(b.deliveries.values()) - b.start_us:.2f}"
                if b.deliveries else "-",
                f"{max(b.deliveries.values()) - b.start_us:.2f}"
                if b.deliveries else "-",
            ]
            for size, b in result.values.items()
        ]
    elif hasattr(sample, "msgs_delivered"):  # ServingStats
        stats = sample
        head[-1:] = [
            f"traffic: {stats.n_groups} groups, "
            f"{stats.duration_us:g}us ({stats.warmup_us:g}us warmup), "
            f"posted={stats.msgs_posted} delivered={stats.msgs_delivered} "
            f"churn={stats.churn_events}",
            f"rates: {stats.delivered_msgs_per_sec:.0f} delivered msgs/s, "
            f"p50={stats.quantile(0.50):.1f}us "
            f"p99={stats.quantile(0.99):.1f}us",
            "",
        ]
        headers = ["group", "scheme", "posted", "delivered",
                   "churn epochs", "mean us", "max us"]
        rows = [
            [
                str(gid),
                g.scheme,
                str(g.posted),
                str(g.delivered),
                str(g.churn_epochs),
                f"{g.mean_delivery_us:.1f}",
                f"{g.max_delivery_us:.1f}",
            ]
            for gid, g in sorted(stats.per_group.items())
        ]
    else:
        headers = ["size", result.metric]
        rows = [
            [str(size), f"{value:.2f}"]
            for size, value in result.values.items()
        ]
    text = "\n".join(head) + render_table(headers, rows)
    if registry is not None:
        resilience = _render_resilience(registry)
        if resilience:
            text += "\n\n" + resilience
    return text


def _render_resilience(registry: Any) -> str | None:
    """The failure/recovery counter table, or ``None`` when failure-free.

    Rendering delegates to :func:`repro.obs.health.resilience_section`
    (lazily — ``obs`` sits above this layer, so the import must not run
    at module load), which returns ``None`` unless the run actually
    injected failures.
    """
    from repro.obs.health import resilience_section

    section = resilience_section(registry)
    if section is None:
        return None
    gap = section.pop("delivery_gap_us", None)
    out = [
        "resilience:",
        render_table(
            ["counter", "value"],
            [[name, str(value)] for name, value in sorted(section.items())],
        ),
    ]
    if gap is not None:
        out += [
            "",
            "delivery gap (us):",
            render_table(
                ["count", "mean", "p50", "p99", "max"],
                [[str(gap["count"]), f"{gap['mean']:.2f}",
                  f"{gap['p50']:g}", f"{gap['p99']:g}",
                  "-" if gap["max"] is None else f"{gap['max']:.2f}"]],
            ),
        ]
    return "\n".join(out)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
