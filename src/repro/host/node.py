"""A node: host + NIC + GM engine, wired to the network."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.gm.memory import RegisteredMemory
from repro.gm.protocol import GMEngine
from repro.host.process import Host
from repro.nic.lanai import NIC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.api import GMPort
    from repro.gm.params import GMCostModel
    from repro.net.fabric import Network
    from repro.sim.engine import Simulator

__all__ = ["Node"]


class Node:
    """One cluster node.

    "A node in a network consists of the host and the NIC" (paper §2).
    The node owns the registered-memory registry shared by its GM engine
    and whatever higher layers (multicast, MPI) attach to it.
    """

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        cost: "GMCostModel",
        network: "Network",
    ):
        self.sim = sim
        self.id = node_id
        self.cost = cost
        self.host = Host(sim, node_id, cost)
        self.nic = NIC(sim, node_id, cost, network)
        self.memory = RegisteredMemory(node_id)
        self.gm = GMEngine(self.nic, self.memory)
        # The paper's firmware extension rides alongside GM on every NIC.
        from repro.mcast.engine import McastEngine

        self.mcast = McastEngine(self)
        # Future-work extension: NIC-based collectives over group trees.
        from repro.coll.engine import CollectiveEngine

        self.coll = CollectiveEngine(self)

    def open_port(self, port_num: int = 0, owner: Any = None) -> "GMPort":
        """Open a GM port; defaults to owned by this node's host."""
        return self.gm.create_port(port_num, owner if owner is not None else self.host)

    def __repr__(self) -> str:
        return f"<Node {self.id}>"
