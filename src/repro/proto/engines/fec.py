"""XOR parity codec over k-packet blocks (the ``nack_fec`` repair math).

One parity fragment per block of up to *k* data fragments; any single
erased fragment is reconstructed from the parity and the k-1 survivors.
Fragments may have different lengths (the final fragment of a message is
usually short), so each fragment is encoded as a 4-byte big-endian
length prefix followed by its bytes, zero-padded to the block's widest
encoded fragment; the parity is the byte-wise XOR of those encodings.
Decoding XORs the parity with the surviving encodings, reads the length
prefix back, and truncates — recovering the erased fragment's exact
bytes *and* exact length.

The simulation carries payload *sizes*, not payload bytes, so the
in-sim repair in :mod:`repro.proto.engines.nack_fec` is structural (the
parity packet names its block members); this module is the byte-level
ground truth that the property-test suite checks the scheme against.
"""

from __future__ import annotations

__all__ = ["encode_parity", "recover_fragment"]

_LEN_PREFIX = 4
_MAX_FRAGMENT = (1 << (8 * _LEN_PREFIX)) - 1


def _encoded(fragment: bytes, width: int) -> bytes:
    pad = width - _LEN_PREFIX - len(fragment)
    return len(fragment).to_bytes(_LEN_PREFIX, "big") + fragment + b"\x00" * pad


def _xor_into(acc: bytearray, other: bytes) -> None:
    for i, b in enumerate(other):
        acc[i] ^= b


def encode_parity(fragments: list[bytes]) -> bytes:
    """The parity block protecting *fragments* (one erasure per block)."""
    if not fragments:
        raise ValueError("parity needs at least one fragment")
    for frag in fragments:
        if len(frag) > _MAX_FRAGMENT:
            raise ValueError(
                f"fragment of {len(frag)} bytes exceeds the "
                f"{_LEN_PREFIX}-byte length prefix"
            )
    width = _LEN_PREFIX + max(len(f) for f in fragments)
    parity = bytearray(width)
    for frag in fragments:
        _xor_into(parity, _encoded(frag, width))
    return bytes(parity)


def recover_fragment(parity: bytes, survivors: list[bytes]) -> bytes:
    """Reconstruct the one erased fragment of a block.

    *survivors* are the block's other fragments, in any order; *parity*
    is the block's :func:`encode_parity` output.  Returns the erased
    fragment's exact bytes.
    """
    width = len(parity)
    acc = bytearray(parity)
    for frag in survivors:
        if _LEN_PREFIX + len(frag) > width:
            raise ValueError(
                f"survivor of {len(frag)} bytes does not fit a "
                f"{width}-byte parity block"
            )
        _xor_into(acc, _encoded(frag, width))
    length = int.from_bytes(acc[:_LEN_PREFIX], "big")
    if length > width - _LEN_PREFIX:
        raise ValueError(
            f"recovered length {length} exceeds the parity block — "
            "wrong survivors or more than one erasure"
        )
    return bytes(acc[_LEN_PREFIX:_LEN_PREFIX + length])
