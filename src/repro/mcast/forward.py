"""NIC-based forwarding (intermediate side of the multicast).

"When having received a multicast packet, the intermediate NIC looks into
its table to find a list of destinations for that packet.  This packet
can then be queued for forwarding with a changed header.  Thus the
overhead at the intermediate host to receive the message and initiate the
forwarding is eliminated.  For multiple packet messages ... an
intermediate NIC can forward the packets of a message without waiting for
the arrival of the complete message" (paper §3).

Design choices (paper §5) implemented here:

* the intermediate NIC **transforms the receive token into a send token**
  instead of drawing from the send-token pool (no new resource — no
  deadlock on token exhaustion);
* the SRAM receive buffer is released as soon as forwarding and the
  host-copy are done; **retransmission uses the replica in host memory**,
  which stays registered (pinned) until every child acknowledges.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.gm.api import RecvCompletion
from repro.net.packet import Packet
from repro.nic.descriptor import PacketDescriptor
from repro.nic.lanai import TX_PRIO_DATA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mcast.engine import McastEngine
    from repro.mcast.group import GroupState, _HeldMessage
    from repro.mcast.reliability import McastRecord

__all__ = ["Forwarding"]


class Forwarding:
    """Intermediate-node forwarding: one of ``McastEngine``'s composed
    components.  Replica chains are shared with the multisend component;
    acks and timers go through the reliability component."""

    def __init__(self, engine: "McastEngine"):
        self.engine = engine
        self.nic = engine.nic
        self.gm = engine.gm
        self.memory = engine.memory
        self.sim = engine.sim
        self.cost = engine.cost
        self.table = engine.table

    def _handle_mcast_data(self, pkt: Packet, buf: Any) -> Generator:
        # nic.processing() inlined on the per-packet path (profile-hot).
        cpu = self.nic.cpu
        ev = cpu.use_fast(self.cost.nic_recv_processing)
        if ev is None:
            yield from cpu.use(self.cost.nic_recv_processing)
        else:
            yield ev
        h = pkt.header
        m = self.sim.metrics
        group = self.table.get(h.group)
        if group is None or group.is_root:
            # Unknown group (membership not yet preposted) or a stray
            # loop-back: drop; the parent's timeout recovers once the
            # group exists.
            self.engine.unknown_group_dropped += 1
            if m is not None:
                m.inc("mcast.drops.unknown_group")
            if buf is not None:
                buf.release()
            return
        # The group's reliability family decides acceptance.  For the
        # ack-window family the hooks are pure (zero simulated events):
        # duplicate iff seq <= recv_seq, accept iff seq == recv_seq + 1.
        receiver = self.engine.reliability.receiver_engine(group)
        verdict = receiver.classify(group, h)
        if verdict == "duplicate":
            self.engine.duplicates_dropped += 1
            if m is not None:
                m.inc("mcast.drops.duplicate")
            if buf is not None:
                buf.release()
            # Re-ack: exactly-once delivery must survive lost acks.
            yield from self.engine.reliability.send_group_ack(group)
            return
        if verdict != "accept":
            self.engine.out_of_order_dropped += 1
            if m is not None:
                m.inc("mcast.drops.out_of_order")
            if buf is not None:
                buf.release()
            return
        port = self.gm.ports.get(group.port_num)
        if port is None:
            if buf is not None:
                buf.release()
            return
        held = group.held.get(h.msg_id)
        if held is None:
            # First packet of a message: claim (and transform) a receive
            # token, and pin a host region for possible retransmission.
            rtoken = port.take_recv_token()
            if rtoken is None:
                self.engine.no_token_dropped += 1
                if m is not None:
                    m.inc("mcast.drops.no_token")
                self.sim.record(
                    self.nic.name, "mcast_no_token", group=h.group, seq=h.seq
                )
                if buf is not None:
                    buf.release()
                return
            rtoken.transformed = bool(group.children)
            held = self._hold_message(group, h, rtoken)
        if h.chunk == 0 and h.info.get("app"):
            held.app_info = dict(h.info["app"])
        if h.chunk == 0:
            # Every member (leaves included) remembers message geometry:
            # a later regraft can make any member a parent, and resyncing
            # its new children needs records regenerated from this.
            group.msg_meta[h.msg_id] = (
                h.seq, h.nchunks, h.msg_size, h.trace_id
            )
        receiver.on_accept(group, h)
        ev = cpu.use_fast(self.cost.nic_group_lookup)
        if ev is None:
            yield from cpu.use(self.cost.nic_group_lookup)
        else:
            yield ev
        if receiver.ack_after_accept(group, h):
            yield from self.engine.reliability.send_group_ack(group)

        # The same SRAM bytes are now wanted by two engines: the transmit
        # path (forwarding replicas) and the receive DMA (host copy).
        refs = 1  # host copy
        if group.children:
            refs += 1
            record = self._make_forward_record(group, held, h)
        else:
            record = None
        refbox = {"count": refs}
        if record is not None:
            # Forwarding continues in the background so the receive loop
            # can take the next packet off the wire immediately; ordering
            # is preserved by the copy engine's FIFO.
            self.sim.process(
                self._forward_packet(group, record, pkt, buf, refbox),
                name=f"{self.nic.name}.mcast_fwd",
            )
        self.sim.process(
            self._copy_to_host(group, held, pkt, buf, refbox),
            name=f"{self.nic.name}.mcast_rdma",
        )

    def _forward_packet(
        self, group: "GroupState", record: "McastRecord", pkt: Packet,
        buf, refbox,
    ) -> Generator:
        """Per-packet forwarding work at an intermediate NIC.

        The LANai does real work to forward: transform the receive token
        and set up per-child send records (on the processor), and stage
        the packet between the receive and transmit rings (on the copy
        engine).  The copy engine pipelines across the packets of one
        message, but a single-packet 2-4 KB message eats the full copy
        latency — the paper's Fig. 5b dip.
        """
        h = pkt.header
        forward_started = self.sim.now
        yield from self.nic.processing(self.cost.nic_forward_processing)
        yield from self.nic.sram_copy(h.payload)
        fr = self.sim.flight
        if fr is not None and h.trace_id >= 0:
            fr.record(
                self.sim.now, h.trace_id, "sram_copy", self.nic.id,
                pkt.uid, h.chunk,
            )
        self.engine.reliability.arm(group, record)
        first, rest = group.children[0], group.children[1:]
        fwd = pkt.clone(src=self.nic.id, dst=first)
        yield from self.nic.processing(self.cost.nic_header_rewrite)
        desc = PacketDescriptor(
            fwd,
            buffer=buf,
            on_transmit=self._forward_callback,
            context={
                "remaining": list(rest),
                "record": record,
                "group": group,
                "refs": refbox,
            },
        )
        record.sent_at = self.sim.now
        m = self.sim.metrics
        if m is not None:
            m.observe("nic.forward_service_us", self.sim.now - forward_started)
        if self.sim.trace.enabled:
            self.sim.record(
                self.nic.name, "forward", group=h.group, seq=h.seq,
                chunk=h.chunk, first_child=first,
            )
        self.nic.queue_tx(desc, TX_PRIO_DATA)
        self.engine.reliability.sender_engine(group).on_data_queued(
            group, record
        )

    def _handle_mcast_fec(self, pkt: Packet, buf: Any) -> Generator:
        """Parity packet (NACK+FEC family): hand it to the receiver
        engine, which may reconstruct one lost data packet in place
        (no repair round-trip).  Parity is hop-local — it is consumed
        here, never forwarded; each forwarding hop emits its own."""
        cpu = self.nic.cpu
        ev = cpu.use_fast(self.cost.nic_recv_processing)
        if ev is None:
            yield from cpu.use(self.cost.nic_recv_processing)
        else:
            yield ev
        h = pkt.header
        group = self.table.get(h.group)
        if buf is not None:
            buf.release()
        if group is None or group.is_root:
            self.engine.unknown_group_dropped += 1
            m = self.sim.metrics
            if m is not None:
                m.inc("mcast.drops.unknown_group")
            return
        receiver = self.engine.reliability.receiver_engine(group)
        yield from receiver.on_parity(group, pkt)

    def _hold_message(self, group: "GroupState", h, rtoken) -> "_HeldMessage":
        from repro.mcast.group import _HeldMessage

        held = _HeldMessage(
            msg_id=h.msg_id,
            nchunks=h.nchunks,
            msg_size=h.msg_size,
            src=h.origin,
            token=rtoken,
        )
        if group.children:
            # Pin the host replica for retransmission until all children
            # acknowledge everything (keeps GM's registered-memory rule).
            held.region = self.memory.register(h.msg_size)
            held.region.pin()
        group.held[h.msg_id] = held
        return held

    def _make_forward_record(
        self, group: "GroupState", held: "_HeldMessage", h
    ) -> "McastRecord":
        from repro.mcast.reliability import McastRecord

        record = McastRecord(
            seq=h.seq,  # "the same sequence number and send record"
            group_id=group.group_id,
            msg_id=h.msg_id,
            chunk=h.chunk,
            nchunks=h.nchunks,
            payload=h.payload,
            msg_size=h.msg_size,
            unacked=set(group.children),
            token=None,
            app_info=held.app_info if h.chunk == 0 and held.app_info else None,
            trace_id=h.trace_id,
        )
        group.window.add(record)
        held.pending_records += 1
        if h.chunk == h.nchunks - 1:
            held.all_records_created = True
        return record

    def _forward_callback(self, desc: PacketDescriptor):
        """Replica chain for forwarding: same as the multisend callback,
        but the buffer is shared with the host-copy DMA (refcounted)."""
        remaining: list[int] = desc.context["remaining"]
        if not remaining:
            self._drop_ref(desc.buffer, desc.context["refs"])
            return None
        return self.engine.multisend._emit_next_replica(desc, remaining)

    def _drop_ref(self, buf, refbox) -> None:
        refbox["count"] -= 1
        if refbox["count"] == 0 and buf is not None:
            buf.release()

    def _copy_to_host(
        self, group: "GroupState", held: "_HeldMessage", pkt: Packet,
        buf, refbox,
    ) -> Generator:
        """RDMA the packet up to the host, off the forwarding critical
        path; deliver the receive event once all chunks have landed."""
        # nic.dma_write() inlined on the per-packet path (profile-hot).
        nic = self.nic
        duration = nic.cost.dma_write_time(pkt.header.payload)
        ev = nic.pci.use_fast(duration)
        if ev is None:
            yield from nic.pci.use(duration)
        else:
            yield ev
        self._drop_ref(buf, refbox)
        held.chunks_delivered += 1
        if held.chunks_delivered < held.nchunks:
            return
        yield from self.nic.processing(self.cost.nic_event_post)
        held.delivered_to_host = True
        fr = self.sim.flight
        if fr is not None and pkt.header.trace_id >= 0:
            fr.record(
                self.sim.now, pkt.header.trace_id, "host_deliver",
                self.nic.id, pkt.uid, pkt.header.chunk,
            )
        port = self.gm.ports.get(group.port_num)
        if port is not None:
            port.deliver_event(
                RecvCompletion(
                    src=held.src,
                    src_port=group.port_num,
                    size=held.msg_size,
                    msg_id=held.msg_id,
                    group=group.group_id,
                    received_at=self.sim.now,
                    info=held.app_info,
                )
            )
        self.engine._maybe_release_held(group, held)
