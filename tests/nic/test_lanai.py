"""Unit tests for the NIC core: engines, dispatch, descriptors, DMA."""

import pytest

from repro.gm.params import GMCostModel
from repro.net import Network, Packet, PacketHeader, PacketType, single_switch
from repro.nic import NIC, HostCommand, PacketDescriptor
from repro.sim import Simulator


def make_nics(n=2, cost=None):
    sim = Simulator()
    cost = cost or GMCostModel()
    topo = single_switch(
        sim, n, cost.wire_bandwidth, cost.link_latency, cost.switch_hop_latency
    )
    net = Network(sim, topo)
    nics = [NIC(sim, i, cost, net) for i in range(n)]
    return sim, nics


def data_packet(src, dst, payload=64, ptype=PacketType.DATA, seq=1):
    return Packet(
        header=PacketHeader(
            ptype=ptype, src=src, dst=dst, origin=src, payload=payload, seq=seq
        )
    )


class TestDispatch:
    def test_unknown_command_raises(self):
        sim, (nic, _) = make_nics()
        nic.post_command(HostCommand())
        with pytest.raises(LookupError):
            sim.run()

    def test_command_fetch_cost_charged(self):
        sim, (nic, _) = make_nics()
        times = []

        def handler(cmd):
            times.append(sim.now)
            return
            yield  # pragma: no cover

        nic.command_handlers[HostCommand] = handler
        nic.post_command(HostCommand())
        sim.run()
        assert times == [pytest.approx(nic.cost.nic_command_fetch)]

    def test_unhandled_packet_releases_buffer(self):
        sim, (a, b) = make_nics()
        # No handler registered for DATA on b.
        a.queue_tx(PacketDescriptor(data_packet(0, 1)))
        sim.run()
        assert b.recv_buffers.free == b.recv_buffers.size
        assert b.packets_received == 1

    def test_wrong_source_transmission_rejected(self):
        sim, (a, _) = make_nics()
        a.queue_tx(PacketDescriptor(data_packet(1, 0)))  # src != a.id
        with pytest.raises(RuntimeError, match="asked to transmit"):
            sim.run()


class TestReceivePath:
    def test_data_consumes_recv_buffer_acks_do_not(self):
        sim, (a, b) = make_nics()
        seen = []

        def handler(pkt, buf):
            seen.append((pkt.header.ptype, buf))
            if buf is not None:
                buf.release()
            return
            yield  # pragma: no cover

        b.packet_handlers[PacketType.DATA] = handler
        b.packet_handlers[PacketType.ACK] = handler
        a.queue_tx(PacketDescriptor(data_packet(0, 1)))
        a.queue_tx(
            PacketDescriptor(data_packet(0, 1, payload=0, ptype=PacketType.ACK))
        )
        sim.run()
        kinds = [k for k, _ in seen]
        assert PacketType.DATA in kinds and PacketType.ACK in kinds
        data_buf = next(buf for k, buf in seen if k is PacketType.DATA)
        ack_buf = next(buf for k, buf in seen if k is PacketType.ACK)
        assert data_buf is not None
        assert ack_buf is None

    def test_rx_overrun_drops_packet(self):
        cost = GMCostModel(nic_recv_buffers=1)
        sim, (a, b) = make_nics(cost=cost)

        def slow_handler(pkt, buf):
            yield sim.timeout(1000.0)
            buf.release()

        b.packet_handlers[PacketType.DATA] = slow_handler
        for seq in range(3):
            a.queue_tx(PacketDescriptor(data_packet(0, 1, seq=seq)))
        sim.run()
        assert b.rx_overruns >= 1


class TestDescriptors:
    def test_default_completion_frees_buffer(self):
        sim, (a, b) = make_nics()
        buf = a.send_buffers.try_acquire()
        a.queue_tx(PacketDescriptor(data_packet(0, 1), buffer=buf))
        sim.run()
        assert a.send_buffers.free == a.send_buffers.size

    def test_callback_runs_after_transmit(self):
        sim, (a, b) = make_nics()
        fired = []

        def cb(desc):
            fired.append(sim.now)
            return None

        a.queue_tx(PacketDescriptor(data_packet(0, 1), on_transmit=cb))
        sim.run()
        assert len(fired) == 1
        assert fired[0] > 0

    def test_generator_callback_can_requeue(self):
        # The GM-2 mechanism: rewrite the header, send the same bytes
        # again.
        sim, nics = make_nics(3)
        a = nics[0]
        received = []
        for nic in nics[1:]:
            def handler(pkt, buf, _nic=nic):
                received.append((_nic.id, pkt.dst))
                if buf is not None:
                    buf.release()
                return
                yield  # pragma: no cover

            nic.packet_handlers[PacketType.DATA] = handler

        def replicate(desc):
            if not desc.context["remaining"]:
                if desc.buffer is not None:
                    desc.buffer.release()
                return None

            def work():
                yield from a.processing(a.cost.nic_header_rewrite)
                nxt = desc.context["remaining"].pop(0)
                desc.retarget(dst=nxt)
                a.queue_tx(desc)

            return work()

        buf = a.send_buffers.try_acquire()
        desc = PacketDescriptor(
            data_packet(0, 1), buffer=buf,
            on_transmit=replicate, context={"remaining": [2]},
        )
        a.queue_tx(desc)
        sim.run()
        assert sorted(received) == [(1, 1), (2, 2)]
        assert a.send_buffers.free == a.send_buffers.size

    def test_retarget_preserves_other_fields(self):
        desc = PacketDescriptor(data_packet(0, 1, seq=9))
        old_uid = desc.packet.uid
        desc.retarget(dst=5)
        assert desc.packet.dst == 5
        assert desc.packet.header.seq == 9
        assert desc.packet.uid != old_uid


class TestDMA:
    def test_pci_shared_between_directions(self):
        sim, (nic, _) = make_nics()
        done = []

        def reader():
            yield from nic.dma(2100)  # 10us at 210 B/us + startup
            done.append(("read", sim.now))

        def writer():
            yield from nic.dma_write(1550)  # 10us at 155 B/us + startup
            done.append(("write", sim.now))

        sim.process(reader())
        sim.process(writer())
        sim.run()
        # Serialized on one bus: second finishes after both durations.
        assert done[1][1] == pytest.approx(
            nic.cost.dma_time(2100) + nic.cost.dma_write_time(1550)
        )

    def test_write_slower_than_read(self):
        cost = GMCostModel()
        assert cost.dma_write_time(4096) > cost.dma_time(4096)

    def test_sram_copy_engine_independent_of_cpu(self):
        sim, (nic, _) = make_nics()
        done = {}

        def cpu_user():
            yield from nic.processing(10.0)
            done["cpu"] = sim.now

        def copier():
            yield from nic.sram_copy(1900)  # 10us at 190 B/us
            done["copy"] = sim.now

        sim.process(cpu_user())
        sim.process(copier())
        sim.run()
        # Parallel engines: both finish at ~10us, not 20.
        assert done["cpu"] == pytest.approx(10.0)
        assert done["copy"] == pytest.approx(10.0)
