"""ScenarioSpec serialization and validation."""

import pytest

from repro.config import ClusterConfig, cost_from_dict, cost_to_dict
from repro.errors import ConfigError
from repro.gm.params import GMCostModel
from repro.net.fault import BernoulliLoss, BitErrorLoss, LossSpec
from repro.scenario import (
    MPI_SIZES,
    PAPER_SIZES,
    QUICK_SIZES,
    MeasurementSpec,
    ScenarioSpec,
    TrafficSpec,
    WorkloadSpec,
)


def rich_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="lossy-subtree",
        workload=WorkloadSpec(
            kind="multicast",
            scheme="nic_based",
            tree_shape="binomial",
            group=(2, 3, 5),
            root=1,
        ),
        cluster=ClusterConfig(
            n_nodes=8,
            seed=7,
            topology="single",
            cost=GMCostModel(link_latency=0.2),
            loss=LossSpec(
                kind="bernoulli", rate=0.1, packet_types=("MCAST_DATA",)
            ),
        ),
        measurement=MeasurementSpec(sizes=(64, 4096), iterations=4, warmup=1),
    )


def test_json_round_trip_rich():
    spec = rich_spec()
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_json_round_trip_defaults():
    spec = ScenarioSpec(workload=WorkloadSpec(kind="multisend", scheme="nb"))
    again = ScenarioSpec.from_json(spec.to_json())
    assert again == spec
    assert again.cluster == ClusterConfig()


def test_to_dict_omits_defaults():
    data = ScenarioSpec(workload=WorkloadSpec(kind="unicast")).to_dict()
    assert data["cluster"] == {"n_nodes": 16}
    assert "name" not in data
    assert "tree_shape" not in data["workload"]


def test_cost_overrides_round_trip():
    cost = GMCostModel(link_latency=0.5, mtu=2048)
    assert cost_from_dict(cost_to_dict(cost)) == cost
    assert cost_to_dict(GMCostModel()) == {}


def test_cost_preset_round_trip():
    slow = cost_from_dict({"preset": "slow_nic"})
    assert slow == GMCostModel.slow_nic()
    with pytest.raises(ConfigError, match="preset"):
        cost_from_dict({"preset": "warp_speed"})
    with pytest.raises(ConfigError, match="unknown cost model"):
        cost_from_dict({"link_latencyy": 1.0})


def test_metric_defaults_per_kind():
    spec = ScenarioSpec(workload=WorkloadSpec(kind="multicast"))
    assert spec.metric == "max_leaf_delivery_plus_ack_us"
    spec = ScenarioSpec(
        workload=WorkloadSpec(kind="mpi_skew", scheme="nic"),
        measurement=MeasurementSpec(metric="bcast_cpu_time_us"),
    )
    assert spec.metric == "bcast_cpu_time_us"


def test_destinations_default_and_group():
    spec = ScenarioSpec(
        workload=WorkloadSpec(kind="multicast"),
        cluster=ClusterConfig(n_nodes=4),
    )
    assert spec.destinations() == [1, 2, 3]
    assert rich_spec().destinations() == [2, 3, 5]


def test_legacy_scheme_spellings_resolve():
    nb = WorkloadSpec(kind="multisend", scheme="nb")
    assert nb.canonical_scheme == "nic_multisend"
    hb = WorkloadSpec(kind="multicast", scheme="hb")
    assert hb.canonical_scheme == "host_based"
    assert WorkloadSpec(kind="mpi_bcast", scheme="host").nic is False


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"kind": "teleport"}, "workload kind"),
        ({"kind": "multicast", "scheme": "quantum"}, "scheme"),
        ({"kind": "mpi_bcast", "scheme": "nb2"}, "MPI scheme"),
        ({"kind": "multicast", "tree_shape": "star"}, "tree shape"),
        ({"kind": "multicast", "root": -1}, "root"),
        ({"kind": "mpi_skew", "scheme": "nic", "max_skew": -1.0}, "max_skew"),
        ({"kind": "multicast", "group": (0, 1)}, "root"),
        ({"kind": "multicast", "group": (1, 1)}, "distinct"),
        ({"kind": "multicast", "group": (-2,)}, ">= 0"),
    ],
)
def test_workload_validation_errors(kwargs, match):
    with pytest.raises(ConfigError, match=match):
        WorkloadSpec(**kwargs)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"sizes": ()}, "at least one"),
        ({"sizes": (-1,)}, "sizes"),
        ({"iterations": 0}, "iterations"),
        ({"warmup": -1}, "warmup"),
        ({"metric": "frobs_per_us"}, "metric"),
    ],
)
def test_measurement_validation_errors(kwargs, match):
    with pytest.raises(ConfigError, match=match):
        MeasurementSpec(**kwargs)


def test_cross_validation_against_cluster():
    with pytest.raises(ConfigError, match="outside"):
        ScenarioSpec(
            workload=WorkloadSpec(kind="multicast", root=8),
            cluster=ClusterConfig(n_nodes=8),
        )
    with pytest.raises(ConfigError, match="outside"):
        ScenarioSpec(
            workload=WorkloadSpec(kind="multicast", group=(9,)),
            cluster=ClusterConfig(n_nodes=8),
        )
    with pytest.raises(ConfigError, match="at least 2"):
        ScenarioSpec(
            workload=WorkloadSpec(kind="unicast"),
            cluster=ClusterConfig(n_nodes=1),
        )


@pytest.mark.parametrize(
    "payload, match",
    [
        ('{"workload": {"kind": "unicast", "warp": 9}}', "workload"),
        ('{"workload": {"kind": "unicast"}, "speed": 9}', "scenario"),
        (
            '{"workload": {"kind": "unicast"},'
            ' "measurement": {"colour": "red"}}',
            "measurement",
        ),
        ('{"workload": {"kind": "unicast"}, "cluster": {"nodes": 4}}',
         "cluster"),
        ('{"cluster": {"n_nodes": 4}}', "workload"),
        ("{not json", "not valid JSON"),
    ],
)
def test_unknown_keys_and_bad_json_rejected(payload, match):
    with pytest.raises(ConfigError, match=match):
        ScenarioSpec.from_json(payload)


def test_loss_spec_builds_each_model_kind():
    assert LossSpec().build() is None
    model = LossSpec(kind="bernoulli", rate=0.25).build()
    assert isinstance(model, BernoulliLoss)
    model = LossSpec(kind="bit_error", ber=1e-6).build()
    assert isinstance(model, BitErrorLoss)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"kind": "gremlins"}, "loss kind"),
        ({"kind": "bernoulli", "rate": 1.5}, "rate"),
        ({"kind": "bit_error", "ber": 1.0}, "bit error"),
        ({"kind": "bernoulli", "packet_types": ("WARP",)}, "packet type"),
    ],
)
def test_loss_spec_validation_errors(kwargs, match):
    with pytest.raises(ConfigError, match=match):
        LossSpec(**kwargs)


def test_loss_spec_unknown_key_rejected():
    with pytest.raises(ConfigError, match="loss spec"):
        LossSpec.from_dict({"kind": "bernoulli", "rte": 0.1})


def test_quick_sizes_are_subsets_of_the_paper_sweeps():
    """The canonical quick lists thin the full sweeps, never extend them."""
    assert set(QUICK_SIZES["multisend"]) <= set(PAPER_SIZES)
    assert set(QUICK_SIZES["multicast"]) <= set(PAPER_SIZES)
    assert set(QUICK_SIZES["mpi_bcast"]) <= set(MPI_SIZES)
    for sizes in QUICK_SIZES.values():
        assert sizes == sorted(sizes)


# -- TrafficSpec (serving workloads) ---------------------------------------

def serving_spec_dict() -> dict:
    return {
        "workload": {"kind": "serving"},
        "cluster": {"n_nodes": 8, "seed": 3},
        "traffic": {
            "duration_us": 5000.0,
            "n_groups": 2,
            "group_size": 3,
            "rate_per_group": 0.002,
            "sizes": [1024, 4096],
            "schemes": ["nic_based", "host_based"],
            "churn_interval_us": 1000.0,
            "warmup_us": 500.0,
        },
    }


def test_traffic_spec_unknown_key_rejected():
    with pytest.raises(ConfigError, match="traffic spec"):
        TrafficSpec.from_dict({"duration_us": 100.0, "rte_per_group": 0.1})


def test_serving_scenario_round_trips_through_json():
    import json

    spec = ScenarioSpec.from_dict(serving_spec_dict())
    again = ScenarioSpec.from_json(json.dumps(spec.to_dict()))
    assert again == spec
    assert again.traffic.schemes == ("nic_based", "host_based")


def test_serving_scenario_requires_traffic_section():
    payload = serving_spec_dict()
    del payload["traffic"]
    with pytest.raises(ConfigError, match="traffic"):
        ScenarioSpec.from_dict(payload)


def test_traffic_section_requires_serving_kind():
    payload = serving_spec_dict()
    payload["workload"] = {"kind": "unicast"}
    with pytest.raises(ConfigError, match="serving"):
        ScenarioSpec.from_dict(payload)


@pytest.mark.parametrize(
    "overrides, match",
    [
        ({"duration_us": 0.0}, "duration_us"),
        ({"n_groups": 0}, "n_groups"),
        ({"rate_per_group": 0.0}, "rate_per_group"),
        ({"sizes": []}, "at least one message size"),
        ({"schemes": ["warp_drive"]}, "warp_drive"),
        ({"schemes": ["fmmc"]}, "sustained"),
        ({"churn_interval_us": -1.0}, "churn_interval_us"),
        ({"warmup_us": 5000.0}, "warmup_us"),
    ],
)
def test_traffic_spec_validation_errors(overrides, match):
    payload = serving_spec_dict()["traffic"]
    payload.update(overrides)
    with pytest.raises(ConfigError, match=match):
        TrafficSpec.from_dict(payload)
