"""Conservative-parallel simulation: shards, lookahead, safe windows.

The datacenter-regime experiments (256-node serving fabrics, 1024-node
Clos multicasts) are wall-clock-bound on one core.  This module
partitions a :class:`~repro.net.topology.Topology`'s simulation state —
NICs, switches, and the directed links between them — into *shards*,
runs one :class:`~repro.sim.engine.Simulator` per shard, and
synchronizes them with the classic conservative (Chandy–Misra / PPT
``minDelay``) barrier: link propagation delay is the lookahead.

**Ownership.**  Every directed link has exactly one owner shard, so its
contention state (claims, releases, FIFO queue) is only ever touched on
that shard; replicas on other shards stay idle:

* a link adjacent to a NIC (either direction) belongs to that NIC's
  shard — injection starts locally and final delivery runs where the
  destination NIC's sinks live;
* a switch→switch link belongs to the source switch's owner (leaf
  switches go to the majority shard of their attached NICs, pure spine
  switches round-robin).

A cut-through traversal (:class:`repro.net.fabric._Traversal`) walks
link by link; when the *next* link on the route is owned by another
shard, the hop becomes a timestamped inter-shard message, resumed on
the owner at exactly the instant the local claim callback would have
run.  Because a "next link" always begins at a switch, the link just
crossed terminated at that switch and therefore carried the switch
hop latency — every handoff is announced at least ``link_latency +
switch_hop_latency`` ahead of its due time.

**Safe windows.**  With lookahead ``L = min`` latency over *cut feeder*
links (links that can precede a cross-shard hop), all events in
``[t_min, t_min + L)`` — where ``t_min`` is the global minimum next
event time — are causally independent across shards: any message a
shard emits inside the window is due at or after the window's end.
:class:`ShardSet` repeatedly grants that window to every shard
(:meth:`Simulator.run_window` processes strictly-before-horizon
events), then exchanges the accumulated messages.

Intra-shard traffic never notices any of this: the Kernel v3 fast paths
(``claim_fast``, inlined heap pushes, now-queues, the timer wheel) run
unchanged, and an unpartitioned :class:`~repro.net.fabric.Network`
costs one ``None`` check per packet hop.

**Exactness.**  Event timestamps are exact, not approximate.  The one
divergence from serial execution is tie-breaking between events on
*different* shards scheduled for the same ``(time, priority)`` — the
serial kernel orders those by global insertion sequence, which no
partitioned execution can reproduce.  The pinned determinism proofs
(golden trace, quick fig tables, serving snapshot) contain no such
cross-shard ties; the regression tests re-verify this by byte-comparing
partitioned and serial outputs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.fabric import Network
    from repro.net.topology import Topology
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceRecord

__all__ = [
    "PARTITIONERS",
    "PartitionPlan",
    "ShardSet",
    "merge_flight_events",
    "merge_traces",
    "run_sharded_processes",
]

_NIC = "nic"
_SWITCH = "switch"
_INF = float("inf")

#: Registered node-set partitioners (see :meth:`PartitionPlan.from_topology`).
PARTITIONERS = ("contiguous", "switch_affine")


def _contiguous(topo: "Topology", n_shards: int, seed: int) -> list[int]:
    """Balanced contiguous id ranges: shard of node i = i*k // n."""
    n = topo.n_nodes
    return [i * n_shards // n for i in range(n)]


def _switch_affine(topo: "Topology", n_shards: int, seed: int) -> list[int]:
    """Keep each leaf switch's NICs adjacent; split contiguously.

    Nodes are ordered leaf switch by leaf switch (leaf visit order
    rotated by ``seed``), then that order is cut into ``n_shards``
    balanced contiguous ranges — so at most ``n_shards - 1`` leaf
    groups straddle a shard boundary, shard sizes never differ by more
    than one, and no shard can come out empty (unlike a
    whole-leaf-per-shard greedy pack, which degenerates when there are
    fewer leaves than shards, e.g. any single-switch fabric).
    """
    leaf_nics: dict[int, list[int]] = {}
    isolated: list[int] = []
    for i in range(topo.n_nodes):
        attached = [
            nbr for nbr in topo.graph.neighbors((_NIC, i))
            if nbr[0] == _SWITCH
        ]
        if attached:
            leaf_nics.setdefault(min(a[1] for a in attached), []).append(i)
        else:
            isolated.append(i)
    leaves = sorted(leaf_nics)
    if leaves:
        rot = seed % len(leaves)
        leaves = leaves[rot:] + leaves[:rot]
    ordered = [nic for leaf in leaves for nic in leaf_nics[leaf]]
    ordered.extend(isolated)
    n = len(ordered)
    owner = [0] * topo.n_nodes
    for pos, nic in enumerate(ordered):
        owner[nic] = pos * n_shards // n
    return owner


_PARTITIONER_FNS = {
    "contiguous": _contiguous,
    "switch_affine": _switch_affine,
}


class PartitionPlan:
    """A deterministic assignment of topology state to shards.

    Build one with :meth:`from_topology`; the same ``(topology shape,
    n_shards, partitioner, seed)`` always yields the same plan, so every
    shard (including pool workers in another process) derives identical
    ownership from its own topology replica.
    """

    def __init__(
        self,
        n_nodes: int,
        n_shards: int,
        node_to_shard: tuple[int, ...],
        switch_owner: tuple[int, ...],
        lookahead: float,
        n_cut_links: int,
        partitioner: str,
        seed: int,
    ):
        self.n_nodes = n_nodes
        self.n_shards = n_shards
        self.node_to_shard = node_to_shard
        self.switch_owner = switch_owner
        #: Minimum latency over cut feeder links — the safe-window width.
        self.lookahead = lookahead
        self.n_cut_links = n_cut_links
        self.partitioner = partitioner
        self.seed = seed

    # -- construction ------------------------------------------------------
    @classmethod
    def from_topology(
        cls,
        topo: "Topology",
        n_shards: int,
        partitioner: str = "switch_affine",
        seed: int = 0,
    ) -> "PartitionPlan":
        if n_shards < 1:
            raise ConfigError(f"need at least one shard, got {n_shards}")
        if n_shards > topo.n_nodes:
            raise ConfigError(
                f"{n_shards} shards cannot all be non-empty with "
                f"{topo.n_nodes} nodes"
            )
        try:
            fn = _PARTITIONER_FNS[partitioner]
        except KeyError:
            raise ConfigError(
                f"unknown partitioner {partitioner!r}; "
                f"pick one of {PARTITIONERS}"
            ) from None
        node_to_shard = fn(topo, n_shards, seed)
        if len(set(node_to_shard)) != n_shards:
            raise ConfigError(
                f"partitioner {partitioner!r} left a shard empty "
                f"({n_shards} shards over {topo.n_nodes} nodes)"
            )
        switch_owner = cls._assign_switches(topo, node_to_shard, n_shards)
        plan = cls(
            n_nodes=topo.n_nodes,
            n_shards=n_shards,
            node_to_shard=tuple(node_to_shard),
            switch_owner=tuple(switch_owner),
            lookahead=_INF,
            n_cut_links=0,
            partitioner=partitioner,
            seed=seed,
        )
        plan.lookahead, plan.n_cut_links = plan._cut_scan(topo)
        if n_shards > 1 and plan.n_cut_links and plan.lookahead <= 0.0:
            raise ConfigError(
                "cannot partition a topology with zero-latency cut links "
                "(no conservative lookahead window exists)"
            )
        return plan

    @staticmethod
    def _assign_switches(
        topo: "Topology", node_to_shard: list[int], n_shards: int
    ) -> list[int]:
        """Leaf switches follow their NIC majority; spines round-robin."""
        owner = []
        for sw in topo.switches:
            attached = [
                nbr[1]
                for nbr in topo.graph.neighbors((_SWITCH, sw.switch_id))
                if nbr[0] == _NIC
            ]
            if attached:
                votes: dict[int, int] = {}
                for nic in attached:
                    votes[node_to_shard[nic]] = (
                        votes.get(node_to_shard[nic], 0) + 1
                    )
                owner.append(
                    min(votes, key=lambda s: (-votes[s], s))
                )
            else:
                owner.append(sw.switch_id % n_shards)
        return owner

    # -- ownership ---------------------------------------------------------
    def owner_of(self, graph_node: tuple) -> int:
        """Shard owning a graph node (``("nic", i)`` or ``("switch", s)``)."""
        kind, idx = graph_node
        if kind == _NIC:
            return self.node_to_shard[idx]
        return self.switch_owner[idx]

    def link_owner(self, key: tuple) -> int:
        """Shard owning the directed link *key* ``(u, v)``.

        NIC-adjacent links follow the NIC (injection and delivery are
        local); switch→switch links follow the source switch.
        """
        u, v = key
        if u[0] == _NIC:
            return self.node_to_shard[u[1]]
        if v[0] == _NIC:
            return self.node_to_shard[v[1]]
        return self.switch_owner[u[1]]

    def shard_nodes(self, shard: int) -> list[int]:
        return [
            i for i, s in enumerate(self.node_to_shard) if s == shard
        ]

    def shard_sizes(self) -> list[int]:
        sizes = [0] * self.n_shards
        for s in self.node_to_shard:
            sizes[s] += 1
        return sizes

    def _cut_scan(self, topo: "Topology") -> tuple[float, int]:
        """``(lookahead, cut link count)`` — O(cut), memoized per wiring.

        A *cut feeder* is a directed link ``(u, v)`` into a switch with
        at least one onward link ``(v, w)`` owned by a different shard:
        the link whose latency delays every cross-shard handoff
        announcement.  The scan walks the link table once (O(links),
        re-examining only switch adjacencies — O(cut) work on the links
        that matter) and is cached on the topology keyed by its wiring
        ``version``, so repeated plan construction over an unchanged
        fabric costs one dict probe; ``cable()`` bumps the version and
        invalidates it.
        """
        cache_key = (
            topo.version, self.n_shards, self.node_to_shard,
            self.switch_owner,
        )
        cache = getattr(topo, "_partition_cut_cache", None)
        if cache is None:
            cache = topo._partition_cut_cache = {}
        hit = cache.get(cache_key)
        if hit is not None:
            return hit
        lookahead = _INF
        n_cut = 0
        adjacency = topo.graph.adj
        for (u, v), link in topo._links.items():
            if v[0] != _SWITCH:
                continue
            owner = self.link_owner((u, v))
            for w in adjacency[v]:
                if w == u:
                    continue
                if self.link_owner((v, w)) != owner:
                    n_cut += 1
                    if link.latency < lookahead:
                        lookahead = link.latency
                    break
        result = (lookahead, n_cut)
        cache.clear()  # one wiring version is ever live per topology
        cache[cache_key] = result
        return result

    def bind(self, topo: "Topology") -> None:
        """Stamp every link replica in *topo* with its owner shard."""
        for key, link in topo._links.items():
            link.owner = self.link_owner(key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PartitionPlan shards={self.n_shards} "
            f"partitioner={self.partitioner!r} sizes={self.shard_sizes()} "
            f"lookahead={self.lookahead}us cut={self.n_cut_links}>"
        )


class ShardSet:
    """Drives N shard simulators through conservative safe windows.

    The in-process conductor: shards run their windows sequentially in
    shard order (the determinism reference — pool workers reproduce it
    bit-for-bit because windows are causally independent).  Use
    :func:`run_sharded_processes` to run the same schedule with one OS
    process per shard.
    """

    def __init__(
        self,
        plan: PartitionPlan,
        sims: list["Simulator"],
        networks: list["Network"],
    ):
        if len(sims) != plan.n_shards or len(networks) != plan.n_shards:
            raise ConfigError(
                f"plan has {plan.n_shards} shards, got {len(sims)} sims "
                f"and {len(networks)} networks"
            )
        self.plan = plan
        self.sims = sims
        self.networks = networks
        self._pending: list[list[tuple]] = [[] for _ in sims]
        self.windows = 0
        self.messages = 0
        for shard_id, net in enumerate(networks):
            net.bind_partition(shard_id, self._post)

    def _post(self, dest: int, when: float, packet: Any, hop: int) -> None:
        self._pending[dest].append((when, packet, hop))

    def _exchange(self) -> None:
        pending = self._pending
        for dest, msgs in enumerate(pending):
            if not msgs:
                continue
            # Stable sort by due time: messages arriving at the same
            # instant keep source-shard run order — deterministic.
            msgs.sort(key=lambda m: m[0])
            net = self.networks[dest]
            for when, packet, hop in msgs:
                net.accept_handoff(when, packet, hop)
            self.messages += len(msgs)
            pending[dest] = []

    def run(self, until: float | None = None) -> None:
        """Advance all shards to quiescence (or through *until*).

        With ``until``, events up to and including that instant are
        processed and every clock ends at ``until`` — the same contract
        as serial ``Simulator.run(until=float)``.
        """
        sims = self.sims
        lookahead = self.plan.lookahead
        # Events exactly at `until` belong to the run; the first float
        # beyond it is the exclusive window bound.
        stop = math.inf if until is None else math.nextafter(until, math.inf)
        self._exchange()
        while True:
            t = min(sim.peek() for sim in sims)
            if t == _INF or t >= stop:
                break
            horizon = t + lookahead
            if horizon > stop:
                horizon = stop
            for sim in sims:
                sim.run_window(horizon)
            self.windows += 1
            self._exchange()
        if until is not None:
            for sim in sims:
                sim.run(until=until)

    @property
    def events_processed(self) -> int:
        return sum(sim.events_processed for sim in self.sims)


def merge_traces(sims: Iterable["Simulator"]) -> list["TraceRecord"]:
    """All shards' trace records in global time order.

    Within one shard, records keep append (= processing) order; across
    shards, same-time records order by shard id.  For workloads whose
    same-time records never span shards (the pinned golden workload —
    asserted by its regression test), this reproduces the serial trace
    exactly.
    """
    merged: list[tuple[float, int, int, Any]] = []
    for shard_id, sim in enumerate(sims):
        merged.extend(
            (rec.time, shard_id, i, rec)
            for i, rec in enumerate(sim.trace.records)
        )
    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [item[3] for item in merged]


def merge_flight_events(sims: Iterable["Simulator"]) -> list[Any]:
    """All shards' flight-recorder hop events in global time order.

    Duck-typed over each shard's ``sim.flight`` slot (shards without a
    recorder contribute nothing); same ordering contract as
    :func:`merge_traces` — append order within a shard, shard id on
    ties.  Trace ids are per-origin allocations
    (:mod:`repro.obs.flight`), so the merged stream needs no renumbering
    whatever the shard count.
    """
    merged: list[tuple[float, int, int, Any]] = []
    for shard_id, sim in enumerate(sims):
        fr = getattr(sim, "flight", None)
        if fr is None:
            continue
        merged.extend(
            (ev[0], shard_id, i, ev) for i, ev in enumerate(fr.events)
        )
    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [item[3] for item in merged]


# ---------------------------------------------------------------------------
# Process-per-shard execution.
# ---------------------------------------------------------------------------

def _shard_worker(conn, factory, args, shard_id: int) -> None:
    """One OS process driving one shard (see :func:`run_sharded_processes`).

    Protocol (parent → worker / worker → parent):

    * ``("window", horizon, msgs)`` → runs the safe window after
      scheduling the inbound messages; replies ``("ok", next_time,
      outbox)``;
    * ``("finish", until)`` → final clock advance; replies
      ``("result", shard.result())`` and exits.
    """
    shard = factory(shard_id, *args)
    sim = shard.sim
    net = shard.network
    outbox: list[tuple] = []

    def post(dest: int, when: float, packet: Any, hop: int) -> None:
        outbox.append((dest, when, packet, hop))

    net.bind_partition(shard_id, post)
    conn.send(("ready", sim.peek()))
    while True:
        cmd = conn.recv()
        op = cmd[0]
        if op == "window":
            _, horizon, msgs = cmd
            for when, packet, hop in msgs:
                net.accept_handoff(when, packet, hop)
            sim.run_window(horizon)
            out, outbox = outbox, []
            conn.send(("ok", sim.peek(), out))
        elif op == "finish":
            until = cmd[1]
            if until is not None:
                sim.run(until=until)
            conn.send(("result", shard.result()))
            conn.close()
            return
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown shard command {op!r}")


def run_sharded_processes(
    factory: Callable[..., Any],
    args: tuple,
    plan: PartitionPlan,
    until: float | None = None,
) -> list[Any]:
    """Run one worker process per shard; return each shard's result.

    ``factory(shard_id, *args)`` must be picklable (module-level) and
    return an object with ``sim`` (the shard's Simulator), ``network``
    (its partition-aware Network, not yet bound), and ``result()`` (a
    picklable summary returned after the final clock advance).  The
    parent process runs the same conductor loop as :class:`ShardSet`,
    shipping safe-window grants out and timestamped handoffs back over
    pipes; all shards execute their windows concurrently.
    """
    import multiprocessing as mp

    ctx = mp.get_context()
    conns = []
    procs = []
    try:
        for shard_id in range(plan.n_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, factory, args, shard_id),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        nexts = []
        for conn in conns:
            tag, next_time = conn.recv()
            if tag != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"shard handshake failed: {tag!r}")
            nexts.append(next_time)
        pending: list[list[tuple]] = [[] for _ in range(plan.n_shards)]
        stop = (
            math.inf if until is None
            else math.nextafter(until, math.inf)
        )
        lookahead = plan.lookahead
        while True:
            t = min(nexts)
            for msgs in pending:
                for when, _pkt, _hop in msgs:
                    if when < t:
                        t = when
            if t == _INF or t >= stop:
                break
            horizon = t + lookahead
            if horizon > stop:
                horizon = stop
            for shard_id, conn in enumerate(conns):
                msgs = pending[shard_id]
                msgs.sort(key=lambda m: m[0])
                conn.send(("window", horizon, msgs))
                pending[shard_id] = []
            for shard_id, conn in enumerate(conns):
                _tag, next_time, out = conn.recv()
                nexts[shard_id] = next_time
                for dest, when, packet, hop in out:
                    pending[dest].append((when, packet, hop))
        for conn in conns:
            conn.send(("finish", until))
        results = []
        for conn in conns:
            tag, payload = conn.recv()
            if tag != "result":  # pragma: no cover - defensive
                raise RuntimeError(f"shard finish failed: {tag!r}")
            results.append(payload)
        return results
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
    return results  # pragma: no cover - unreachable
