"""Direct tests of the paper's §3/§5 claims on the simulated stack."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast import host_based_multicast, install_group
from repro.mcast.manager import (
    demand_install_group,
    next_group_id,
    nic_based_multicast,
)
from repro.net import BernoulliLoss
from repro.trees import build_tree


class TestForwardingWithoutHost:
    """'the message can be forwarded by an intermediate NIC to its
    children even if the host process has not called the broadcast'."""

    def test_children_receive_while_intermediate_host_busy(self):
        cluster = Cluster(ClusterConfig(n_nodes=4))
        tree = build_tree(0, [1, 2, 3], shape="chain")  # 0->1->2->3
        gid = next_group_id()
        install_group(cluster, gid, tree)
        delivered = {}

        def root():
            handle = yield from nic_based_multicast(cluster, gid, 512, 0)
            del handle

        def busy_intermediate():
            # Node 1's host computes for 10 ms before even looking at
            # its port — its NIC must forward regardless.
            yield from cluster.node(1).host.compute(10_000.0)
            yield from cluster.port(1).receive()
            delivered[1] = cluster.now

        def leaf(i):
            completion = yield from cluster.port(i).receive()
            del completion
            delivered[i] = cluster.now

        procs = [
            cluster.spawn(root()),
            cluster.spawn(busy_intermediate()),
            cluster.spawn(leaf(2)),
            cluster.spawn(leaf(3)),
        ]
        cluster.run(until=cluster.sim.all_of(procs))
        # Leaves get the message in microseconds; the busy host's own
        # delivery waits for its compute but gates nobody downstream.
        assert delivered[2] < 100.0
        assert delivered[3] < 150.0
        assert delivered[1] >= 10_000.0

    def test_host_based_stalls_behind_busy_intermediate(self):
        # The contrast: host forwarding *does* gate the subtree.
        cluster = Cluster(ClusterConfig(n_nodes=4))
        tree = build_tree(0, [1, 2, 3], shape="chain")
        delivered = {}

        def root():
            port = cluster.port(0)
            handle = yield from port.send(1, 512)
            yield handle.done

        def busy_forwarder():
            yield from cluster.node(1).host.compute(5_000.0)
            yield from cluster.port(1).receive()
            delivered[1] = cluster.now
            handle = yield from cluster.port(1).send(2, 512)
            yield handle.done

        def relay(i, nxt):
            yield from cluster.port(i).receive()
            delivered[i] = cluster.now
            if nxt is not None:
                handle = yield from cluster.port(i).send(nxt, 512)
                yield handle.done

        procs = [
            cluster.spawn(root()),
            cluster.spawn(busy_forwarder()),
            cluster.spawn(relay(2, 3)),
            cluster.spawn(relay(3, None)),
        ]
        cluster.run(until=cluster.sim.all_of(procs))
        assert delivered[3] > 5_000.0  # the whole chain waited


class TestProgressUnderTokenPressure:
    """'As long as receive tokens are available at the destinations,
    multicast packets can be received' — and when they are scarce, the
    scheme degrades to retransmission, never to deadlock."""

    def test_concurrent_crossing_multicasts_scarce_tokens(self):
        cost = GMCostModel(ack_timeout=150.0)
        cluster = Cluster(
            ClusterConfig(n_nodes=6, cost=cost, prepost_recv_tokens=1)
        )
        # Two concurrent groups with opposite-direction chains through
        # the same middle nodes (IDs still respect the ordering rule
        # relative to each root).
        t1 = build_tree(0, [2, 3, 4], shape="chain")
        t2 = build_tree(1, [2, 3, 5], shape="chain")
        g1, g2 = next_group_id(), next_group_id()
        install_group(cluster, g1, t1)
        install_group(cluster, g2, t2)
        got = {i: [] for i in range(6)}

        def root(rank, gid):
            handle = yield from nic_based_multicast(cluster, gid, 256, rank)
            yield handle.done

        def member(i, expected):
            port = cluster.port(i)
            for _ in range(expected):
                completion = yield from port.receive()
                got[i].append(completion.group)
                yield from port.provide_receive_buffer()

        procs = [
            cluster.spawn(root(0, g1)),
            cluster.spawn(root(1, g2)),
            cluster.spawn(member(2, 2)),
            cluster.spawn(member(3, 2)),
            cluster.spawn(member(4, 1)),
            cluster.spawn(member(5, 1)),
        ]
        cluster.run(until=cluster.sim.all_of(procs))
        assert sorted(got[2]) == sorted([g1, g2])
        assert sorted(got[3]) == sorted([g1, g2])
        assert got[4] == [g1]
        assert got[5] == [g2]

    def test_many_concurrent_roots_one_token_each(self):
        cost = GMCostModel(ack_timeout=150.0)
        cluster = Cluster(
            ClusterConfig(n_nodes=5, cost=cost, prepost_recv_tokens=1)
        )
        gids = []
        for root in range(5):
            gid = next_group_id()
            gids.append(gid)
            install_group(
                cluster, gid,
                build_tree(root, [i for i in range(5) if i != root],
                           shape="chain"),
            )
        received = {i: 0 for i in range(5)}

        def root_prog(rank, gid):
            handle = yield from nic_based_multicast(cluster, gid, 64, rank)
            yield handle.done

        def member(i):
            port = cluster.port(i)
            for _ in range(4):  # one message from each other root
                yield from port.receive()
                received[i] += 1
                yield from port.provide_receive_buffer()

        procs = [cluster.spawn(root_prog(r, g)) for r, g in enumerate(gids)]
        procs += [cluster.spawn(member(i)) for i in range(5)]
        cluster.run(until=cluster.sim.all_of(procs))
        assert all(count == 4 for count in received.values())


class TestDemandDrivenInstall:
    def test_demand_install_then_multicast(self):
        cluster = Cluster(ClusterConfig(n_nodes=6))
        tree = build_tree(0, range(1, 6), shape="binomial")
        gid = next_group_id()
        delivered = {}

        installed = cluster.sim.event()

        def root():
            yield from demand_install_group(cluster, gid, tree)
            installed.succeed(None)
            handle = yield from nic_based_multicast(cluster, gid, 128, 0)
            del handle

        def member(i):
            # demand_install_group drives the member side of the
            # handshake itself; start consuming only after it finishes
            # so we don't race it for the port.
            yield installed
            port = cluster.port(i)
            completion = yield from port.receive()
            assert completion.group == gid
            delivered[i] = cluster.now

        procs = [cluster.spawn(root())]
        procs += [cluster.spawn(member(i)) for i in range(1, 6)]
        cluster.run(until=cluster.sim.all_of(procs))
        assert sorted(delivered) == [1, 2, 3, 4, 5]
        for node in cluster.nodes:
            assert gid in node.mcast.table

    def test_demand_install_costs_more_than_zero_cost_path(self):
        # The paper's first-broadcast penalty exists and is bounded.
        cluster = Cluster(ClusterConfig(n_nodes=8))
        tree = build_tree(0, range(1, 8), shape="binomial")
        gid = next_group_id()

        def root():
            t0 = cluster.now
            yield from demand_install_group(cluster, gid, tree)
            return cluster.now - t0

        proc = cluster.spawn(root())
        cluster.run(until=proc)
        creation_cost = proc.value
        assert 20.0 < creation_cost < 500.0


class TestNicAssistedUnderLoss:
    def test_delivery_recovers(self):
        from repro.mcast.nic_assisted import nic_assisted_multicast

        cluster = Cluster(
            ClusterConfig(n_nodes=6, seed=3), loss=BernoulliLoss(0.1)
        )
        tree = build_tree(0, range(1, 6), shape="binomial")
        result = nic_assisted_multicast(cluster, tree, 2048)
        assert sorted(result["delivered"]) == [1, 2, 3, 4, 5]
