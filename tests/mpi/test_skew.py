"""Process-skew tolerance (paper §6.3 / Figs. 6-7)."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mpi import Communicator, run_skew_experiment


def skew_point(n, nic, max_skew, size=4, iterations=12, seed=0):
    cluster = Cluster(ClusterConfig(n_nodes=n, seed=seed))
    comm = Communicator(cluster, nic_bcast=nic)
    return run_skew_experiment(
        comm, size=size, max_skew=max_skew, iterations=iterations, warmup=2
    )


def test_zero_skew_baseline():
    result = skew_point(4, nic=True, max_skew=0.0)
    assert result.mean_applied_skew == 0.0
    assert result.mean_bcast_cpu_time > 0


def test_applied_skew_tracks_max():
    lo = skew_point(4, nic=True, max_skew=100.0)
    hi = skew_point(4, nic=True, max_skew=800.0)
    assert hi.mean_applied_skew > 3 * lo.mean_applied_skew


def test_nic_bcast_cheaper_under_skew():
    # The paper's headline: with large skew, NIC-based bcast burns far
    # less host CPU time because delayed intermediates don't gate their
    # subtrees.
    hb = skew_point(8, nic=False, max_skew=800.0)
    nb = skew_point(8, nic=True, max_skew=800.0)
    assert nb.mean_bcast_cpu_time < hb.mean_bcast_cpu_time
    assert hb.mean_bcast_cpu_time / nb.mean_bcast_cpu_time > 1.5


def test_hb_cpu_time_grows_with_skew_nb_does_not():
    # Paper Fig. 6a: beyond modest skew the host-based CPU time rises
    # while the NIC-based one falls.
    hb_small = skew_point(8, nic=False, max_skew=100.0)
    hb_large = skew_point(8, nic=False, max_skew=800.0)
    nb_small = skew_point(8, nic=True, max_skew=100.0)
    nb_large = skew_point(8, nic=True, max_skew=800.0)
    assert hb_large.mean_bcast_cpu_time > hb_small.mean_bcast_cpu_time
    assert nb_large.mean_bcast_cpu_time <= nb_small.mean_bcast_cpu_time * 1.3


def test_improvement_grows_with_system_size():
    # Paper Fig. 7: larger systems benefit more at fixed skew.
    def factor(n):
        hb = skew_point(n, nic=False, max_skew=800.0, seed=1)
        nb = skew_point(n, nic=True, max_skew=800.0, seed=1)
        return hb.mean_bcast_cpu_time / nb.mean_bcast_cpu_time

    f4, f16 = factor(4), factor(16)
    assert f16 > f4


def test_per_rank_breakdown_present():
    result = skew_point(4, nic=True, max_skew=200.0)
    assert len(result.per_rank_cpu_time) == 4
    assert all(t >= 0 for t in result.per_rank_cpu_time)
