"""Sweep grids: keyed collections of scenario specs.

A figure sweep is a grid of independent scenario points.  The figure
module *declares* the grid — one :class:`ScenarioSpec` per cell, keyed
by its coordinates — and hands it to
:func:`repro.experiments.parallel.run_grid`, which ships each cell's
serialized spec to a pool worker and returns ``{key: value}`` in
deterministic declaration order.  The grid itself knows nothing about
executors (this package must not import ``repro.experiments``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.scenario.spec import ScenarioSpec

__all__ = ["GridCell", "ScenarioGrid"]


@dataclass(frozen=True)
class GridCell:
    """One keyed scenario point of a sweep."""

    key: Hashable
    spec: ScenarioSpec
    label: str = ""


class ScenarioGrid:
    """An ordered, keyed set of scenario points for one sweep."""

    def __init__(self, figure: str):
        self.figure = figure
        self.cells: list[GridCell] = []
        self._keys: set[Hashable] = set()

    def add(
        self, key: Hashable, spec: ScenarioSpec, label: str = ""
    ) -> "ScenarioGrid":
        """Append one cell (keys must be unique; returns self to chain)."""
        if key in self._keys:
            raise ValueError(f"duplicate grid key {key!r} in {self.figure}")
        self._keys.add(key)
        if not label:
            coords = (
                ",".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            )
            label = f"{self.figure}[{coords}]"
        self.cells.append(GridCell(key=key, spec=spec, label=label))
        return self

    def keys(self) -> list[Hashable]:
        return [cell.key for cell in self.cells]

    def __iter__(self) -> Iterator[GridCell]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def to_json_cells(self) -> list[dict[str, Any]]:
        """Serialized form of every cell (diagnostics / spec archiving)."""
        return [
            {"key": list(c.key) if isinstance(c.key, tuple) else c.key,
             "label": c.label,
             "spec": c.spec.to_dict()}
            for c in self.cells
        ]
