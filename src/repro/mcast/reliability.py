"""One-to-many reliability for NIC-based multicast.

"A multicast packet sent from one NIC to its children has the same
sequence number and send record, ensuring ordered sending for the same
group's multicast packets.  When an acknowledgment from one destination
is received, the acknowledged sequence number for that destination is
updated.  If the record for a packet is timed out, the retransmission of
the packet and the following ones will be performed only for the
destinations which have not acknowledged" (paper §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import ReproError
from repro.net.packet import GM_HEADER_BYTES, Packet, PacketHeader, PacketType
from repro.nic.descriptor import PacketDescriptor
from repro.nic.lanai import TX_PRIO_ACK, TX_PRIO_DATA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.tokens import SendToken
    from repro.mcast.group import GroupState

__all__ = ["McastRecord", "ReliabilityMixin"]


@dataclass
class McastRecord:
    """Send record for one multicast packet at one NIC."""

    seq: int
    group_id: int
    msg_id: int
    chunk: int
    nchunks: int
    payload: int
    msg_size: int
    #: children that have not yet acknowledged this seq
    unacked: set[int] = field(default_factory=set)
    #: the root's send token (None at intermediate NICs — they use the
    #: transformed receive token tracked on the held message instead)
    token: "SendToken | None" = None
    sent_at: float = 0.0
    retransmits: int = 0
    generation: int = 0
    #: application payload info riding on chunk 0 (survives retransmits)
    app_info: dict | None = None


class ReliabilityMixin:
    """Ack handling and per-child Go-back-N retransmission.

    Mixed into :class:`~repro.mcast.engine.McastEngine`; expects
    ``self.nic``, ``self.sim``, ``self.cost``, ``self.table``, and the
    engine hooks ``_record_completed`` and ``_build_mcast_packet``.
    """

    # -- ACK reception ------------------------------------------------------
    def _handle_mcast_ack(self, pkt: Packet, _buf: Any) -> Generator:
        yield from self.nic.processing(self.cost.nic_ack_processing)
        h = pkt.header
        group = self.table.get(h.group)
        if group is None:
            return
        child = h.src
        if child not in group.child_acked:
            return  # not one of ours
        if h.ack_seq <= group.child_acked[child]:
            return  # stale
        group.child_acked[child] = h.ack_seq
        for seq in sorted(group.records):
            if seq > h.ack_seq:
                break
            record = group.records[seq]
            record.unacked.discard(child)
            if not record.unacked:
                del group.records[seq]
                record.generation += 1  # defuse timer
                self._record_completed(group, record)

    def _send_mcast_ack(self, group: "GroupState") -> Generator:
        """Acknowledge the group's current receive seq to the parent."""
        assert group.parent is not None
        yield from self.nic.processing(self.cost.nic_ack_generation)
        ack = Packet(
            header=PacketHeader(
                ptype=PacketType.MCAST_ACK,
                src=self.nic.id,
                dst=group.parent,
                origin=self.nic.id,
                group=group.group_id,
                port=group.port_num,
                from_port=group.port_num,
                ack_seq=group.recv_seq,
                payload=0,
            )
        )
        self.nic.queue_tx(PacketDescriptor(ack), TX_PRIO_ACK)

    # -- timers -----------------------------------------------------------------
    def _arm_mcast_timer(self, group: "GroupState", record: McastRecord) -> None:
        record.generation += 1
        generation = record.generation
        self.sim.call_at(
            self.sim.now + self.cost.ack_timeout,
            lambda: self._on_mcast_timeout(group, record.seq, generation),
        )

    def _on_mcast_timeout(
        self, group: "GroupState", seq: int, generation: int
    ) -> None:
        record = group.records.get(seq)
        if record is None or record.generation != generation:
            return
        if seq != min(group.records):
            self._arm_mcast_timer(group, record)
            return
        self.sim.record(
            self.nic.name, "mcast_timeout", group=group.group_id, seq=seq,
            unacked=sorted(record.unacked),
        )
        self.sim.process(
            self._retransmit_to_laggards(group, seq),
            name=f"{self.nic.name}.mcast_gbn",
        )

    def _retransmit_to_laggards(
        self, group: "GroupState", from_seq: int
    ) -> Generator:
        """Selective Go-back-N: resend ``from_seq`` and successors, but
        only to children that have not acknowledged each packet.

        Data is re-fetched from (still registered) host memory — the
        receive buffer was released when forwarding completed.
        """
        laggards = {
            child
            for seq in group.records
            if seq >= from_seq
            for child in group.records[seq].unacked
        }
        for child in sorted(laggards):
            for seq in sorted(group.records):
                if seq < from_seq:
                    continue
                record = group.records.get(seq)
                if record is None or child not in record.unacked:
                    continue
                record.retransmits += 1
                self.retransmissions += 1
                if record.retransmits > self.cost.max_retransmits:
                    raise ReproError(
                        f"{self.nic.name}: multicast packet seq={seq} "
                        f"group={group.group_id} retransmitted "
                        f"{record.retransmits} times to child {child} — "
                        "peer unreachable"
                    )
                self._arm_mcast_timer(group, record)
                yield from self._retransmit_packet(group, record, child)

    def _retransmit_packet(
        self, group: "GroupState", record: McastRecord, child: int
    ) -> Generator:
        """Stage one retransmission to one child from host memory."""
        buf = yield self.nic.send_buffers.acquire()
        yield from self.nic.dma(record.payload + GM_HEADER_BYTES)
        yield from self.nic.processing(self.cost.nic_per_packet_send)
        record.sent_at = self.sim.now
        pkt = self._build_mcast_packet(group, record, child)
        self.sim.record(
            self.nic.name, "mcast_retransmit", group=group.group_id,
            seq=record.seq, child=child, attempt=record.retransmits,
        )
        desc = PacketDescriptor(pkt, buffer=buf)  # default free-on-transmit
        self.nic.queue_tx(desc, TX_PRIO_DATA)
