"""Network topologies and source-route computation.

The paper's testbed connects 16 nodes through a Myrinet-2000 network whose
default hardware topology is a Clos network; at 16 nodes that is a single
crossbar.  Builders here produce single-switch, two-level Clos, line, and
arbitrary (networkx-graph) fabrics; routes are shortest paths computed once
and cached (Myrinet is source-routed, so routes are static per pair).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import zlib

import networkx as nx

from repro.errors import ConfigError, RoutingError
from repro.net.link import Link
from repro.net.switch import CrossbarSwitch, PortRef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Topology", "single_switch", "clos", "line", "from_graph"]

_NIC = "nic"
_SWITCH = "switch"


class Topology:
    """A wired fabric: switches, NIC attachment points, directed links.

    Nodes of the internal graph are ``("nic", i)`` or ``("switch", s)``.
    Every physical cable is two directed :class:`Link` objects.  Routes are
    link-lists from source NIC to destination NIC, memoized.
    """

    def __init__(
        self,
        sim: "Simulator",
        n_nodes: int,
        bandwidth: float,
        link_latency: float,
        hop_latency: float,
        name: str = "topology",
    ):
        if n_nodes < 1:
            raise ConfigError(f"need at least one node, got {n_nodes}")
        self.sim = sim
        self.n_nodes = n_nodes
        self.bandwidth = bandwidth
        self.link_latency = link_latency
        self.hop_latency = hop_latency
        self.name = name
        self.graph = nx.Graph()
        self.switches: list[CrossbarSwitch] = []
        #: directed links keyed by (graph-node, graph-node)
        self._links: dict[tuple, Link] = {}
        self._route_cache: dict[tuple[int, int], list[Link]] = {}
        self._latency_cache: dict[tuple[int, int], float] = {}
        #: Bumped on every wiring change (:meth:`cable`) and on every
        #: failure transition (:meth:`set_link_state` /
        #: :meth:`set_switch_state`).  Derived caches outside this class
        #: — e.g. the partition planner's cut-edge scan
        #: (:mod:`repro.sim.parallel`) and the fabric's per-network route
        #: table — key on it so repeated lookahead computations are
        #: O(cut), re-scanned only after the fabric actually changes.
        self.version = 0
        #: Failed cables (canonical sorted endpoint pairs) and switches.
        #: Routes are computed on the live subgraph; packets already in
        #: flight discover a death at the link they try to claim.
        self._down_edges: set[tuple] = set()
        self._down_switches: set[int] = set()
        self._cables: list[tuple] | None = None
        for i in range(n_nodes):
            self.graph.add_node((_NIC, i))

    # -- construction ------------------------------------------------------
    def add_switch(self, radix: int) -> CrossbarSwitch:
        sw = CrossbarSwitch(len(self.switches), radix, self.hop_latency)
        self.switches.append(sw)
        self.graph.add_node((_SWITCH, sw.switch_id))
        return sw

    def cable(self, a: tuple, b: tuple) -> None:
        """Run a full-duplex cable between graph nodes *a* and *b*."""
        for endpoint in (a, b):
            if endpoint not in self.graph:
                raise ConfigError(f"unknown endpoint {endpoint!r}")
        if self.graph.has_edge(a, b):
            raise ConfigError(f"duplicate cable {a!r} <-> {b!r}")
        self.graph.add_edge(a, b)
        # A new cable can shorten existing shortest paths: memoized
        # routes and latency sums are stale the moment the graph grows.
        self._route_cache.clear()
        self._latency_cache.clear()
        self._cables = None
        self.version += 1
        for u, v in ((a, b), (b, a)):
            # A link terminating at a switch pays that switch's routing
            # (head-arbitration) delay on top of cable propagation.
            latency = self.link_latency
            if v[0] == _SWITCH:
                latency += self.hop_latency
            self._links[(u, v)] = Link(
                self.sim,
                self.bandwidth,
                latency,
                name=f"{u}->{v}",
            )

    def wire_nic_to_switch(self, nic_id: int, switch: CrossbarSwitch) -> None:
        port = switch.free_ports[0] if switch.free_ports else None
        if port is None:
            raise ConfigError(f"switch {switch.switch_id} is full")
        switch.attach(port, PortRef(nic_id, 0))
        self.cable((_NIC, nic_id), (_SWITCH, switch.switch_id))

    def wire_switches(self, a: CrossbarSwitch, b: CrossbarSwitch) -> None:
        pa = a.free_ports[0] if a.free_ports else None
        pb = b.free_ports[0] if b.free_ports else None
        if pa is None or pb is None:
            raise ConfigError("no free ports for inter-switch cable")
        a.attach(pa, PortRef(b, pb))
        b.attach(pb, PortRef(a, pa))
        self.cable((_SWITCH, a.switch_id), (_SWITCH, b.switch_id))

    # -- failure lifecycle -------------------------------------------------
    def cables(self) -> list[tuple]:
        """All physical cables as sorted canonical endpoint pairs.

        The list order is deterministic (sorted), so an index into it is
        a stable cable identifier — :class:`repro.net.failure.FailureSpec`
        targets cables by this index.
        """
        if self._cables is None:
            self._cables = sorted(
                tuple(sorted(edge)) for edge in self.graph.edges
            )
        return self._cables

    def nic_cable_index(self, nic_id: int) -> int:
        """Index (into :meth:`cables`) of NIC *nic_id*'s attachment cable."""
        for i, (a, b) in enumerate(self.cables()):
            if (_NIC, nic_id) in (a, b):
                return i
        raise ConfigError(f"NIC {nic_id} has no attachment cable")

    def set_link_state(self, cable_index: int, up: bool) -> bool:
        """Fail or restore the cable at *cable_index*.

        Returns ``True`` when the state actually changed (idempotent
        no-op transitions do not bump :attr:`version`).
        """
        cables = self.cables()
        if not 0 <= cable_index < len(cables):
            raise ConfigError(
                f"cable index {cable_index} out of range "
                f"(topology has {len(cables)} cables)"
            )
        edge = cables[cable_index]
        if up == (edge not in self._down_edges):
            return False
        if up:
            self._down_edges.discard(edge)
        else:
            self._down_edges.add(edge)
        self._state_changed()
        return True

    def set_switch_state(self, switch_id: int, up: bool) -> bool:
        """Fail or restore a whole switch (all its ports go with it)."""
        if not 0 <= switch_id < len(self.switches):
            raise ConfigError(f"unknown switch id {switch_id}")
        if up == (switch_id not in self._down_switches):
            return False
        if up:
            self._down_switches.discard(switch_id)
        else:
            self._down_switches.add(switch_id)
        self._state_changed()
        return True

    def _state_changed(self) -> None:
        """Re-derive per-link flags and invalidate every route memo."""
        down_nodes = {(_SWITCH, s) for s in self._down_switches}
        for (u, v), link in self._links.items():
            edge = tuple(sorted((u, v)))
            link.up = (
                edge not in self._down_edges
                and u not in down_nodes
                and v not in down_nodes
            )
        self._route_cache.clear()
        self._latency_cache.clear()
        self.version += 1

    def link_is_up(self, a: tuple, b: tuple) -> bool:
        return self._links[(a, b)].up

    def has_path(self, src: int, dst: int) -> bool:
        """Whether a live route exists between two NICs right now."""
        if src == dst:
            return True
        try:
            return nx.has_path(self._live_graph(), (_NIC, src), (_NIC, dst))
        except nx.NodeNotFound:
            return False

    def _live_graph(self) -> "nx.Graph":
        """The graph restricted to live switches and cables."""
        if not self._down_edges and not self._down_switches:
            return self.graph
        return nx.restricted_view(
            self.graph,
            [(_SWITCH, s) for s in self._down_switches],
            list(self._down_edges),
        )

    # -- routing -------------------------------------------------------------
    def route(self, src: int, dst: int) -> list[Link]:
        """The directed links a packet crosses from NIC *src* to NIC *dst*.

        Routes avoid failed cables and switches — the model's stand-in
        for the GM mapper recomputing source routes after a fabric
        change.  When no live path exists, :class:`RoutingError` is
        raised; the fabric turns that into an injection-time drop.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            raise RoutingError(f"route requested from NIC {src} to itself")
        for nic in (src, dst):
            if not 0 <= nic < self.n_nodes:
                raise RoutingError(f"unknown NIC id {nic}")
        try:
            paths = list(
                nx.all_shortest_paths(
                    self._live_graph(), (_NIC, src), (_NIC, dst)
                )
            )
        except nx.NetworkXNoPath as exc:
            raise RoutingError(f"no path from NIC {src} to NIC {dst}") from exc
        # Myrinet source routes are computed once and dispersed across
        # equal-cost paths (spine switches in a Clos); pick one
        # deterministically per pair so traffic does not funnel through
        # a single spine.
        paths.sort()
        digest = zlib.crc32(f"{src}->{dst}".encode())
        nodes = paths[digest % len(paths)]
        links = [self._links[(u, v)] for u, v in zip(nodes, nodes[1:])]
        self._route_cache[key] = links
        return links

    def route_latency(self, src: int, dst: int) -> float:
        """Summed head latency of the src→dst route, memoized.

        The per-pair sum is static (source routes never change), so hot
        paths such as :meth:`Network.min_latency` avoid re-walking the
        link list per packet.
        """
        key = (src, dst)
        cached = self._latency_cache.get(key)
        if cached is None:
            cached = sum(link.latency for link in self.route(src, dst))
            self._latency_cache[key] = cached
        return cached

    def hops(self, src: int, dst: int) -> int:
        """Number of links on the src→dst route."""
        return len(self.route(src, dst))

    def switch_count(self) -> int:
        return len(self.switches)

    def all_links(self) -> list[Link]:
        return list(self._links.values())

    def validate(self) -> None:
        """Check every NIC can reach every other NIC."""
        for src in range(self.n_nodes):
            for dst in range(self.n_nodes):
                if src != dst:
                    self.route(src, dst)

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r} nodes={self.n_nodes} "
            f"switches={len(self.switches)} links={len(self._links)}>"
        )


def single_switch(
    sim: "Simulator",
    n_nodes: int,
    bandwidth: float,
    link_latency: float,
    hop_latency: float,
) -> Topology:
    """All NICs on one crossbar — Myrinet's topology for ≤16 nodes."""
    topo = Topology(
        sim, n_nodes, bandwidth, link_latency, hop_latency, name="single-switch"
    )
    sw = topo.add_switch(radix=max(n_nodes, 2))
    for i in range(n_nodes):
        topo.wire_nic_to_switch(i, sw)
    return topo


def clos(
    sim: "Simulator",
    n_nodes: int,
    bandwidth: float,
    link_latency: float,
    hop_latency: float,
    radix: int = 16,
) -> Topology:
    """A two-level Clos (fat-tree) of radix-``radix`` crossbars.

    Each leaf switch hosts ``radix // 2`` NICs and has ``radix // 2``
    uplinks, one to every spine switch — the standard full-bisection
    Myrinet-2000 Clos.  Falls back to a single switch when everything fits
    on one crossbar (which is the paper's 16-node case).
    """
    if radix < 4 or radix % 2:
        raise ConfigError(f"clos radix must be even and >= 4, got {radix}")
    if n_nodes <= radix:
        return single_switch(sim, n_nodes, bandwidth, link_latency, hop_latency)
    half = radix // 2
    n_leaves = -(-n_nodes // half)  # ceil
    topo = Topology(
        sim, n_nodes, bandwidth, link_latency, hop_latency, name="clos"
    )
    leaves = [topo.add_switch(radix) for _ in range(n_leaves)]
    spines = [topo.add_switch(max(n_leaves, 2)) for _ in range(half)]
    for i in range(n_nodes):
        topo.wire_nic_to_switch(i, leaves[i // half])
    for leaf in leaves:
        for spine in spines:
            topo.wire_switches(leaf, spine)
    return topo


def line(
    sim: "Simulator",
    n_nodes: int,
    bandwidth: float,
    link_latency: float,
    hop_latency: float,
    nodes_per_switch: int = 4,
) -> Topology:
    """Switches in a chain — a worst-case diameter topology for stress tests."""
    if nodes_per_switch < 1:
        raise ConfigError("nodes_per_switch must be >= 1")
    n_switches = -(-n_nodes // nodes_per_switch)
    topo = Topology(sim, n_nodes, bandwidth, link_latency, hop_latency, name="line")
    switches = [topo.add_switch(nodes_per_switch + 2) for _ in range(n_switches)]
    for i in range(n_nodes):
        topo.wire_nic_to_switch(i, switches[i // nodes_per_switch])
    for a, b in zip(switches, switches[1:]):
        topo.wire_switches(a, b)
    return topo


def from_graph(
    sim: "Simulator",
    nic_to_switch: dict[int, int],
    switch_edges: Iterable[tuple[int, int]],
    bandwidth: float,
    link_latency: float,
    hop_latency: float,
    radix: int = 32,
) -> Topology:
    """Build an arbitrary fabric from NIC→switch placement and switch edges."""
    n_nodes = len(nic_to_switch)
    if sorted(nic_to_switch) != list(range(n_nodes)):
        raise ConfigError("nic ids must be 0..n-1")
    topo = Topology(sim, n_nodes, bandwidth, link_latency, hop_latency, name="custom")
    n_switches = max(nic_to_switch.values()) + 1
    switches = [topo.add_switch(radix) for _ in range(n_switches)]
    for nic, sw in sorted(nic_to_switch.items()):
        topo.wire_nic_to_switch(nic, switches[sw])
    for a, b in switch_edges:
        topo.wire_switches(switches[a], switches[b])
    return topo
