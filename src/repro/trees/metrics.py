"""Tree shape statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.trees.base import SpanningTree

__all__ = ["TreeStats", "tree_stats"]


@dataclass(frozen=True)
class TreeStats:
    """Shape summary of a multicast tree."""

    size: int
    depth: int
    root_fanout: int
    max_fanout: int
    mean_fanout: float  # over sending (non-leaf) nodes
    n_leaves: int
    n_forwarders: int  # interior nodes (non-root senders)


def tree_stats(tree: SpanningTree) -> TreeStats:
    fanouts = [len(kids) for kids in tree.children.values() if kids]
    return TreeStats(
        size=tree.size,
        depth=tree.max_depth,
        root_fanout=len(tree.children_of(tree.root)),
        max_fanout=max(fanouts, default=0),
        mean_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        n_leaves=len(tree.leaves()),
        n_forwarders=len(tree.interior()),
    )
