"""Host-side GM API: ports, sends, receives.

A :class:`GMPort` is a protected OS-bypass endpoint: only its owner may
operate on it (paper §2, "a user process may modify the NIC-memory used
by another process, which can lead to unpleasant scenarios" — GM prevents
that, and so do we).  All methods that consume host time are generators
meant to be driven from a host process: ``handle = yield from
port.send(dst, nbytes)``.
"""

from __future__ import annotations

from collections import deque

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import ProtectionError, TokenExhausted
from repro.gm.tokens import ReceiveToken, SendToken
from repro.nic.lanai import HostCommand
from repro.sim.events import SimEvent
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.memory import RegisteredRegion
    from repro.gm.protocol import GMEngine

__all__ = ["GMPort", "SendHandle", "RecvCompletion", "SendCommand"]


@dataclass
class SendCommand(HostCommand):
    """Host → NIC: transmit the message described by ``token``."""

    token: SendToken | None = None


@dataclass
class SendHandle:
    """Returned by :meth:`GMPort.send`; ``done`` fires on full ack."""

    token: SendToken
    done: SimEvent
    posted_at: float = 0.0

    @property
    def completed_at(self) -> float:
        if not self.done.triggered:
            raise RuntimeError("send not yet complete")
        return self.done.value


@dataclass
class RecvCompletion:
    """A fully received message, as reported to the host."""

    src: int
    src_port: int
    size: int
    msg_id: int
    group: int | None = None
    received_at: float = 0.0
    info: dict[str, Any] = field(default_factory=dict)


class GMPort:
    """A GM communication endpoint on one NIC."""

    def __init__(self, engine: "GMEngine", port_num: int, owner: Any):
        self.engine = engine
        self.nic = engine.nic
        self.sim = engine.nic.sim
        self.cost = engine.cost
        self.port_num = port_num
        self.owner = owner
        cost = self.cost
        self._free_send_tokens: list[SendToken] = [
            SendToken(port_num) for _ in range(cost.send_tokens_per_port)
        ]
        # deque: tokens are claimed FIFO once per received message and
        # 64 are preposted per port, so list.pop(0) shifting adds up.
        self._recv_tokens: deque[ReceiveToken] = deque()
        self.event_queue: Store = Store(
            self.sim, name=f"port{engine.nic.id}.{port_num}.events"
        )
        #: completion events keyed by token_id, fired by the engine
        self._completions: dict[int, SendHandle] = {}
        self.sends_posted = 0
        self.sends_completed = 0
        self.messages_received = 0

    # -- protection -----------------------------------------------------------
    def _check_owner(self, caller: Any) -> None:
        if caller is not None and caller is not self.owner:
            raise ProtectionError(
                f"process {caller!r} attempted to use port "
                f"{self.nic.id}:{self.port_num} owned by {self.owner!r}"
            )

    # -- token pools (engine-facing) --------------------------------------------
    @property
    def free_send_tokens(self) -> int:
        return len(self._free_send_tokens)

    @property
    def free_recv_tokens(self) -> int:
        return len(self._recv_tokens)

    def take_recv_token(self) -> ReceiveToken | None:
        """NIC side: claim a preposted receive buffer, if any."""
        if not self._recv_tokens:
            return None
        return self._recv_tokens.popleft()

    def return_recv_token(self, token: ReceiveToken) -> None:
        """NIC side: a transformed token's duties are over — it is consumed
        (the host buffer now holds the delivered message); nothing returns
        to the pool until the host reposts."""
        token.transformed = False

    def complete_send(self, token: SendToken) -> None:
        """NIC side: all packets of *token* acknowledged."""
        handle = self._completions.pop(token.token_id, None)
        self.sends_completed += 1
        self._free_send_tokens.append(token)
        if handle is not None:
            handle.done.succeed(self.sim.now)

    def deliver_event(self, completion: RecvCompletion) -> None:
        """NIC side: enqueue a receive event for the host."""
        self.messages_received += 1
        self.event_queue.put(completion)

    # -- host-facing operations ---------------------------------------------------
    def send(
        self,
        dst: int,
        size: int,
        dst_port: int = 0,
        region: "RegisteredRegion | None" = None,
        info: Any = None,
        caller: Any = None,
    ) -> Generator[SimEvent, Any, SendHandle]:
        """Post a unicast send.  Raises :class:`TokenExhausted` if the
        port has no free send tokens (GM's behaviour); callers that prefer
        to block can wait on completions and retry."""
        self._check_owner(caller)
        if size < 0:
            raise ValueError(f"negative send size {size}")
        if not self._free_send_tokens:
            raise TokenExhausted(
                f"port {self.nic.id}:{self.port_num} has no free send tokens"
            )
        token = self._free_send_tokens.pop()
        token.arm(dst, dst_port, size, region)
        if info is not None:
            token.context["info"] = info
        if region is not None:
            region.pin()
        handle = SendHandle(
            token=token, done=self.sim.event(), posted_at=self.sim.now
        )
        self._completions[token.token_id] = handle
        self.sends_posted += 1
        yield self.sim.timeout(self.cost.host_send_post)
        self.nic.post_command(SendCommand(port=self.port_num, token=token))
        return handle

    def provide_receive_buffer(
        self, count: int = 1, size: int | None = None, caller: Any = None
    ) -> Generator[SimEvent, Any, None]:
        """Prepost *count* receive buffers (receive tokens)."""
        self._check_owner(caller)
        if count < 1:
            raise ValueError("count must be >= 1")
        yield self.sim.timeout(self.cost.host_recv_post * count)
        for _ in range(count):
            self._recv_tokens.append(
                ReceiveToken(self.port_num, size=size or 0)
            )

    def receive(self, caller: Any = None) -> Generator[SimEvent, Any, RecvCompletion]:
        """Block until the next message arrives on this port."""
        self._check_owner(caller)
        completion = yield self.event_queue.get()
        yield self.sim.timeout(self.cost.host_event_dispatch)
        return completion

    def try_receive(self, caller: Any = None) -> RecvCompletion | None:
        """Non-blocking poll of the event queue (no host cost charged)."""
        self._check_owner(caller)
        if len(self.event_queue):
            ev = self.event_queue.get()
            assert ev.triggered
            return ev.value
        return None

    def __repr__(self) -> str:
        return (
            f"<GMPort {self.nic.id}:{self.port_num} "
            f"stok={self.free_send_tokens} rtok={self.free_recv_tokens}>"
        )
