"""The simulation engine: clock, event heap, and run loop.

Kernel v2: the heap holds two kinds of entries — :class:`SimEvent`
objects and :class:`_Callback` cells (raw callables recycled through a
freelist).  Timers that only need to run a function (``call_at``,
``Link.hold_for``, retransmission timers) go through
:meth:`Simulator.schedule_callback` and never allocate an event; the run
loops are fused (hoisted heap/locals, batched counter updates) so the
per-event cost is one heap pop plus the callbacks themselves.

Kernel v3 adds two structures around the heap:

* a **now-queue** (one per priority) — same-instant work (``succeed``,
  zero-delay timeouts, same-time callbacks, process boots and exits)
  goes on a plain FIFO deque instead of the heap.  The run loops drain
  any heap entries already due at the current instant first (they were
  scheduled earlier, so their sequence numbers are smaller), then the
  urgent queue, then the normal queue, each in append order — byte
  identical to the ``(when, priority, seq)`` heap order, without paying
  ``heappush``/``heappop`` for the majority of events in a cascade;
* a **hierarchical timer wheel** — cancellable timers armed through
  :meth:`Simulator.schedule_timer` land in coarse time buckets (64 µs
  level-0 slots, 4096 µs level-1 slots, an overflow list beyond) and are
  only flushed onto the heap when the clock approaches their slot.  A
  timer cancelled while still in the wheel never touches the heap at
  all (counted ``wheel_cancelled``); one cancelled after flushing is
  skipped at pop (counted ``wheel_skipped``).  Entries keep the
  ``(when, priority, seq)`` key assigned when armed, so flushing
  reproduces exactly the order direct heap scheduling would have given.
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from itertools import count
from typing import Any, Callable, Generator

from repro.perf.counters import KERNEL_COUNTERS
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

__all__ = [
    "Simulator",
    "URGENT",
    "NORMAL",
    "set_default_metrics",
    "set_default_flight",
]

#: Priority for internal immediate resumptions (processed before NORMAL
#: events scheduled at the same instant).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

_INF = float("inf")

#: Timer-wheel level-0 slot width, µs.  Sized so the default 400 µs
#: retransmission timeout spans a handful of slots: a timer armed and
#: acked within its round trip is cancelled long before its slot flushes.
_WHEEL_G0 = 64.0
#: Slots per level; level-1 slot width equals one full level-0 span.
_WHEEL_SLOTS = 64
_WHEEL_SPAN0 = _WHEEL_G0 * _WHEEL_SLOTS  # 4 096 µs
_WHEEL_G1 = _WHEEL_SPAN0
_WHEEL_SPAN1 = _WHEEL_G1 * _WHEEL_SLOTS  # 262 144 µs

#: Registry adopted by simulators created after :func:`set_default_metrics`.
#: ``None`` (the default) keeps all instrumentation down to one attribute
#: check per site.  The slot is duck-typed on purpose: the kernel never
#: imports :mod:`repro.obs` — observers push a registry down, either here
#: or by assigning ``sim.metrics`` directly.
_DEFAULT_METRICS: Any = None


def set_default_metrics(registry: Any) -> Any:
    """Set the registry future simulators attach to; returns the old one.

    For harnesses that build clusters internally (the experiment
    runner's ``--metrics`` flag).  Pass ``None`` to restore the
    unobserved default.
    """
    global _DEFAULT_METRICS
    previous = _DEFAULT_METRICS
    _DEFAULT_METRICS = registry
    return previous


#: Flight recorder adopted by simulators created after
#: :func:`set_default_flight`.  Same contract as ``_DEFAULT_METRICS``:
#: duck-typed, ``None`` by default, never imported from the kernel —
#: observers (``repro.obs.flight``) push a recorder down, either here or
#: by assigning ``sim.flight`` directly.
_DEFAULT_FLIGHT: Any = None


def set_default_flight(recorder: Any) -> Any:
    """Set the flight recorder future simulators attach to; returns the
    old one.  Pass ``None`` to restore the unrecorded default."""
    global _DEFAULT_FLIGHT
    previous = _DEFAULT_FLIGHT
    _DEFAULT_FLIGHT = recorder
    return previous


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class _Callback:
    """A heap cell carrying a bare callable — no event machinery.

    Cells are recycled through the simulator's freelist: after the run
    loop invokes ``fn`` the cell goes back on the freelist, so a
    steady-state run (packet hops, NIC holds, retransmission timers)
    schedules timers with zero allocation beyond the heap tuple.
    """

    __slots__ = ("fn",)

    #: Class-level sentinel: the run loops dispatch on the ``callbacks``
    #: attribute (``None`` = bare-callable cell, a list = SimEvent), so
    #: the common SimEvent case pays one attribute load, not two
    #: class-identity checks.
    callbacks = None

    def __init__(self, fn: Callable[[], None] | None = None):
        self.fn = fn


class _TimerHandle:
    """A cancellable timer armed via :meth:`Simulator.schedule_timer`.

    Cancellation is a flag flip: a handle still sitting in the wheel is
    dropped at flush time (never reaching the heap); one already flushed
    is skipped when its tuple pops.  Either way the cancelled timer
    costs no event dispatch.
    """

    __slots__ = ("fn", "cancelled")

    #: See :class:`_Callback` — dispatch discriminator for the run loops.
    callbacks = None

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<_TimerHandle {state} fn={self.fn!r}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a ``float`` in *microseconds* throughout this project (all cost
    models are expressed in µs and bytes/µs).

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :meth:`rng`).
    trace:
        If true, record :class:`~repro.sim.trace.TraceRecord` entries for
        component events (components call :meth:`record`).
    """

    def __init__(self, seed: int = 0, trace: bool = False):
        self._heap: list[tuple[float, int, int, Any]] = []
        #: Same-instant NORMAL-priority work, drained FIFO after any heap
        #: entries already due at the current time (see module docstring).
        #: Invariant: everything queued here was appended at the current
        #: ``_now``; the queue is always empty when time advances.
        self._now_q: deque[Any] = deque()
        #: Same-instant URGENT work (process boots/exits, head-of-line
        #: claims).  Drains before ``_now_q``; heap entries due now at
        #: URGENT priority still go first (they carry smaller seqs).
        self._now_uq: deque[Any] = deque()
        # Timer wheel: {slot_key: [entry, ...]} per level, entries are
        # ordinary heap tuples ``(when, priority, seq, _TimerHandle)``.
        self._wheel_l0: dict[float, list[tuple]] = {}
        self._wheel_l1: dict[float, list[tuple]] = {}
        self._wheel_overflow: list[tuple] = []
        #: Earliest slot start holding any wheel entry (``inf`` = empty).
        #: The run loops flush the wheel whenever the next event to
        #: process is at or past this time.
        self._wheel_next: float = _INF
        self._now: float = 0.0
        self._seq = count()
        self._cb_freelist: list[_Callback] = []
        self._rngs = RngRegistry(seed)
        self.seed = seed
        self.trace = Tracer(enabled=trace)
        #: Metrics registry (duck-typed; see :func:`set_default_metrics`).
        #: ``None`` disables all instrumentation.
        self.metrics = _DEFAULT_METRICS
        #: Per-packet flight recorder (duck-typed; see
        #: :func:`set_default_flight`).  ``None`` disables hop recording:
        #: every instrumentation site is a single attribute check, and a
        #: recorder never touches the event queue, so attached and
        #: detached runs replay byte-identically.
        self.flight = _DEFAULT_FLIGHT
        #: Events processed by :meth:`step`/:meth:`run` over this
        #: simulator's lifetime.
        self.events_processed = 0
        # Shadow the `timeout` method with a C-level partial: one Timeout
        # is created per modelled wait, and the pure-Python wrapper frame
        # was ~10% of kernel microbenchmark time.
        self.timeout = partial(Timeout, self)
        KERNEL_COUNTERS.simulators += 1

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._now_q or self._now_uq:
            return self._now
        heap = self._heap
        while self._wheel_next < _INF and (
            not heap or self._wheel_next <= heap[0][0]
        ):
            self._flush_wheel(self._wheel_next)
        while heap:
            entry = heap[0]
            if entry[3].__class__ is _TimerHandle and entry[3].cancelled:
                heapq.heappop(heap)
                KERNEL_COUNTERS.wheel_skipped += 1
                continue
            return entry[0]
        return _INF

    def __repr__(self) -> str:
        queued = (
            len(self._heap)
            + len(self._now_q)
            + len(self._now_uq)
            + sum(len(b) for b in self._wheel_l0.values())
            + sum(len(b) for b in self._wheel_l1.values())
            + len(self._wheel_overflow)
        )
        return f"<Simulator t={self._now:.3f}us queued={queued}>"

    # -- event factories ---------------------------------------------------
    def event(self, name: str | None = None) -> SimEvent:
        """Create a fresh, untriggered event."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` µs from now.

        (Shadowed per instance by a ``partial(Timeout, self)`` in
        ``__init__``; this definition documents the signature and serves
        unpickled/copied instances.)
        """
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[SimEvent, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start driving *generator* as a simulation process."""
        return Process(self, generator, name=name)

    def any_of(self, events: list[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: list[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def rng(self, name: str):
        """A named, deterministic ``random.Random`` stream."""
        return self._rngs.get(name)

    def record(self, component: str, category: str, **fields: Any) -> None:
        """Append a trace record at the current time (no-op if disabled)."""
        if self.trace.enabled:
            self.trace.record(self._now, component, category, fields)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float, priority: int) -> None:
        if delay == 0.0:
            # Same-instant work: straight onto the now-queue for its
            # priority.  Heap entries already due at this instant were
            # scheduled earlier (smaller seq) and the loops drain them
            # first, so FIFO append order reproduces exact heap order.
            if priority == 1:
                self._now_q.append(event)
            else:
                self._now_uq.append(event)
        else:
            heapq.heappush(
                self._heap, (self._now + delay, priority, next(self._seq), event)
            )

    def schedule_callback(
        self, when: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> None:
        """Run bare ``fn()`` at absolute time *when* (>= now).

        The allocation-free timer primitive: no :class:`SimEvent`, no
        callback list — just a recycled :class:`_Callback` cell on the
        heap (or the now-queue when *when* is the current instant).  Use
        it for fire-and-forget work (resource releases, packet-hop
        holds); use :meth:`schedule_timer` when the timer may need
        cancelling, and :meth:`event`/:meth:`timeout` when something
        needs to *wait* on the result.
        """
        if when < self._now:
            raise ValueError(
                f"schedule_callback({when}) is in the past (now={self._now})"
            )
        freelist = self._cb_freelist
        if freelist:
            cell = freelist.pop()
            cell.fn = fn
        else:
            cell = _Callback(fn)
        if when == self._now:
            if priority == 1:
                self._now_q.append(cell)
            else:
                self._now_uq.append(cell)
        else:
            heapq.heappush(self._heap, (when, priority, next(self._seq), cell))

    def call_at(
        self, when: float, fn: Callable[[], None], *, priority: int = NORMAL
    ) -> None:
        """Run ``fn()`` at absolute time *when* (>= now)."""
        self.schedule_callback(when, fn, priority)

    def schedule_timer(
        self, when: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> _TimerHandle:
        """Arm a cancellable timer: ``fn()`` at *when* (> now), O(1) cancel.

        The returned handle's :meth:`~_TimerHandle.cancel` defuses the
        timer without heap surgery.  Timers due within one wheel slot go
        straight to the heap; everything further out lands in the wheel
        and only reaches the heap if still live when its slot flushes.
        The ``(when, priority, seq)`` key is fixed at arm time, so wheel
        routing never changes execution order.
        """
        if when <= self._now:
            raise ValueError(
                f"schedule_timer({when}) is not in the future (now={self._now})"
            )
        handle = _TimerHandle(fn)
        entry = (when, priority, next(self._seq), handle)
        distance = when - self._now
        if distance < _WHEEL_G0:
            heapq.heappush(self._heap, entry)
            return handle
        if distance < _WHEEL_SPAN0:
            key = when // _WHEEL_G0
            self._wheel_l0.setdefault(key, []).append(entry)
            start = key * _WHEEL_G0
        elif distance < _WHEEL_SPAN1:
            key = when // _WHEEL_G1
            self._wheel_l1.setdefault(key, []).append(entry)
            start = key * _WHEEL_G1
        else:
            self._wheel_overflow.append(entry)
            start = (when // _WHEEL_G1) * _WHEEL_G1
        if start < self._wheel_next:
            self._wheel_next = start
        KERNEL_COUNTERS.wheel_armed += 1
        return handle

    def _flush_wheel(self, upto: float) -> None:
        """Move every wheel entry that could be due by *upto* to the heap.

        Slots whose start lies at or before *upto* are emptied: live
        entries are heap-pushed under their original ``(when, priority,
        seq)`` key, cancelled entries are dropped without ever touching
        the heap.  Level-1 slots cascade into level-0 (or the heap);
        the overflow list re-buckets once its earliest entry comes
        within level-1 reach.
        """
        heap = self._heap
        push = heapq.heappush
        l0 = self._wheel_l0
        l1 = self._wheel_l1
        flushed = 0
        dropped = 0
        overflow = self._wheel_overflow
        if overflow:
            keep = []
            for entry in overflow:
                if entry[3].cancelled:
                    dropped += 1
                elif entry[0] - upto < _WHEEL_SPAN1:
                    key = entry[0] // _WHEEL_G1
                    l1.setdefault(key, []).append(entry)
                else:
                    keep.append(entry)
            self._wheel_overflow = overflow = keep
        if l1:
            for key in [k for k in l1 if k * _WHEEL_G1 <= upto]:
                for entry in l1.pop(key):
                    if entry[3].cancelled:
                        dropped += 1
                    elif (entry[0] // _WHEEL_G0) * _WHEEL_G0 <= upto:
                        push(heap, entry)
                        flushed += 1
                    else:
                        l0.setdefault(entry[0] // _WHEEL_G0, []).append(entry)
        if l0:
            for key in [k for k in l0 if k * _WHEEL_G0 <= upto]:
                for entry in l0.pop(key):
                    if entry[3].cancelled:
                        dropped += 1
                    else:
                        push(heap, entry)
                        flushed += 1
        nxt = _INF
        if l0:
            nxt = min(l0) * _WHEEL_G0
        if l1:
            start = min(l1) * _WHEEL_G1
            if start < nxt:
                nxt = start
        if overflow:
            start = (min(e[0] for e in overflow) // _WHEEL_G1) * _WHEEL_G1
            if start < nxt:
                nxt = start
        self._wheel_next = nxt
        KERNEL_COUNTERS.wheel_flushed += flushed
        KERNEL_COUNTERS.wheel_cancelled += dropped

    # -- run loop ----------------------------------------------------------
    def step(self) -> None:
        """Process one event from the queue."""
        heap = self._heap
        while True:
            if self._now_uq:
                # Urgent heap entries due now were scheduled earlier
                # (smaller seq) and go first; NORMAL heap entries wait —
                # priority outranks seq at the same instant.
                if heap and heap[0][0] == self._now and heap[0][1] == 0:
                    _w, _p, _s, event = heapq.heappop(heap)
                else:
                    event = self._now_uq.popleft()
                    KERNEL_COUNTERS.batched_events += 1
            elif self._now_q:
                # No wheel check needed here: timers always land in
                # slots strictly after their arm time, and every
                # time-advancing pop flushes first — so while the
                # now-queue drains, ``_wheel_next > _now`` holds.
                if heap and heap[0][0] == self._now:
                    _w, _p, _s, event = heapq.heappop(heap)
                else:
                    event = self._now_q.popleft()
                    KERNEL_COUNTERS.batched_events += 1
            elif heap:
                when = heap[0][0]
                if self._wheel_next <= when:
                    self._flush_wheel(when)
                    continue
                when, _p, _s, event = heapq.heappop(heap)
                self._now = when
            elif self._wheel_next < _INF:
                self._flush_wheel(self._wheel_next)
                continue
            else:
                raise EmptySchedule
            callbacks = event.callbacks
            if callbacks is not None:
                self.events_processed += 1
                KERNEL_COUNTERS.events += 1
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                return
            if event.__class__ is _Callback:
                self.events_processed += 1
                KERNEL_COUNTERS.events += 1
                fn = event.fn
                event.fn = None
                self._cb_freelist.append(event)
                fn()
                return
            if event.cancelled:  # defused _TimerHandle: skip, no event
                KERNEL_COUNTERS.wheel_skipped += 1
                continue
            self.events_processed += 1
            KERNEL_COUNTERS.events += 1
            event.fn()
            return

    def run(self, until: float | SimEvent | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a ``float`` — run until simulated time reaches that instant;
        * a :class:`SimEvent` — run until that event is processed, and
          return its value (raising its exception if it failed).

        All three loops are fused: heap, queue, and helpers are hoisted
        into locals and the lifetime counters are updated once per run,
        not once per event.
        """
        heap = self._heap
        q = self._now_q
        uq = self._now_uq
        pop = heapq.heappop
        popleft = q.popleft
        upopleft = uq.popleft
        cb_cls = _Callback
        freelist = self._cb_freelist
        n = 0
        nb = 0
        ns = 0
        now_val = self._now

        if until is None:
            try:
                while True:
                    if uq:
                        # Urgent heap entries due now carry smaller seqs
                        # and go first; NORMAL heap entries wait behind
                        # the urgent queue (priority outranks seq).
                        if heap and heap[0][0] == now_val and heap[0][1] == 0:
                            _w, _p, _s, event = pop(heap)
                        else:
                            event = upopleft()
                            nb += 1
                    elif q:
                        # No wheel check while the queue drains: timers
                        # always land in slots strictly after their arm
                        # time, and every time-advancing pop below
                        # flushes first, so ``_wheel_next > _now`` holds.
                        if heap and heap[0][0] == now_val:
                            _w, _p, _s, event = pop(heap)
                        else:
                            event = popleft()
                            nb += 1
                    elif heap:
                        when = heap[0][0]
                        if self._wheel_next <= when:
                            self._flush_wheel(when)
                            continue
                        when, _p, _s, event = pop(heap)
                        self._now = now_val = when
                    elif self._wheel_next < _INF:
                        self._flush_wheel(self._wheel_next)
                        continue
                    else:
                        break
                    callbacks = event.callbacks
                    if callbacks is not None:
                        n += 1
                        event.callbacks = None
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for cb in callbacks:
                                cb(event)
                    elif event.__class__ is cb_cls:
                        n += 1
                        fn = event.fn
                        event.fn = None
                        freelist.append(event)
                        fn()
                    elif not event.cancelled:
                        n += 1
                        event.fn()
                    else:
                        # Defused _TimerHandle that had already flushed
                        # (or bypassed) the wheel: discard, no dispatch.
                        ns += 1
            finally:
                self.events_processed += n
                KERNEL_COUNTERS.events += n
                KERNEL_COUNTERS.batched_events += nb
                KERNEL_COUNTERS.wheel_skipped += ns
            return None

        if isinstance(until, SimEvent):
            stop = until
            if stop.processed:
                if not stop.ok:
                    raise stop.value
                return stop.value
            flag: list[bool] = []
            stop.add_callback(lambda _ev: flag.append(True))
            try:
                while not flag:
                    if uq:
                        if heap and heap[0][0] == now_val and heap[0][1] == 0:
                            _w, _p, _s, event = pop(heap)
                        else:
                            event = upopleft()
                            nb += 1
                    elif q:
                        if heap and heap[0][0] == now_val:
                            _w, _p, _s, event = pop(heap)
                        else:
                            event = popleft()
                            nb += 1
                    elif heap:
                        when = heap[0][0]
                        if self._wheel_next <= when:
                            self._flush_wheel(when)
                            continue
                        when, _p, _s, event = pop(heap)
                        self._now = now_val = when
                    elif self._wheel_next < _INF:
                        self._flush_wheel(self._wheel_next)
                        continue
                    else:
                        raise RuntimeError(
                            f"simulation ran out of events before {stop!r} "
                            "triggered"
                        )
                    callbacks = event.callbacks
                    if callbacks is not None:
                        n += 1
                        event.callbacks = None
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for cb in callbacks:
                                cb(event)
                    elif event.__class__ is cb_cls:
                        n += 1
                        fn = event.fn
                        event.fn = None
                        freelist.append(event)
                        fn()
                    elif not event.cancelled:
                        n += 1
                        event.fn()
                    else:
                        # Defused _TimerHandle that had already flushed
                        # (or bypassed) the wheel: discard, no dispatch.
                        ns += 1
            finally:
                self.events_processed += n
                KERNEL_COUNTERS.events += n
                KERNEL_COUNTERS.batched_events += nb
                KERNEL_COUNTERS.wheel_skipped += ns
            if not stop.ok:
                raise stop.value
            return stop.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"run(until={horizon}) is in the past")
        self._run_bounded(horizon, inclusive=True)
        self._now = max(self._now, horizon)
        return None

    def run_window(self, horizon: float) -> None:
        """Process every event strictly *before* `horizon`, then stop.

        The conservative-parallel primitive (:mod:`repro.sim.parallel`):
        a shard granted the safe window ``[now, horizon)`` runs exactly
        the events inside it.  Unlike :meth:`run` with a float ``until``,
        events scheduled *at* `horizon` are left queued and the clock is
        **not** advanced to the horizon — cross-shard messages arriving
        at ``t >= horizon`` can still be heap-scheduled afterwards
        (``schedule_callback`` requires ``when >= now``), and they sort
        ahead of nothing they could have caused.
        """
        if horizon < self._now:
            raise ValueError(
                f"run_window({horizon}) is in the past (now={self._now})"
            )
        self._run_bounded(horizon, inclusive=False)

    def _run_bounded(self, horizon: float, inclusive: bool) -> None:
        """Fused run loop shared by ``run(until=float)`` and ``run_window``.

        ``inclusive`` selects whether events exactly at the horizon are
        processed (``run``) or left queued (``run_window``).
        """
        heap = self._heap
        q = self._now_q
        uq = self._now_uq
        pop = heapq.heappop
        popleft = q.popleft
        upopleft = uq.popleft
        cb_cls = _Callback
        freelist = self._cb_freelist
        strict = not inclusive
        n = 0
        nb = 0
        ns = 0
        now_val = self._now
        try:
            while True:
                if uq:
                    if heap and heap[0][0] == now_val and heap[0][1] == 0:
                        _w, _p, _s, event = pop(heap)
                    else:
                        event = upopleft()
                        nb += 1
                elif q:
                    if heap and heap[0][0] == now_val:
                        _w, _p, _s, event = pop(heap)
                    else:
                        event = popleft()
                        nb += 1
                elif heap:
                    when = heap[0][0]
                    wnext = self._wheel_next
                    if wnext <= when and wnext <= horizon:
                        self._flush_wheel(when if when < horizon else horizon)
                        continue
                    if when > horizon or (strict and when == horizon):
                        break
                    when, _p, _s, event = pop(heap)
                    self._now = now_val = when
                elif self._wheel_next <= horizon:
                    self._flush_wheel(horizon)
                    continue
                else:
                    break
                callbacks = event.callbacks
                if callbacks is not None:
                    n += 1
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for cb in callbacks:
                            cb(event)
                elif event.__class__ is cb_cls:
                    n += 1
                    fn = event.fn
                    event.fn = None
                    freelist.append(event)
                    fn()
                elif not event.cancelled:
                    n += 1
                    event.fn()
                else:
                    # Defused _TimerHandle that had already flushed
                    # (or bypassed) the wheel: discard, no dispatch.
                    ns += 1
        finally:
            self.events_processed += n
            KERNEL_COUNTERS.events += n
            KERNEL_COUNTERS.batched_events += nb
            KERNEL_COUNTERS.wheel_skipped += ns
