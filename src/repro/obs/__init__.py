"""Unified observability: metrics registry, health reports, timelines.

``repro.obs`` is the stack's top observation layer.  It may import from
every other layer, but nothing below ``experiments``/``perf`` may
import it back (enforced by ``tools/check_layering.py``): the
instrumented layers talk to the registry only through the duck-typed
``sim.metrics`` slot, which is ``None`` unless an observer attaches
one.  See ``docs/observability.md``.
"""

from repro.obs.health import (
    ObservedRun,
    build_health_report,
    render_health_report,
    serving_section,
    run_observed,
)
from repro.obs.registry import (
    LATENCY_BUCKETS_US,
    OCCUPANCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.timeline import (
    SPAN_RULES,
    chrome_trace,
    chrome_trace_events,
    spans_from_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "LATENCY_BUCKETS_US",
    "OCCUPANCY_BUCKETS",
    "ObservedRun",
    "run_observed",
    "build_health_report",
    "render_health_report",
    "serving_section",
    "SPAN_RULES",
    "chrome_trace",
    "chrome_trace_events",
    "spans_from_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
