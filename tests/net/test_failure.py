"""Failure model: spec validation, lifecycle transitions, cache hygiene."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ConfigError, RoutingError
from repro.net.failure import FailureEvent, FailureInjector, FailureSpec
from repro.sim.parallel import PartitionPlan


def _cluster(n=16, failures=None, seed=0, topology="clos"):
    return Cluster(ClusterConfig(
        n_nodes=n, seed=seed, topology=topology, failures=failures
    ))


# -- spec validation ---------------------------------------------------------

def test_event_validation():
    with pytest.raises(ConfigError):
        FailureEvent(-1.0, "link_down", 0)
    with pytest.raises(ConfigError):
        FailureEvent(0.0, "link_sideways", 0)
    with pytest.raises(ConfigError):
        FailureEvent(0.0, "link_down", -2)


def test_scheduled_needs_ordered_events():
    with pytest.raises(ConfigError):
        FailureSpec(kind="scheduled", events=(
            FailureEvent(50.0, "link_down", 0),
            FailureEvent(10.0, "link_up", 0),
        ))


def test_scheduled_needs_events_random_needs_rates():
    with pytest.raises(ConfigError):
        FailureSpec(kind="scheduled")
    with pytest.raises(ConfigError):
        FailureSpec(kind="random")  # no mtbf/mttr/count
    with pytest.raises(ConfigError):
        FailureSpec(kind="random", mtbf_us=100.0, mttr_us=10.0, count=1,
                    targets="teapots")


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigError):
        FailureSpec.from_dict({"kind": "none", "blast_radius": 3})
    with pytest.raises(ConfigError):
        FailureEvent.from_dict(
            {"time_us": 1.0, "action": "link_down", "target": 0, "x": 1}
        )


def test_cluster_config_round_trip():
    spec = FailureSpec(kind="scheduled", events=(
        FailureEvent(30.0, "link_down", 2),
        FailureEvent(90.0, "link_up", 2),
    ), detect_us=7.5)
    cfg = ClusterConfig(n_nodes=8, failures=spec)
    rebuilt = ClusterConfig.from_dict(cfg.to_dict())
    assert rebuilt.failures == spec
    assert ClusterConfig.from_dict(
        ClusterConfig(n_nodes=8).to_dict()
    ).failures is None


def test_scheduled_target_bounds_checked_at_schedule_time():
    cluster = _cluster(4)
    spec = FailureSpec(kind="scheduled", events=(
        FailureEvent(1.0, "link_down", 10_000),
    ))
    with pytest.raises(ConfigError):
        spec.schedule(cluster.topology, None)


# -- lifecycle: version bumps and cache invalidation -------------------------

def test_link_down_bumps_version_and_invalidates_route_memo():
    cluster = _cluster(32)
    topo = cluster.topology
    net = cluster.network
    cable = topo.nic_cable_index(5)

    # Warm both memo layers.
    route_before = topo.route(1, 5)
    topo.route_latency(1, 5)
    assert topo._route_cache and topo._latency_cache
    v0 = topo.version

    assert topo.set_link_state(cable, up=False) is True
    assert topo.version == v0 + 1
    assert not topo._route_cache, "route memo survived a failure"
    assert not topo._latency_cache, "latency memo survived a failure"
    with pytest.raises(RoutingError):
        topo.route(1, 5)

    # The fabric's own route memo is version-keyed: it must notice too.
    net._routes[(1, 5)] = route_before
    assert net._topo_version != topo.version

    assert topo.set_link_state(cable, up=True) is True
    assert topo.version == v0 + 2
    assert topo.route(1, 5) == route_before


def test_transitions_idempotent():
    cluster = _cluster(8)
    topo = cluster.topology
    cable = topo.nic_cable_index(3)
    v0 = topo.version
    assert topo.set_link_state(cable, up=False) is True
    assert topo.set_link_state(cable, up=False) is False  # no-op
    assert topo.version == v0 + 1
    assert topo.set_link_state(cable, up=True) is True
    assert topo.set_link_state(cable, up=True) is False
    assert topo.version == v0 + 2


def test_switch_down_disconnects_and_recovers():
    cluster = _cluster(64)  # 64-node clos: leaf + spine switches
    topo = cluster.topology
    assert topo.has_path(0, 63)
    assert topo.set_switch_state(0, up=False) is True
    # NICs homed on switch 0 lose all connectivity.
    assert not topo.has_path(0, 63)
    assert topo.set_switch_state(0, up=True) is True
    assert topo.has_path(0, 63)


def test_link_down_invalidates_partition_cut_cache():
    cluster = _cluster(32)
    topo = cluster.topology
    plan = PartitionPlan.from_topology(topo, 2)
    first = plan._cut_scan(topo)
    cached_keys = set(topo._partition_cut_cache)
    assert cached_keys, "cut scan did not populate the cache"

    topo.set_link_state(topo.nic_cable_index(9), up=False)
    second = plan._cut_scan(topo)
    assert set(topo._partition_cut_cache) != cached_keys, (
        "cut-scan cache key did not change after a link failure"
    )
    assert second[1] <= first[1]  # one feeder fewer at most, never more


# -- injector ----------------------------------------------------------------

def test_injector_applies_at_event_time_and_notifies_at_detection():
    spec = FailureSpec(kind="scheduled", events=(
        FailureEvent(50.0, "link_down", 0),
        FailureEvent(200.0, "link_up", 0),
    ), detect_us=5.0)
    cluster = _cluster(8, failures=spec)
    topo = cluster.topology
    heard = []
    assert isinstance(cluster.failures, FailureInjector)
    cluster.failures.subscribe(
        lambda ev: heard.append((cluster.now, ev.action))
    )
    a, b = topo.cables()[0]

    assert topo.link_is_up(a, b)
    cluster.run(until=100.0)
    assert not topo.link_is_up(a, b)
    cluster.run(until=300.0)
    assert topo.link_is_up(a, b)
    assert heard == [(55.0, "link_down"), (205.0, "link_up")]
    assert cluster.failures.transitions == 2


def test_random_schedule_is_seed_deterministic():
    spec = FailureSpec(
        kind="random", mtbf_us=500.0, mttr_us=100.0, count=3,
        targets="nic_links",
    )
    runs = []
    for _ in range(2):
        cluster = _cluster(16, failures=spec, seed=42)
        runs.append(cluster.failures.events)
    assert runs[0] == runs[1]
    assert len(runs[0]) == 6  # 3 downs, 3 paired ups
    other = _cluster(16, failures=spec, seed=43)
    assert other.failures.events != runs[0]
