"""The transport-agnostic reliability core (paper §5, once).

The paper's central reliability design — per-connection sequence
numbers, send records with timestamps, ack-driven record retirement,
timer-driven Go-back-N retransmission — is the *same machinery* whether
the window belongs to a GM unicast connection or a multicast group's
child array.  This package implements that machinery exactly once:

* :class:`SendWindow` — the table of unacknowledged send records, with
  cumulative-ack retirement (:meth:`SendWindow.ack_cumulative`), the
  multicast per-child variant (:meth:`SendWindow.ack_from_child`), and
  oldest-unacked tracking;
* :class:`RetransmitTimer` — one timer object per window.  It keeps at
  most **one** callback in the event heap however many records are
  outstanding, tracking per-record deadlines and lazily rescheduling,
  where the previous per-record ``call_at(lambda …)`` pattern left a
  dead closure in the heap for every (re)arm;
* :class:`RetransmitPolicy` and its concrete strategies
  (:class:`GoBackN` for unicast, :class:`SelectiveGoBackN` for
  one-to-many windows) — what gets resent once the oldest unacked
  record expires.  A new strategy (selective repeat, adaptive backoff)
  is a new policy class, not another copy of the sweep loop;
* :func:`send_ack` / :func:`build_ack_packet` — the single cumulative
  ack builder behind both the GM ACK and the multicast MCAST_ACK.

Layering: ``repro.proto`` sits between the device models and the
protocol engines (``sim → net/nic → proto → gm/mcast``).  It must not
import anything from ``repro.gm`` or ``repro.mcast`` — the import-
layering CI check (`tools/check_layering.py`) enforces this.
"""

from repro.proto.policy import GoBackN, RetransmitPolicy, SelectiveGoBackN
from repro.proto.timer import RetransmitTimer
from repro.proto.window import NEVER, SendWindow
from repro.proto.wire import build_ack_packet, send_ack

__all__ = [
    "GoBackN",
    "NEVER",
    "RetransmitPolicy",
    "RetransmitTimer",
    "SelectiveGoBackN",
    "SendWindow",
    "build_ack_packet",
    "send_ack",
]
