"""Scenario execution: the paper's timing methodology, spec-driven.

The paper times 10,000 iterations after 20 warmup iterations on real
hardware; the simulator is deterministic, so far fewer iterations give
stable means (loss-free runs are exactly periodic).  Methodology notes:

* **Multisend (Fig. 3)** — "the source node transmits a message to
  multiple destinations and waits for an acknowledgment from the last
  destination": one iteration = post → all GM acks back at the root.
* **Multicast (Figs. 4/5)** — "wait for an acknowledgment from one of
  the leaf nodes ... repeated with different leaf nodes ... maximum
  taken": we record every destination's delivery time each iteration
  and add the measured 0-byte unicast (the leaf's ack trip), then take
  the maximum over destinations — the same quantity in one run.

:class:`Harness` owns the whole lifecycle for one
:class:`~repro.scenario.spec.ScenarioSpec`: cluster construction
(including the config's loss model), scheme binding through the
registry, the shared root/member/receiver program templates, the
round-barrier + per-destination delivery tracking, and — optionally — a
metrics registry attached through the duck-typed ``sim.metrics`` slot
(this package never imports ``repro.obs``).

:func:`run_cell` is the module-level, picklable entry point sweep cells
use to run a serialized spec inside a pool worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Any, Generator

from repro.cluster import Cluster
from repro.errors import ConfigError
from repro.gm.params import GMCostModel
from repro.mcast.schemes import create_scheme, get_scheme, resolve_scheme
from repro.mpi.comm import Communicator
from repro.mpi.skew import run_skew_experiment
from repro.scenario.spec import ScenarioSpec, unicast_point
from repro.trees import build_tree

__all__ = [
    "BroadcastResult",
    "Harness",
    "MulticastMeasurement",
    "ScenarioResult",
    "measured_ack_trip",
    "register_workload_runner",
    "run_cell",
    "run_spec",
]

#: Workload kinds executed by externally registered runners.  The
#: serving workload lives in :mod:`repro.workload`, which sits *above*
#: this package in the layering — the harness must not import it, so
#: ``repro.workload`` registers its runner here on import.  A runner
#: takes the :class:`Harness` and returns the ``values`` mapping for
#: the :class:`ScenarioResult`.
_WORKLOAD_RUNNERS: dict[str, Any] = {}


def register_workload_runner(kind: str, runner: Any) -> None:
    """Register *runner* to execute scenarios of workload *kind*."""
    _WORKLOAD_RUNNERS[kind] = runner


@dataclass
class MulticastMeasurement:
    """Per-size multicast timing."""

    latency: float  #: the paper's metric (max leaf delivery + leaf ack)
    per_dest_delivery: dict[int, float]  #: mean delivery per destination
    ack_trip: float  #: measured 0-byte unicast added as the leaf ack


@dataclass
class BroadcastResult:
    """One one-shot broadcast, with the per-destination evidence.

    ``completion_us`` is the headline (root post to the last member's
    host delivery); ``deliveries`` maps every member to its absolute
    delivery time, so 100% delivery is checked per destination, not
    inferred from the maximum.
    """

    completion_us: float
    start_us: float
    deliveries: dict[int, float]

    def delivered_all(self, members: list[int]) -> bool:
        return set(self.deliveries) == set(members)


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    metric: str
    values: dict[int, Any]  #: message size -> per-point value

    def value(self, size: int) -> Any:
        return self.values[size]

    def scalar(self, size: int) -> float:
        """The point's headline number, whatever the value's shape."""
        value = self.values[size]
        if isinstance(value, MulticastMeasurement):
            return value.latency
        if isinstance(value, BroadcastResult):
            return value.completion_us
        if hasattr(value, "mean_bcast_cpu_time"):  # SkewResult
            return value.mean_bcast_cpu_time
        if hasattr(value, "delivered_msgs_per_sec"):  # ServingStats
            return value.delivered_msgs_per_sec
        return float(value)


#: Measured 0-byte unicast per cost model.  Every multicast point adds
#: the leaf's ack trip; the probe is deterministic per cost model, so
#: one measurement per model serves the whole sweep (memoized per
#: process — pool workers each warm their own cache).
_ACK_TRIP_CACHE: dict[GMCostModel, float] = {}


def measured_ack_trip(cost: GMCostModel) -> float:
    """The 0-byte unicast latency for *cost* (memoized, value unchanged)."""
    try:
        return _ACK_TRIP_CACHE[cost]
    except KeyError:
        value = Harness(unicast_point(cost=cost, size=0)).run().values[0]
        _ACK_TRIP_CACHE[cost] = value
        return value


class Harness:
    """Executes one :class:`ScenarioSpec` (a fresh cluster per size).

    ``registry`` — an optional metrics registry (duck-typed; normally a
    :class:`repro.obs.registry.MetricsRegistry`) adopted by every
    simulator the harness builds, via the ``sim.metrics`` slot.

    ``flight`` — an optional flight recorder (duck-typed; normally a
    :class:`repro.obs.flight.FlightRecorder`), adopted the same way via
    ``sim.flight``.  ``timeseries`` — an optional windowed sampler
    (normally a :class:`repro.obs.timeseries.TimeSeriesRecorder`),
    installed on serving clusters for the traffic duration through its
    ``install``/``finalize`` protocol.  All three slots keep this
    package observer-free: it never imports ``repro.obs``.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        registry: Any = None,
        flight: Any = None,
        timeseries: Any = None,
    ):
        self.spec = spec
        self.registry = registry
        self.flight = flight
        self.timeseries = timeseries

    # -- lifecycle -----------------------------------------------------------
    def build_cluster(self) -> Cluster:
        """A fresh cluster for one measurement point."""
        cluster = Cluster(self.spec.cluster)
        if self.registry is not None:
            cluster.sim.metrics = self.registry
        if self.flight is not None:
            cluster.sim.flight = self.flight
        if self.timeseries is not None and self.spec.traffic is not None:
            self.timeseries.install(
                cluster.sim, self.spec.traffic.duration_us
            )
        return cluster

    def run(self) -> ScenarioResult:
        """Measure every size in the spec's measurement policy."""
        kind = self.spec.workload.kind
        if self.spec.partition is not None and kind in (
            "unicast", "multisend", "broadcast"
        ):
            # Sharded execution (repro.sim.parallel), driven through the
            # partition glue; the serving kind handles partitioning in
            # its registered runner.
            from repro.scenario.partition import run_point_partitioned

            return ScenarioResult(
                spec=self.spec,
                metric=self.spec.metric,
                values={
                    size: run_point_partitioned(self, size)
                    for size in self.spec.measurement.sizes
                },
            )
        method = getattr(self, "_run_" + kind, None)
        if method is not None:
            values = {
                size: method(size) for size in self.spec.measurement.sizes
            }
        else:
            try:
                runner = _WORKLOAD_RUNNERS[kind]
            except KeyError:
                raise ConfigError(
                    f"no runner registered for workload kind {kind!r}; "
                    "'serving' scenarios need `import repro.workload` "
                    "first (the CLI and perf entry points do this)"
                ) from None
            values = runner(self)
        return ScenarioResult(
            spec=self.spec, metric=self.spec.metric, values=values
        )

    # -- program templates ---------------------------------------------------
    def _run_unicast(self, size: int) -> float:
        """Mean one-way GM latency (send post → receive event at the host)."""
        spec = self.spec
        iterations = spec.measurement.iterations
        cluster = self.build_cluster()
        src = spec.workload.root
        dst = spec.destinations()[0]
        deliveries: list[float] = []
        starts: list[float] = []

        def receiver() -> Generator:
            port = cluster.port(dst)
            for _ in range(iterations):
                yield from port.receive()
                deliveries.append(cluster.now)
                yield from port.provide_receive_buffer()

        def sender() -> Generator:
            port = cluster.port(src)
            for _ in range(iterations):
                starts.append(cluster.now)
                handle = yield from port.send(dst, size)
                yield handle.done

        s = cluster.spawn(sender())
        r = cluster.spawn(receiver())
        cluster.run(until=cluster.sim.all_of([s, r]))
        return mean(d - t0 for d, t0 in zip(deliveries, starts))

    def _run_multisend(self, size: int) -> float:
        """Fig. 3 metric: mean time from post to the last destination's ack."""
        spec = self.spec
        cluster = self.build_cluster()
        dests = spec.destinations()
        tree = build_tree(
            spec.workload.root, dests,
            shape=spec.workload.tree_shape or "flat",
        )
        durations: list[float] = []
        warmup = spec.measurement.warmup
        total = warmup + spec.measurement.iterations

        bound = create_scheme(
            resolve_scheme(spec.workload.scheme, context="multisend"),
            cluster, tree,
        )
        bound.install()

        def root() -> Generator:
            for it in range(total):
                start = cluster.now
                yield from bound.send(size)
                if it >= warmup:
                    durations.append(cluster.now - start)

        def receiver(i: int) -> Generator:
            port = cluster.port(i)
            for _ in range(total):
                yield from port.receive()
                yield from port.provide_receive_buffer()

        procs = [cluster.spawn(root())]
        procs += [cluster.spawn(receiver(i)) for i in dests]
        cluster.run(until=cluster.sim.all_of(procs))
        return mean(durations)

    def _run_multicast(self, size: int) -> MulticastMeasurement:
        """Fig. 5 metric for one (system size, message size, scheme) point."""
        spec = self.spec
        cost = spec.cluster.cost
        cluster = self.build_cluster()
        dests = spec.destinations()
        warmup = spec.measurement.warmup
        total = warmup + spec.measurement.iterations
        iterations = spec.measurement.iterations
        sums: dict[int, float] = {d: 0.0 for d in dests}
        iteration_start = [0.0]
        round_done: list[Any] = [None]

        def begin_round() -> None:
            remaining = set(dests)
            ev = cluster.sim.event()
            round_done[0] = (remaining, ev)
            iteration_start[0] = cluster.now

        def mark_delivered(dest: int, it: int) -> None:
            if it >= warmup:
                sums[dest] += cluster.now - iteration_start[0]
            remaining, ev = round_done[0]
            remaining.discard(dest)
            if not remaining:
                ev.succeed(None)

        scheme_spec = get_scheme(
            resolve_scheme(spec.workload.scheme, context="multicast")
        )
        shape = spec.workload.tree_shape or scheme_spec.default_tree
        if scheme_spec.tree_uses_cost:
            tree = build_tree(
                spec.workload.root, dests, shape=shape, cost=cost, size=size
            )
        else:
            tree = build_tree(spec.workload.root, dests, shape=shape)
        bound = scheme_spec.cls(scheme_spec, cluster, tree)
        bound.reliability = spec.reliability
        bound.install()

        def root() -> Generator:
            for _ in range(total):
                begin_round()
                yield from bound.post(size)
                yield round_done[0][1]

        def member(i: int) -> Generator:
            port = cluster.port(i)
            for it in range(total):
                yield from port.receive()
                mark_delivered(i, it)
                yield from port.provide_receive_buffer()
                yield from bound.relay(i, size)

        procs = [cluster.spawn(root())]
        procs += [cluster.spawn(member(i)) for i in dests]
        cluster.run(until=cluster.sim.all_of(procs))

        per_dest = {d: sums[d] / iterations for d in dests}
        ack_trip = measured_ack_trip(cost)
        return MulticastMeasurement(
            latency=max(per_dest.values()) + ack_trip,
            per_dest_delivery=per_dest,
            ack_trip=ack_trip,
        )

    def _run_broadcast(self, size: int) -> BroadcastResult:
        """Fig. 8 metric: one one-shot broadcast, run to quiescence.

        Unlike the iterated multicast loop there is no round barrier:
        the cluster runs until the event queue drains, so scheduled
        failure events, recovery replays, and the retransmit tail all
        play out — the delivery-guarantee window must close for the
        run to end at all.
        """
        spec = self.spec
        cluster = self.build_cluster()
        dests = spec.destinations()
        deliveries: dict[int, float] = {}
        start = [0.0]

        scheme_spec = get_scheme(
            resolve_scheme(spec.workload.scheme, context="multicast")
        )
        shape = spec.workload.tree_shape or scheme_spec.default_tree
        if scheme_spec.tree_uses_cost:
            tree = build_tree(
                spec.workload.root, dests, shape=shape,
                cost=spec.cluster.cost, size=size,
            )
        else:
            tree = build_tree(spec.workload.root, dests, shape=shape)
        bound = scheme_spec.cls(scheme_spec, cluster, tree)
        bound.reliability = spec.reliability
        bound.install()

        def root() -> Generator:
            start[0] = cluster.now
            yield from bound.post(size)

        def member(i: int) -> Generator:
            port = cluster.port(i)
            yield from port.receive()
            deliveries[i] = cluster.now
            yield from port.provide_receive_buffer()
            yield from bound.relay(i, size)

        cluster.spawn(root())
        for i in dests:
            cluster.spawn(member(i))
        cluster.run()  # to quiescence: protocol tail included
        m = cluster.sim.metrics
        if m is not None and deliveries:
            m.observe(
                "mcast.broadcast.delivery_gap_us",
                max(deliveries.values()) - min(deliveries.values()),
            )
        return BroadcastResult(
            completion_us=(
                max(deliveries.values(), default=start[0]) - start[0]
            ),
            start_us=start[0],
            deliveries=deliveries,
        )

    def _run_mpi_bcast(self, size: int) -> float:
        """Fig. 4 metric: mean broadcast latency at the MPI level.

        One iteration = root's bcast entry to the last rank's bcast exit,
        plus the measured 0-byte unicast for the leaf's acknowledgment (as
        in the GM-level methodology).  Ranks are pre-synchronized with a
        barrier per iteration, mirroring the paper's loop.
        """
        spec = self.spec
        cost = spec.cluster.cost
        cluster = self.build_cluster()
        comm = Communicator(cluster, nic_bcast=spec.workload.nic)
        root_rank = spec.workload.root
        root_enter: dict[int, float] = {}
        last_exit: dict[int, float] = {}
        warmup = spec.measurement.warmup
        total = warmup + spec.measurement.iterations

        def program(ctx) -> Generator:
            for it in range(total):
                yield from ctx.barrier()
                if ctx.rank == root_rank:
                    root_enter[it] = ctx.sim.now
                yield from ctx.bcast(root=root_rank, size=size)
                last_exit[it] = max(last_exit.get(it, 0.0), ctx.sim.now)

        comm.run(program)
        durations = [
            last_exit[it] - root_enter[it] for it in range(warmup, total)
        ]
        ack_trip = measured_ack_trip(cost)
        return mean(durations) + ack_trip

    def _run_mpi_skew(self, size: int):
        """Fig. 6/7 metric: host CPU time in MPI_Bcast under process skew."""
        spec = self.spec
        cluster = self.build_cluster()
        comm = Communicator(cluster, nic_bcast=spec.workload.nic)
        return run_skew_experiment(
            comm,
            size=size,
            max_skew=spec.workload.max_skew,
            iterations=spec.measurement.iterations,
            warmup=spec.measurement.warmup,
            root=spec.workload.root,
        )


def run_spec(spec: ScenarioSpec, registry: Any = None) -> ScenarioResult:
    """Convenience: execute *spec* and return its result."""
    return Harness(spec, registry=registry).run()


def run_cell(payload: str) -> dict[int, Any]:
    """Sweep-cell entry point: run a serialized spec, return its values.

    Module-level so a :class:`~repro.experiments.parallel.SweepCell` can
    pickle it into a pool worker; the spec travels as its JSON form.
    """
    return Harness(ScenarioSpec.from_json(payload)).run().values
