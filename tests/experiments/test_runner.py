"""Tests for the measurement harness."""

import pytest

from repro.experiments.runner import (
    MPI_SIZES,
    PAPER_SIZES,
    measure_gm_multicast,
    measure_mpi_bcast,
    measure_multisend,
    measure_unicast,
)
from repro.gm.params import GMCostModel


def test_paper_size_lists():
    assert PAPER_SIZES[-1] == 16384
    assert MPI_SIZES[-1] == 16287
    assert PAPER_SIZES == sorted(PAPER_SIZES)


def test_measure_unicast_in_calibrated_regime():
    latency = measure_unicast(size=4, iterations=5)
    assert 5.0 < latency < 11.0


def test_measure_unicast_deterministic():
    assert measure_unicast(size=64, iterations=5) == measure_unicast(
        size=64, iterations=5
    )


def test_measure_multisend_schemes_differ():
    hb = measure_multisend(4, 16, "hb", iterations=5, warmup=2)
    nb = measure_multisend(4, 16, "nb", iterations=5, warmup=2)
    assert nb < hb


def test_measure_multisend_unknown_scheme():
    with pytest.raises(ValueError):
        measure_multisend(4, 16, "quantum", iterations=1)


def test_measure_multisend_iterations_stable():
    # Deterministic loss-free runs: more iterations same mean (~periodic).
    a = measure_multisend(3, 128, "nb", iterations=5, warmup=2)
    b = measure_multisend(3, 128, "nb", iterations=15, warmup=2)
    assert a == pytest.approx(b, rel=0.02)


def test_measure_gm_multicast_structure():
    m = measure_gm_multicast(6, 256, "nb", iterations=5, warmup=2)
    assert set(m.per_dest_delivery) == {1, 2, 3, 4, 5}
    assert m.ack_trip > 0
    assert m.latency == pytest.approx(
        max(m.per_dest_delivery.values()) + m.ack_trip
    )


def test_measure_gm_multicast_all_schemes():
    values = {
        scheme: measure_gm_multicast(
            6, 256, scheme, iterations=4, warmup=2
        ).latency
        for scheme in ("nb", "hb", "nic_assisted")
    }
    assert values["nb"] < values["hb"]
    assert values["nb"] < values["nic_assisted"]


def test_measure_gm_multicast_tree_shape_override():
    chain = measure_gm_multicast(
        6, 64, "nb", iterations=4, warmup=2, tree_shape="chain"
    )
    flat = measure_gm_multicast(
        6, 64, "nb", iterations=4, warmup=2, tree_shape="flat"
    )
    assert flat.latency < chain.latency  # small message: wide wins


def test_measure_gm_multicast_unknown_scheme():
    with pytest.raises(ValueError):
        measure_gm_multicast(4, 16, "bogus", iterations=1)


def test_measure_mpi_bcast_nic_faster():
    hb = measure_mpi_bcast(6, 512, nic=False, iterations=4, warmup=2)
    nb = measure_mpi_bcast(6, 512, nic=True, iterations=4, warmup=2)
    assert nb < hb


def test_cost_override_applies():
    slow = GMCostModel(wire_bandwidth=20.0)
    fast = measure_unicast(size=4096, iterations=3)
    slowed = measure_unicast(cost=slow, size=4096, iterations=3)
    assert slowed > 3 * fast
