"""Regeneration of every figure in the paper's evaluation (§6).

Each ``figN`` module exposes ``run(quick=False) -> FigureResult``;
``repro.experiments.cli`` drives them all and renders EXPERIMENTS.md.
"""

from repro.experiments.report import FigureResult, Series, render_table

__all__ = ["FigureResult", "Series", "render_table"]

#: figure id -> module path, for the CLI and benchmarks
FIGURES = {
    "fig1": "repro.experiments.fig1",
    "fig2": "repro.experiments.fig2",
    "fig3": "repro.experiments.fig3",
    "fig4": "repro.experiments.fig4",
    "fig5": "repro.experiments.fig5",
    "fig6": "repro.experiments.fig6",
    "fig7": "repro.experiments.fig7",
    "fig8": "repro.experiments.fig8",
    "fig9": "repro.experiments.fig9",
}
