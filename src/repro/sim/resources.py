"""Shared-resource primitives: semaphores and FIFO stores.

These model contended hardware in the stack: the LANai processor and PCI
bus are capacity-1 :class:`Resource` objects, packet queues are
:class:`Store` objects, and bounded buffer pools are stores pre-filled with
buffer objects.

Kernel v2 adds uncontended fast paths: :meth:`Resource.use_fast` grants a
free resource inline with a single hold-end event (no
:class:`Request`, no generator frame), and :meth:`Store.try_get` hands
back an already-queued item synchronously so engine drain loops skip
getter-event creation entirely.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from repro.sim.events import PENDING, SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Resource", "Request", "Store", "PriorityStore", "EMPTY"]


class _Empty:
    """Sentinel returned by :meth:`Store.try_get` when nothing is queued."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<EMPTY>"


EMPTY = _Empty()


class Request(SimEvent):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """A counted resource (semaphore) with priority-FIFO granting.

    ``request()`` returns an event that succeeds when the claim is granted;
    ``release(req)`` returns the unit.  Lower *priority* values are granted
    first; ties are FIFO.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: list[tuple[int, int, Request]] = []
        self._seq = count()
        #: Accumulated held time from :meth:`use`/:meth:`use_fast`, µs
        #: (utilization accounting; direct request/release pairs are not
        #: tracked).
        self.busy_time = 0.0
        #: Number of :meth:`use`/:meth:`use_fast` holds completed.
        self.use_count = 0

    @property
    def in_use(self) -> int:
        """Number of granted, un-released claims."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of claims waiting to be granted."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        req = Request(self, priority)
        if self._in_use < self.capacity and not self._waiting:
            self._in_use += 1
            req.succeed(req)
        else:
            heapq.heappush(self._waiting, (priority, next(self._seq), req))
        return req

    def _release_unit(self) -> None:
        """Return one unit and grant as many queued claims as now fit."""
        self._in_use -= 1
        if self._in_use < 0:
            raise RuntimeError(f"double release on {self.name or self!r}")
        while self._waiting and self._in_use < self.capacity:
            _prio, _seq, nxt = heapq.heappop(self._waiting)
            self._in_use += 1
            nxt.succeed(nxt)

    def release(self, request: Request) -> None:
        """Return the unit held by *request*."""
        if request.resource is not self:
            raise ValueError("request does not belong to this resource")
        if not request.triggered:
            # Cancelling a never-granted claim: drop it from the queue.
            self._waiting = [
                entry for entry in self._waiting if entry[2] is not request
            ]
            heapq.heapify(self._waiting)
            return
        self._release_unit()

    def use(
        self, duration: float, priority: int = 0
    ) -> Generator[SimEvent, Any, None]:
        """``yield from`` helper: acquire, hold for *duration* µs, release.

        The general (contention-safe) hold; hot callers go through
        :meth:`use_fast` first and only fall back here when the resource
        is busy or has queued waiters.
        """
        req = self.request(priority)
        yield req
        try:
            yield self.sim.timeout(duration)
            self.busy_time += duration
            self.use_count += 1
        finally:
            self.release(req)

    def use_fast(self, duration: float) -> SimEvent | None:
        """Uncontended hold: one pre-triggered hold-end event, or ``None``.

        When the resource is free with no waiters, the unit is claimed
        inline and a single event — already carrying the release callback
        — is scheduled at ``now + duration``.  The caller yields that
        event and the hold costs no :class:`Request`, no ``use()``
        generator frame, and no separate release timer:

            ev = res.use_fast(cost)
            if ev is None:
                yield from res.use(cost, priority=priority)
            else:
                yield ev

        Returns ``None`` under contention (or capacity exhaustion); the
        caller must then take the ordinary :meth:`use` path.
        """
        if self._in_use >= self.capacity or self._waiting:
            return None
        self._in_use += 1
        self.busy_time += duration
        self.use_count += 1
        sim = self.sim
        # Slots assigned directly (one hold-end event per modelled
        # occupancy makes this the kernel's hottest allocation site).
        ev = SimEvent.__new__(SimEvent)
        ev.sim = sim
        # The release runs first, then the waiting process resumes —
        # matching use(), whose epilogue releases before the caller's
        # continuation code runs.
        ev.callbacks = [self._fast_hold_done]
        ev._value = None
        ev._ok = True
        ev.name = None
        if duration == 0.0:
            sim._now_q.append(ev)
        else:
            heapq.heappush(
                sim._heap, (sim._now + duration, 1, next(sim._seq), ev)
            )
        return ev

    def _fast_hold_done(self, _ev: SimEvent) -> None:
        self._release_unit()


class Store:
    """An unbounded FIFO of items with event-based ``get``.

    ``put`` never blocks (queues in the NIC model are bounded by the buffer
    pools that feed them, not by the queue itself).  ``get`` returns an
    event that succeeds with the next item, in strict FIFO order of both
    items and getters; ``try_get`` takes a queued item synchronously.
    """

    def __init__(self, sim: "Simulator", name: str | None = None):
        self.sim = sim
        self.name = name
        self._get_name = f"get:{name}" if name else None
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of queued items (for tests and introspection)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        self._items.append(item)
        if self._getters:
            self._dispatch()

    def get(self) -> SimEvent:
        # Allocated via __new__ (one getter event per received packet
        # makes this a kernel-hot allocation site).
        ev = SimEvent.__new__(SimEvent)
        ev.sim = self.sim
        ev.callbacks = []
        ev._value = PENDING
        ev._ok = None
        ev.name = self._get_name
        self._getters.append(ev)
        if self._items:
            self._dispatch()
        return ev

    def try_get(self) -> Any:
        """Take the next item now, or :data:`EMPTY` if none is queued.

        The drain-loop fast path: when the queue is backlogged the
        consumer keeps draining synchronously instead of allocating a
        getter event per item.  Only valid when the caller is the sole
        consumer (true of every NIC engine loop).
        """
        if self._items and not self._getters:
            return self._take()
        return EMPTY

    def _take(self) -> Any:
        return self._items.popleft()

    def _dispatch(self) -> None:
        while self._items and self._getters:
            getter = self._getters.popleft()
            getter.succeed(self._take())


class PriorityStore(Store):
    """A store whose items are returned lowest-key first.

    Items are ``(priority_key, payload)`` pairs inserted with
    :meth:`put_priority`; plain :meth:`put` uses priority ``0``.
    """

    def __init__(self, sim: "Simulator", name: str | None = None):
        super().__init__(sim, name=name)
        self._heap: list[tuple[Any, int, Any]] = []
        self._seq = count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> tuple[Any, ...]:
        return tuple(payload for _k, _s, payload in sorted(self._heap))

    def put(self, item: Any) -> None:
        self.put_priority(0, item)

    def put_priority(self, priority: Any, item: Any) -> None:
        heapq.heappush(self._heap, (priority, next(self._seq), item))
        if self._getters:
            self._dispatch()

    def get(self) -> SimEvent:
        ev = SimEvent.__new__(SimEvent)
        ev.sim = self.sim
        ev.callbacks = []
        ev._value = PENDING
        ev._ok = None
        ev.name = self._get_name
        self._getters.append(ev)
        if self._heap:
            self._dispatch()
        return ev

    def try_get(self) -> Any:
        if self._heap and not self._getters:
            return heapq.heappop(self._heap)[2]
        return EMPTY

    def _take(self) -> Any:
        return heapq.heappop(self._heap)[2]

    def _dispatch(self) -> None:
        while self._heap and self._getters:
            getter = self._getters.popleft()
            getter.succeed(self._take())


def drain(store: Store, sink: Callable[[Any], Iterable[SimEvent] | None]):
    """Build a generator that forever gets items and feeds them to *sink*.

    If *sink* returns a generator it is run inline (``yield from``); this is
    the standard shape of NIC engine loops.  Queued items are taken via
    the :meth:`Store.try_get` fast path (no getter event); the loop only
    suspends on ``get()`` when the store runs dry.
    """

    def _loop() -> Generator[SimEvent, Any, None]:
        while True:
            item = store.try_get()
            if item is EMPTY:
                item = yield store.get()
            result = sink(item)
            if result is not None:
                yield from result

    return _loop()
