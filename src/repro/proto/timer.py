"""The per-window retransmission timer.

GM's firmware keeps *one* conceptual retransmission clock per
connection: "if the sender times out on the oldest unacknowledged
record, the sender will retransmit the packet, as well as all the later
packets from the same port" (paper §4).  The repo's first implementation
scheduled one ``call_at(lambda …)`` per record per (re)arm — every ack
or replica refresh left a dead closure in the event heap that popped
later, checked a generation counter, and bailed out stale.  On a lossy
multicast run >95% of timer fires were such garbage (see
``BENCH_kernel.json``, ``timers`` section).

:class:`RetransmitTimer` replaces that pattern.  It keeps **at most one
outstanding heap callback per window**:

* :meth:`arm` stamps the record's absolute ``deadline`` and only touches
  the heap when no callback is outstanding (with a fixed timeout the
  outstanding pop time is never later than a fresh deadline);
* when the callback pops it scans the window: if the *oldest* record is
  overdue it is handed to ``on_expire`` (which traces the timeout and
  starts the retransmission policy) and marked swept (deadline
  ``NEVER``) so it cannot fire again until explicitly re-armed — exactly
  the old consumed-callback behaviour; younger overdue records are
  re-armed in place ("re-arm so it still fires if it *becomes* the
  oldest"); then one callback is rescheduled at the earliest remaining
  deadline, if any;
* acking a record requires **no** timer work at all: retirement from the
  window is the defusing;
* with Kernel v3 the outstanding callback is a cancellable wheel timer
  (:meth:`~repro.sim.engine.Simulator.schedule_timer`): when an ack
  drains the window, :meth:`RetransmitTimer.defuse` cancels it in O(1).
  A handle cancelled while still bucketed in the wheel is dropped at
  flush time (``wheel_cancelled``) and never reaches the heap; one whose
  slot has already flushed — the ack landed inside the final wheel slot
  before the deadline — still pops, but is discarded without dispatching
  an event (``wheel_skipped``).  Either way the defuse is one
  ``timers_cancelled`` and zero stale fires:
  ``timers_cancelled == wheel_cancelled + wheel_skipped`` once the
  queue drains.

The observable schedule is unchanged by construction: a real timeout
still fires at ``last_arm + timeout`` of the oldest unacked record, and
stale pops were no-ops before.  What changes is heap pressure — counted
in :data:`repro.perf.counters.KERNEL_COUNTERS`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.perf.counters import KERNEL_COUNTERS
from repro.proto.window import NEVER, SendWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["RetransmitTimer"]


class RetransmitTimer:
    """One retransmission timer for one :class:`SendWindow`."""

    __slots__ = ("sim", "timeout", "window", "on_expire", "_next", "_handle")

    def __init__(
        self,
        sim: "Simulator",
        timeout: float,
        window: SendWindow,
        on_expire: Callable[[Any], None],
    ):
        if timeout <= 0:
            raise ValueError(f"retransmit timeout must be positive: {timeout}")
        self.sim = sim
        self.timeout = timeout
        self.window = window
        #: Called with the overdue oldest record; must (eventually)
        #: re-arm or retire it — the record is swept until then.
        self.on_expire = on_expire
        #: Absolute pop time of the outstanding timer, or None.
        self._next: float | None = None
        #: Wheel handle of the outstanding timer (cancellable), or None.
        self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RetransmitTimer next={self._next} "
            f"outstanding={len(self.window)}>"
        )

    @property
    def idle(self) -> bool:
        """True when no heap callback is outstanding."""
        return self._next is None

    def arm(self, record: Any) -> None:
        """(Re)start *record*'s retransmission clock from now."""
        record.deadline = self.sim.now + self.timeout
        KERNEL_COUNTERS.timers_armed += 1
        m = self.sim.metrics
        if m is not None:
            m.inc("proto.timers_armed")
        if self._next is None:
            # No callback in flight: schedule one at this deadline.  An
            # outstanding callback always pops at or before any fresh
            # deadline (fixed timeout), so it covers this arm lazily.
            self._schedule(record.deadline)

    def _schedule(self, when: float) -> None:
        self._next = when
        KERNEL_COUNTERS.timers_scheduled += 1
        m = self.sim.metrics
        if m is not None:
            m.inc("proto.timers_scheduled")
        self._handle = self.sim.schedule_timer(when, self._fire)

    def defuse(self) -> None:
        """Cancel the outstanding timer once the window has drained.

        Ack paths call this after retiring records: with nothing left
        unacked the scheduled fire could only pop stale, so cancelling
        the wheel handle (O(1)) removes the pop entirely.  A no-op when
        records remain or no timer is outstanding.
        """
        if self._next is None or self.window.records:
            return
        self._handle.cancel()
        self._handle = None
        self._next = None
        KERNEL_COUNTERS.timers_cancelled += 1
        m = self.sim.metrics
        if m is not None:
            m.inc("proto.timers_cancelled")

    def _fire(self) -> None:
        self._next = None
        self._handle = None
        KERNEL_COUNTERS.timer_fires += 1
        m = self.sim.metrics
        if m is not None:
            m.inc("proto.timer_fires")
        records = self.window.records
        now = self.sim.now
        expired = None
        if records:
            seqs = sorted(records)
            oldest = seqs[0]
            for seq in seqs:
                record = records[seq]
                if record.deadline > now:
                    continue
                if seq == oldest:
                    # Only the oldest unacked record drives
                    # retransmission (as in GM).  Sweep it — no timer
                    # until the retransmission path re-arms it.
                    record.deadline = NEVER
                    expired = record
                else:
                    # A younger packet rides in the oldest record's
                    # Go-back-N; re-arm so it still fires if it
                    # *becomes* the oldest.
                    record.deadline = now + self.timeout
                    KERNEL_COUNTERS.timers_armed += 1
                    if m is not None:
                        m.inc("proto.timers_armed")
        if expired is not None:
            self.on_expire(expired)
        else:
            KERNEL_COUNTERS.timer_stale_fires += 1
            if m is not None:
                m.inc("proto.timer_stale_fires")
        # One callback at the earliest remaining deadline, if any (unless
        # on_expire already armed synchronously and re-scheduled).
        if self._next is None:
            nxt = NEVER
            for record in records.values():
                if record.deadline < nxt:
                    nxt = record.deadline
            if nxt < NEVER:
                self._schedule(nxt)
