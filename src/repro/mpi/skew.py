"""The process-skew experiment machinery (paper §6.3).

"All the processes are first synchronized with an MPI_Barrier.  Then
each process, except the root, chooses a random number between the
negative half and the positive half of a maximum value as the amount of
skew they have.  The processes with a positive skew time perform
computation for this amount of skew time before calling the MPI_Bcast
operation.  The average host CPU time ... was plotted against the
average process skew."

Host CPU time = wall time spent inside the blocking ``MPI_Bcast``.
The *average skew* reported on the x-axis is the mean of the positive
skews actually applied (the paper plots up to 400 µs for a ±800 µs
draw range — i.e. max value 800 gives mean positive skew ≈ 400 µs...
we report the empirical mean of applied compute time, which for a
uniform draw over [-max/2, +max/2] is max/8 across all processes; the
caller sweeps ``max_skew`` and uses the measured mean).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Communicator

__all__ = ["SkewResult", "run_skew_experiment"]


@dataclass(frozen=True)
class SkewResult:
    """One skew-sweep measurement point."""

    max_skew: float
    mean_applied_skew: float  #: mean positive compute time over all procs
    mean_bcast_cpu_time: float  #: the paper's y-axis, µs
    per_rank_cpu_time: tuple[float, ...]
    iterations: int
    message_size: int


def run_skew_experiment(
    comm: "Communicator",
    size: int,
    max_skew: float,
    iterations: int = 50,
    warmup: int = 3,
    root: int = 0,
    stream: str = "skew",
) -> SkewResult:
    """Measure mean host CPU time in MPI_Bcast under random skew."""
    rng = comm.cluster.sim.rng(stream)
    applied: list[float] = []

    def program(ctx) -> Generator:
        for it in range(warmup + iterations):
            yield from ctx.barrier()
            if it == warmup:
                ctx.reset_accounting()
            if ctx.rank != root:
                skew = rng.uniform(-max_skew / 2.0, max_skew / 2.0)
                if skew > 0:
                    if it >= warmup:
                        applied.append(skew)
                    yield from ctx.compute(skew)
                elif it >= warmup:
                    applied.append(0.0)
            yield from ctx.bcast(root=root, size=size)

    comm.run(program)
    per_rank = tuple(
        ctx.bcast_cpu_time / iterations for ctx in comm.ranks
    )
    mean_cpu = sum(per_rank) / len(per_rank)
    mean_applied = sum(applied) / len(applied) if applied else 0.0
    return SkewResult(
        max_skew=max_skew,
        mean_applied_skew=mean_applied,
        mean_bcast_cpu_time=mean_cpu,
        per_rank_cpu_time=per_rank,
        iterations=iterations,
        message_size=size,
    )
