"""Figure 6: host CPU time in MPI_Bcast under process skew, 16 nodes.

"The NIC-based broadcast has much smaller host CPU time ... When the
skew goes beyond 40 µs, the host CPU time increases with the host-based
approach, while it decreases with the NIC-based approach."  Paper
headline: improvement factor up to 5.82 for 2-8 byte messages at an
average skew of 400 µs (and up to 2.9 for 2 KB).
"""

from __future__ import annotations

from repro.experiments.parallel import run_grid
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.mpi.skew import SkewResult
from repro.scenario import QUICK_MAX_SKEWS, Harness, ScenarioGrid, skew_point

__all__ = ["run", "SMALL_SIZES", "skew_sweep_point"]

SMALL_SIZES = (2, 4, 8)
#: max-skew values whose mean applied skew spans the paper's 0-400 µs
#: x-axis (mean applied = max/8 for a uniform ±max/2 draw).
MAX_SKEWS = (0.0, 200.0, 400.0, 800.0, 1600.0, 2400.0, 3200.0)


def skew_sweep_point(
    n: int,
    nic: bool,
    max_skew: float,
    size: int,
    iterations: int,
    cost: GMCostModel,
    seed: int = 0,
) -> SkewResult:
    """One skew measurement (kept for direct callers; spec-driven)."""
    spec = skew_point(
        n, nic, max_skew, size, iterations, cost=cost, seed=seed
    )
    return Harness(spec).run().values[size]


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    sizes: tuple[int, ...] = SMALL_SIZES,
    n: int = 16,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    max_skews = QUICK_MAX_SKEWS if quick else MAX_SKEWS
    iterations = 10 if quick else 30
    result = FigureResult(
        figure_id="fig6",
        title="Mean host CPU time in MPI_Bcast (µs) vs mean applied "
        f"skew, {n} nodes",
    )
    cpu = {
        (scheme, size): Series(label=f"{scheme}-{size}B")
        for scheme in ("HB", "NB")
        for size in sizes
    }
    imp = {size: Series(label=f"factor-{size}B") for size in sizes}
    factor_at_400 = []
    grid = ScenarioGrid("fig6")
    for size in sizes:
        for max_skew in max_skews:
            for scheme in ("HB", "NB"):
                grid.add(
                    (scheme, size, max_skew),
                    skew_point(
                        n, scheme == "NB", max_skew, size, iterations,
                        cost=cost,
                    ),
                    label=f"fig6[{scheme},size={size},skew={max_skew:g}]",
                )
    values = run_grid(grid, jobs=jobs)
    for size in sizes:
        for max_skew in max_skews:
            hb = values[("HB", size, max_skew)]
            nb = values[("NB", size, max_skew)]
            x = round(hb.mean_applied_skew, 1)
            cpu[("HB", size)].add(x, hb.mean_bcast_cpu_time)
            cpu[("NB", size)].add(x, nb.mean_bcast_cpu_time)
            factor = hb.mean_bcast_cpu_time / nb.mean_bcast_cpu_time
            imp[size].add(x, factor)
            if max_skew == 3200.0:  # mean applied ~400 µs
                factor_at_400.append(factor)
    result.series = [cpu[("HB", s)] for s in sizes]
    result.series += [cpu[("NB", s)] for s in sizes]
    result.series += [imp[s] for s in sizes]
    if factor_at_400:
        result.headlines[
            "max factor at ~400us mean skew, small msgs (paper: 5.82)"
        ] = max(factor_at_400)
    result.notes.append(
        "x = empirical mean of applied positive skews over non-root "
        "ranks (uniform draw in [-max/2, +max/2]; negative draws apply "
        "no compute, exactly as in the paper)"
    )
    return result
