"""Unidirectional network links.

A link serializes packets at its bandwidth and adds a fixed propagation
latency.  Serialization occupies the link (FIFO contention); propagation
pipelines, so back-to-back packets overlap their flight times.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.events import SimEvent
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.net.packet import Packet

__all__ = ["Link"]


class Link:
    """One direction of a full-duplex Myrinet cable.

    Parameters
    ----------
    bandwidth:
        Bytes per microsecond (Myrinet-2000: 250 B/µs = 2 Gb/s).
    latency:
        Propagation + per-hop routing delay in µs for the packet head.
    """

    def __init__(
        self,
        sim: "Simulator",
        bandwidth: float,
        latency: float,
        name: str = "link",
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._channel = Resource(sim, capacity=1, name=f"{name}.channel")
        # Cached bound method: hold_for runs once per packet per hop, and
        # a fresh closure (or bound method) there would be the single
        # biggest allocation site in a sweep.
        self._release_cb = self._channel._release_unit
        #: Cumulative bytes serialized (utilization accounting).
        self.bytes_carried = 0
        self.packets_carried = 0
        #: Owning shard id under a :class:`repro.sim.parallel.PartitionPlan`
        #: (``None`` when unpartitioned).  All contention state for this
        #: link lives on the owner; replicas on other shards stay idle.
        self.owner: int | None = None
        #: Live-fabric state: ``False`` while the cable (or an attached
        #: switch) is failed.  Flipped only through
        #: :meth:`repro.net.topology.Topology.set_link_state` /
        #: ``set_switch_state`` so the topology's route caches stay in
        #: sync; packets claiming a dead link are dropped in the fabric.
        self.up = True

    def serialization_time(self, packet: "Packet") -> float:
        return packet.wire_size / self.bandwidth

    @property
    def busy(self) -> bool:
        return self._channel.in_use > 0

    @property
    def queue_length(self) -> int:
        return self._channel.queue_length

    def claim_fast(self) -> bool:
        """Claim the channel inline if it is idle with no waiters.

        The uncontended wire fast path: no :class:`Request`, no grant
        event, no process suspension — the head starts crossing in the
        same callback that injected it.  Returns ``False`` under
        contention; the caller must then ``yield`` :meth:`claim_head`.
        """
        channel = self._channel
        if channel._in_use >= channel.capacity or channel._waiting:
            return False
        channel._in_use += 1
        return True

    def claim_head(self) -> SimEvent:
        """Request the channel for a packet head (cut-through traversal).

        The caller must follow up with :meth:`hold_for` (which schedules the
        release) once the head has crossed; see ``fabric.Network._traverse``.
        """
        return self._channel.request()

    def hold_for(self, duration: float) -> None:
        """Keep the channel occupied for *duration* µs, then release.

        Scheduled in the background so the packet head can progress to the
        next hop while the tail is still streaming through this link.  This
        runs once per packet per hop, so it goes through the kernel's
        raw-callback timer (a recycled heap cell and a cached bound
        method — no event, no closure, no release process).  Works for
        holds taken via :meth:`claim_fast` and :meth:`claim_head` alike:
        releasing a granted claim is exactly one ``_release_unit``.
        """
        sim = self.sim
        sim.schedule_callback(sim._now + duration, self._release_cb)

    def account(self, packet: "Packet") -> None:
        self.bytes_carried += packet.wire_size
        self.packets_carried += 1

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.bandwidth}B/us lat={self.latency}us>"
