"""Figure 9: reliability families under packet loss.

Beyond the paper's evaluation: §5 fixes one recovery (sender-driven
ACK-window Go-back-N) and argues it is cheap because loss is rare.  This
figure quantifies the alternatives the pluggable engine registry
(:mod:`repro.proto.engines`) makes selectable per group, sweeping
Bernoulli data-packet loss over 8- and 64-node binomial broadcasts:

* ``nic_based`` — the paper's ACK-window family: a lost packet is
  recovered only when the sender's retransmit timer expires, and the
  Go-back-N resend repeats everything after the loss;
* ``nic_nack`` — receivers detect gaps and NACK them after a jittered
  suppression delay; the sender multicasts the repair to every laggard;
* ``nic_nack_fec`` — NACK plus per-hop XOR parity blocks: any single
  loss per block reconstructs locally with **no repair round trip**.

Two quantities per point, both charted: completion latency (root post to
last host delivery) and repair traffic (``mcast.retransmit_packets`` —
every repair/replay packet emission, uniform across families).  Repair
*round trips* (timeouts + NACKs, the thing FEC removes) feed the
headline comparison.  Every point checks 100% per-destination delivery,
and one extra point per family injects a fig8-style transient link
failure mid-broadcast to show exactly-once delivery survives a severed
subtree under every family.

Points run sequentially through :func:`repro.scenario.harness.run_spec`
with a per-point metrics registry — the process-pool grid path returns
values only, and this figure's counters live in the registry.
"""

from __future__ import annotations

from repro.cluster import build_topology
from repro.config import ClusterConfig
from repro.errors import ReproError
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.net.failure import FailureEvent, FailureSpec
from repro.net.fault import LossSpec
from repro.obs.registry import MetricsRegistry
from repro.scenario import broadcast_point
from repro.scenario.harness import run_spec
from repro.sim.engine import Simulator

__all__ = ["run", "NODES", "SIZE", "SCHEMES", "LOSS_RATES", "SEED"]

NODES = (8, 64)
SIZE = 16384
SCHEMES = ("nic_based", "nic_nack", "nic_nack_fec")
#: Bernoulli data-loss probabilities (0–5%, the §5 "loss is rare" regime
#: and beyond it).
LOSS_RATES = (0.0, 0.01, 0.02, 0.05)
SEED = 4
#: Transient link outage for the failure points (fig8's shape: down
#: mid-broadcast, healed late enough that only recovery can beat it).
DOWN_AT, UP_AT = 30.0, 700.0

#: Round trips a family needed: ACK-window pays a timer expiry per
#: recovery; the NACK families pay a NACK (or, if a subtree went silent,
#: a fallback timeout).  FEC's local reconstructions appear in neither.
_ROUND_TRIP_COUNTERS = ("proto.retransmit_timeouts", "proto.nack_sent")


def _loss(rate: float) -> LossSpec | None:
    if rate == 0.0:
        return None
    return LossSpec(kind="bernoulli", rate=rate,
                    packet_types=("MCAST_DATA",))


def _failure(n: int, cost: GMCostModel) -> FailureSpec:
    """One interior link severed mid-broadcast, healed at UP_AT."""
    topo = build_topology(
        Simulator(),
        ClusterConfig(n_nodes=n, cost=cost, seed=SEED, topology="clos"),
    )
    cable = topo.nic_cable_index(n // 2)  # root's widest-subtree child
    return FailureSpec(kind="scheduled", events=(
        FailureEvent(DOWN_AT, "link_down", cable),
        FailureEvent(UP_AT, "link_up", cable),
    ))


def _run_point(
    n: int,
    scheme: str,
    cost: GMCostModel,
    rate: float = 0.0,
    failures: FailureSpec | None = None,
    label: str = "",
) -> tuple[object, MetricsRegistry]:
    registry = MetricsRegistry()
    spec = broadcast_point(
        n, SIZE, scheme,
        cost=cost,
        seed=SEED,
        tree_shape="binomial",
        loss=_loss(rate),
        failures=failures,
        name=label,
    )
    result = run_spec(spec, registry=registry)
    point = result.values[SIZE]
    members = list(range(1, n))
    if not point.delivered_all(members):
        missing = sorted(set(members) - set(point.deliveries))
        raise ReproError(
            f"{label}: incomplete delivery, missing {missing}"
        )
    return point, registry


def _round_trips(registry: MetricsRegistry) -> int:
    return sum(registry.value(name, 0) for name in _ROUND_TRIP_COUNTERS)


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    jobs: int | None = 1,
) -> FigureResult:
    """*jobs* is accepted for CLI parity but unused: each point needs
    its own metrics registry back, which the process-pool grid path does
    not return, and the per-point broadcasts are sub-second anyway."""
    del jobs
    cost = cost or GMCostModel()
    nodes = (8,) if quick else NODES
    rates = (0.0, 0.02) if quick else LOSS_RATES
    result = FigureResult(
        figure_id="fig9",
        title="Reliability families vs data loss "
        f"({'/'.join(str(n) for n in nodes)}-node Clos, {SIZE} B, "
        "binomial tree): completion and repair traffic",
    )
    round_trips: dict[tuple[str, int, float], int] = {}
    for n in nodes:
        for scheme in SCHEMES:
            completion = Series(label=f"{scheme}[n={n}] us")
            repair_pkts = Series(label=f"{scheme}[n={n}] repair_pkts")
            for rate in rates:
                label = f"fig9[{scheme},n={n},loss={rate:g}]"
                point, registry = _run_point(
                    n, scheme, cost, rate=rate, label=label
                )
                completion.add(rate * 100.0, point.completion_us)
                repair_pkts.add(
                    rate * 100.0,
                    registry.value("mcast.retransmit_packets", 0),
                )
                round_trips[(scheme, n, rate)] = _round_trips(registry)
            result.series.append(completion)
            result.series.append(repair_pkts)

    # The claim FEC exists to make: at >= 2% loss it needs fewer repair
    # round trips than the ACK-window timer, because single losses per
    # block reconstruct locally.
    wide = nodes[-1]
    lossy = [rate for rate in rates if rate >= 0.02]
    ack_rt = sum(round_trips[("nic_based", wide, r)] for r in lossy)
    fec_rt = sum(round_trips[("nic_nack_fec", wide, r)] for r in lossy)
    result.headlines[
        f"nic_nack_fec: repair round trips saved vs ACK-window at "
        f">=2% loss, n={wide} (expected: > 0)"
    ] = ack_rt - fec_rt
    result.extra["round_trips"] = {
        f"{scheme},n={n},loss={rate:g}": count
        for (scheme, n, rate), count in sorted(round_trips.items())
    }

    # Exactly-once delivery under a severed subtree, every family: the
    # loss sweep exercises random drops; this exercises total silence.
    fail_n = nodes[-1]
    failures = _failure(fail_n, cost)
    for scheme in SCHEMES:
        label = f"fig9[{scheme},n={fail_n},link_failure]"
        point, registry = _run_point(
            fail_n, scheme, cost, failures=failures, label=label
        )
        result.extra.setdefault("failure_completion_us", {})[scheme] = (
            point.completion_us
        )
    result.headlines[
        "all families: destinations delivered at every point, including "
        f"a transient mid-broadcast link failure (expected: {fail_n - 1})"
    ] = fail_n - 1
    return result
