"""Clos fabrics at cluster scale: 256 and 1024 nodes.

The paper's testbed is 16 nodes (one crossbar); the sharded kernel
targets the clusters that outgrow it.  These tests pin the structural
invariants the partitioner and the parallel benchmarks rely on at that
scale: route validity, deterministic link ordering across rebuilds, and
shard balance.  Full ``validate()`` walks all ``n * (n - 1)`` pairs —
tens of seconds at 256 nodes — so routing is checked on a structured
sample instead: every pair class a two-level Clos has (same leaf,
cross-leaf via each spine, first/last NICs).
"""

import pytest

from repro.errors import RoutingError
from repro.net import clos
from repro.sim import Simulator
from repro.sim.parallel import PartitionPlan

BW = 250.0
LINK_LAT = 0.1
HOP_LAT = 0.3
RADIX = 16
HALF = RADIX // 2  # NICs per leaf, and number of spines


def build(n_nodes):
    sim = Simulator()
    return clos(sim, n_nodes, BW, LINK_LAT, HOP_LAT, radix=RADIX)


def sample_pairs(n_nodes):
    """Every routing-shape class, without the O(n^2) full sweep.

    Same-leaf pairs (2 hops), cross-leaf pairs from each leaf to a
    rotating partner (4 hops via some spine), plus the corner NICs.
    """
    n_leaves = -(-n_nodes // HALF)
    pairs = []
    for leaf in range(n_leaves):
        base = leaf * HALF
        pairs.append((base, min(base + HALF - 1, n_nodes - 1)))  # same leaf
        partner = ((leaf + 1) % n_leaves) * HALF  # neighbouring leaf
        pairs.append((base, partner))
    pairs += [(0, n_nodes - 1), (n_nodes - 1, 0), (n_nodes // 2, 0)]
    return [(s, d) for s, d in pairs if s != d]


@pytest.mark.parametrize("n_nodes", [256, 1024])
class TestClosAtScale:
    def test_shape(self, n_nodes):
        topo = build(n_nodes)
        n_leaves = -(-n_nodes // HALF)
        assert topo.switch_count() == n_leaves + HALF
        # Every cable is two directed links: n NIC cables + full
        # leaf-spine bipartite mesh.
        assert len(topo._links) == 2 * (n_nodes + n_leaves * HALF)

    def test_sampled_routes_valid(self, n_nodes):
        topo = build(n_nodes)
        for src, dst in sample_pairs(n_nodes):
            links = topo.route(src, dst)
            same_leaf = src // HALF == dst // HALF
            assert len(links) == (2 if same_leaf else 4), (src, dst)
            assert topo.route_latency(src, dst) == pytest.approx(
                sum(link.latency for link in links)
            )

    def test_out_of_range_nic_rejected(self, n_nodes):
        topo = build(n_nodes)
        with pytest.raises(RoutingError):
            topo.route(0, n_nodes)

    def test_link_ordering_deterministic(self, n_nodes):
        """Two builds wire identically, cable for cable, in order.

        The partitioner's cut scan and the per-shard event streams both
        iterate ``_links`` in insertion order; a nondeterministic build
        would silently break cross-process determinism.
        """
        a, b = build(n_nodes), build(n_nodes)
        assert list(a._links.keys()) == list(b._links.keys())
        assert [link.latency for link in a._links.values()] == [
            link.latency for link in b._links.values()
        ]

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_partition_balance_at_scale(self, n_nodes, n_shards):
        topo = build(n_nodes)
        plan = PartitionPlan.from_topology(
            topo, n_shards, partitioner="switch_affine"
        )
        sizes = plan.shard_sizes()
        assert sum(sizes) == n_nodes
        assert max(sizes) - min(sizes) <= 1
        # Cut feeders exist and the lookahead is a real positive window.
        assert plan.n_cut_links > 0
        assert 0.0 < plan.lookahead < float("inf")

    def test_partition_plan_matches_across_builds(self, n_nodes):
        p1 = PartitionPlan.from_topology(build(n_nodes), 4)
        p2 = PartitionPlan.from_topology(build(n_nodes), 4)
        assert p1.node_to_shard == p2.node_to_shard
        assert p1.switch_owner == p2.switch_owner
        assert p1.lookahead == p2.lookahead
        assert p1.n_cut_links == p2.n_cut_links


def test_spine_dispersion_256():
    """Cross-leaf routes spread over spines rather than funnelling."""
    topo = build(256)
    spines_used = set()
    for src in range(0, 64, 8):
        for dst in range(128, 192, 8):
            mid = topo.route(src, dst)[1]  # leaf -> spine link
            spines_used.add(mid.name)
    assert len(spines_used) > 1
