"""Point-to-point transfer: eager and rendezvous protocols.

MPICH-GM semantics (paper §5/§6.2): messages up to 16,287 bytes travel
eagerly (pushed into the receiver, copied to the user buffer on match);
larger messages use a rendezvous — request-to-send, clear-to-send after
the receiver registers its user buffer, then a remote-DMA transfer with
no intermediate copies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import RankContext

__all__ = ["send", "recv"]


def _matches(entry: dict, source: int, tag: int) -> bool:
    from repro.mpi.comm import ANY_SOURCE, ANY_TAG

    if entry.get("kind") not in ("eager", "rts"):
        return False
    if source != ANY_SOURCE and entry.get("src_rank") != source:
        return False
    if tag != ANY_TAG and entry.get("tag") != tag:
        return False
    return True


def _envelope(ctx: "RankContext", dest: int, size: int, tag: int,
              kind: str, payload: Any = None, **extra: Any) -> dict:
    env = {
        "kind": kind,
        "comm": ctx.comm.comm_id,
        "src_rank": ctx.rank,
        "dst_rank": dest,
        "tag": tag,
        "size": size,
        "payload": payload,
    }
    env.update(extra)
    return env


def send(ctx: "RankContext", dest: int, size: int, tag: int,
         payload: Any) -> Generator:
    if not 0 <= dest < ctx.comm.size:
        raise MPIError(f"bad destination rank {dest}")
    if dest == ctx.rank:
        raise MPIError("self-sends are not supported (use a copy)")
    dest_node = ctx.comm.node_of_rank[dest]
    if size <= ctx.cost.mpi_eager_max:
        env = _envelope(ctx, dest, size, tag, "eager", payload)
        handle = yield from ctx.port.send(
            dest_node, size, info={"mpi": env}
        )
        # Standard-mode blocking send: returns once the data is out of
        # the user buffer; with eager GM that is when GM completes.
        yield handle.done
        return
    # Rendezvous: RTS -> wait CTS -> RDMA the data.
    env = _envelope(ctx, dest, size, tag, "rts")
    handle = yield from ctx.port.send(dest_node, 0, info={"mpi": env})
    del handle
    while True:
        completion = yield from ctx._pump()
        info = completion.info.get("mpi", {})
        if (
            info.get("kind") == "cts"
            and info.get("src_rank") == dest
            and info.get("tag") == tag
        ):
            break
        ctx._stash(completion)
    # Sender-side registration for the zero-copy transfer.
    region = ctx.node.memory.register(size)
    region.pin()
    yield ctx.sim.timeout(ctx.cost.host_register_cost)
    env = _envelope(ctx, dest, size, tag, "rdma_data", payload)
    handle = yield from ctx.port.send(dest_node, size, info={"mpi": env})
    yield handle.done
    region.unpin()
    ctx.node.memory.deregister(region)


def recv(ctx: "RankContext", source: int, tag: int) -> Generator:
    """Blocking receive; returns the matched envelope."""
    # Check the unexpected queue first (MPI matching order).
    for i, entry in enumerate(ctx.unexpected):
        if _matches(entry, source, tag):
            ctx.unexpected.pop(i)
            result = yield from _complete_recv(ctx, entry)
            return result
    while True:
        completion = yield from ctx._pump()
        if completion.group is not None:
            ctx._stash(completion)
            continue
        entry = {"completion": completion, **completion.info.get("mpi", {})}
        if _matches(entry, source, tag):
            result = yield from _complete_recv(ctx, entry)
            return result
        ctx._stash(completion)


def _complete_recv(ctx: "RankContext", entry: dict) -> Generator:
    if entry["kind"] == "eager":
        # Copy from the MPICH internal buffer to the user buffer.
        yield ctx.sim.timeout(ctx.cost.memcpy_time(entry["size"]))
        return entry
    assert entry["kind"] == "rts"
    # Rendezvous responder: register the user buffer, send CTS, await data.
    src_rank = entry["src_rank"]
    src_node = ctx.comm.node_of_rank[src_rank]
    region = ctx.node.memory.register(entry["size"])
    region.pin()
    yield ctx.sim.timeout(ctx.cost.host_register_cost)
    cts = _envelope(ctx, src_rank, 0, entry["tag"], "cts")
    handle = yield from ctx.port.send(src_node, 0, info={"mpi": cts})
    del handle
    while True:
        completion = yield from ctx._pump()
        info = completion.info.get("mpi", {})
        if (
            info.get("kind") == "rdma_data"
            and info.get("src_rank") == src_rank
            and info.get("tag") == entry["tag"]
        ):
            region.unpin()
            ctx.node.memory.deregister(region)
            return {"completion": completion, **info}
        ctx._stash(completion)
