"""Determinism and ordering guarantees of the parallel sweep executor.

The headline requirement: fanning sweep cells across worker processes
must produce *identical* numbers to running them serially — same seeds,
same event orderings, same floats.
"""

import time

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.experiments import fig3
from repro.experiments.parallel import (
    SweepCell,
    SweepExecutor,
    default_jobs,
    run_cells,
)
from repro.experiments.runner import measure_gm_multicast
from repro.gm.params import GMCostModel
from repro.mcast.manager import install_group
from repro.trees import build_tree


def _square(i):
    # Sleep longer for earlier cells so pool completion order inverts
    # submission order — result order must not care.
    time.sleep(0.01 * (3 - min(i, 3)))
    return i * i


def _boom(i):
    if i == 1:
        raise ValueError(f"cell {i} exploded")
    return i


def _measure_cell(n, size, seed):
    m = measure_gm_multicast(n, size, "nb", iterations=3, seed=seed)
    return m.latency, sorted(m.per_dest_delivery.items()), m.ack_trip


def _traced_multicast(n=8, size=256, seed=0):
    """One traced NIC-based multicast; returns the full record sequence."""
    cost = GMCostModel()
    cluster = Cluster(
        ClusterConfig(n_nodes=n, cost=cost, seed=seed, trace=True)
    )
    dests = list(range(1, n))
    tree = build_tree(0, dests, shape="optimal", cost=cost, size=size)
    install_group(cluster, 1, tree)

    def root():
        handle = yield from cluster.node(0).mcast.multicast_send(
            cluster.port(0), 1, size
        )
        yield handle.done

    def member(i):
        port = cluster.port(i)
        yield from port.receive()
        yield from port.provide_receive_buffer()

    procs = [cluster.spawn(root())]
    procs += [cluster.spawn(member(i)) for i in dests]
    cluster.run(until=cluster.sim.all_of(procs))
    # Packet uids and message ids come from process-global allocators, so
    # their absolute values depend on what ran earlier in the process;
    # renumber by first appearance to compare the sequences themselves.
    renumber = {"uid": {}, "msg": {}}
    out = []
    for rec in cluster.sim.trace:
        fields = dict(rec.fields)
        for key, seen in renumber.items():
            if key in fields:
                fields[key] = seen.setdefault(fields[key], len(seen))
        out.append(
            (
                rec.time,
                rec.component,
                rec.category,
                tuple(sorted((k, repr(v)) for k, v in fields.items())),
            )
        )
    return out


def test_results_in_submission_order():
    cells = [
        SweepCell(figure="t", fn=_square, args=(i,), label=f"sq{i}")
        for i in range(6)
    ]
    ex = SweepExecutor(jobs=4)
    assert ex.run(cells) == [i * i for i in range(6)]
    assert [label for label, _ in ex.timings] == [f"sq{i}" for i in range(6)]
    assert all(wall >= 0 for _, wall in ex.timings)


def test_jobs_one_runs_in_process():
    cells = [SweepCell(figure="t", fn=_square, args=(i,)) for i in range(3)]
    assert SweepExecutor(jobs=1).run(cells) == [0, 1, 4]


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        SweepExecutor(jobs=0)


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_cell_exception_propagates_from_pool():
    """A failing simulation point fails the sweep — the executor must not
    swallow cell-level exceptions and silently re-run serially."""
    cells = [
        SweepCell(figure="t", fn=_boom, args=(i,), label=f"b{i}")
        for i in range(3)
    ]
    with pytest.raises(ValueError, match="cell 1 exploded"):
        SweepExecutor(jobs=2).run(cells)
    with pytest.raises(ValueError, match="cell 1 exploded"):
        SweepExecutor(jobs=1).run(cells)


def test_parallel_measurements_match_serial():
    """Same seed => identical results via SweepExecutor(jobs=4) or direct."""
    points = [(4, 64), (4, 1024), (8, 256)]
    serial = [_measure_cell(n, size, seed=0) for n, size in points]
    cells = [
        SweepCell(figure="fig5", fn=_measure_cell, args=(n, size, 0))
        for n, size in points
    ]
    parallel = SweepExecutor(jobs=4).run(cells)
    assert parallel == serial


def test_trace_sequence_identical_across_workers():
    """A traced 8-node multicast replays record-for-record in a worker."""
    serial = _traced_multicast()
    assert serial, "expected a non-empty trace"
    (via_pool,) = SweepExecutor(jobs=2).run(
        [SweepCell(figure="trace", fn=_traced_multicast)]
    )
    assert via_pool == serial


def test_fig3_tables_identical_serial_vs_parallel():
    sizes = [1, 512]
    serial = fig3.run(quick=True, sizes=sizes, jobs=1)
    parallel = fig3.run(quick=True, sizes=sizes, jobs=2)
    assert serial.table() == parallel.table()


def test_run_cells_helper():
    assert run_cells(
        [SweepCell(figure="t", fn=_square, args=(5,))], jobs=1
    ) == [25]
