"""Unit tests for the cost model."""

import pytest

from repro.errors import ConfigError
from repro.gm.params import GMCostModel


def test_default_is_lanai9():
    assert GMCostModel() == GMCostModel.lanai9()


def test_frozen():
    cost = GMCostModel()
    with pytest.raises(AttributeError):
        cost.mtu = 100  # type: ignore[misc]


def test_with_overrides():
    cost = GMCostModel().with_overrides(mtu=1024)
    assert cost.mtu == 1024
    assert cost.wire_bandwidth == GMCostModel().wire_bandwidth


def test_wire_time():
    cost = GMCostModel()
    nbytes = int(cost.wire_bandwidth)
    assert cost.wire_time(nbytes) == pytest.approx(1.0)


def test_dma_time_has_startup():
    cost = GMCostModel()
    assert cost.dma_time(0) == pytest.approx(cost.dma_startup)
    nbytes = int(cost.pci_bandwidth)
    assert cost.dma_time(nbytes) == pytest.approx(
        cost.dma_startup + nbytes / cost.pci_bandwidth
    )


def test_memcpy_time():
    cost = GMCostModel()
    assert cost.memcpy_time(700) == pytest.approx(cost.host_memcpy_startup + 1.0)


def test_validation_rejects_bad_bandwidth():
    with pytest.raises(ConfigError):
        GMCostModel(wire_bandwidth=0)


def test_validation_rejects_bad_mtu():
    with pytest.raises(ConfigError):
        GMCostModel(mtu=0)


def test_validation_rejects_bad_timeout():
    with pytest.raises(ConfigError):
        GMCostModel(ack_timeout=0)


def test_fast_host_preset_is_faster():
    fast = GMCostModel.fast_host()
    base = GMCostModel.lanai9()
    assert fast.host_send_post < base.host_send_post
    assert fast.host_memcpy_bandwidth > base.host_memcpy_bandwidth


def test_slow_nic_preset_is_slower():
    slow = GMCostModel.slow_nic()
    base = GMCostModel.lanai9()
    assert slow.nic_send_token_processing > base.nic_send_token_processing


def test_multisend_premise_holds():
    # The paper's multisend win requires per-request token processing to
    # dwarf the per-replica header rewrite on the LANai.
    cost = GMCostModel.lanai9()
    assert cost.nic_send_token_processing >= 3 * cost.nic_header_rewrite


def test_large_message_premise_holds():
    # Fig. 3b requires the wire, not PCI, to bottleneck large messages so
    # host-based unicasts catch up at 16 KB.
    cost = GMCostModel.lanai9()
    assert cost.pci_bandwidth > cost.wire_bandwidth


def test_paper_constants():
    cost = GMCostModel.lanai9()
    assert cost.mtu == 4096
    assert cost.mpi_eager_max == 16287
    assert cost.host_send_post < 1.0  # "host overhead over GM is < 1us"
