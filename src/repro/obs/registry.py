"""The metrics registry: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` observes one run.  It hangs off
``Simulator.metrics`` (a plain attribute, ``None`` by default) and the
instrumented layers — the NIC engines, :mod:`repro.net`,
:mod:`repro.proto`, the multicast components — update it through
duck-typed calls::

    m = self.sim.metrics
    if m is not None:
        m.inc("proto.retransmits")

No layer below :mod:`repro.obs` ever imports this module; the registry
is *pushed down* by whoever owns the run (the obs CLI, the experiment
runner's ``--metrics`` flag, a test).  With no registry attached the
instrumentation is a single attribute check — the hot path stays
allocation-free and the event schedule is untouched (the PR-2 golden
trace replays byte-identically either way).

Instruments are created on first use, keyed by dotted name; the prefix
up to the first dot is the *section* used to group the health report
(``nic.*``, ``net.*``, ``proto.*``, ``gm.*``, ``mcast.*``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsError",
    "LATENCY_BUCKETS_US",
    "OCCUPANCY_BUCKETS",
]

#: Default histogram buckets for microsecond latencies/durations (upper
#: bounds; one implicit +inf overflow bucket).
LATENCY_BUCKETS_US: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500,
    1000, 2500, 5000, 10000, 25000, 50000, 100000,
)

#: Default buckets for small occupancy counts (SRAM buffers, queue depth).
OCCUPANCY_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class MetricsError(ValueError):
    """A metric name was reused with an incompatible type."""


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value; tracks its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value, "max": self.max_value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value} max={self.max_value}>"


class Histogram:
    """A fixed-bucket histogram (cumulative-free, Prometheus-style bounds).

    ``bounds`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit ``+inf``
    overflow bucket.  Bucket layout is fixed at creation — observing
    never allocates.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min_seen", "max_seen")

    def __init__(self, name: str, bounds: Iterable[float] = LATENCY_BUCKETS_US):
        self.name = name
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise MetricsError(f"histogram {name!r} needs at least one bucket")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise MetricsError(
                f"histogram {name!r} bounds must be strictly ascending"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_seen = float("inf")
        self.max_seen = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the *p*-quantile (0 < p <= 1).

        Bucketed data cannot give exact quantiles; the bound is the
        conventional conservative estimate.  The overflow bucket reports
        the true maximum seen.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"percentile must be in (0, 1], got {p}")
        if self.count == 0:
            return 0.0
        target = p * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max_seen
        return self.max_seen  # pragma: no cover - defensive

    def snapshot(self) -> dict[str, Any]:
        buckets: dict[str, int] = {}
        for bound, n in zip(self.bounds, self.counts):
            buckets[f"<={bound:g}"] = n
        buckets["+inf"] = self.counts[-1]
        return {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": self.min_seen if self.count else None,
            "max": self.max_seen if self.count else None,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "buckets": buckets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.2f}>"


class MetricsRegistry:
    """All instruments of one observed run, keyed by dotted name."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- typed get-or-create ----------------------------------------------
    def _get(self, name: str, cls, *args):
        inst = self._metrics.get(name)
        if inst is None:
            inst = self._metrics[name] = cls(name, *args)
        elif type(inst) is not cls:
            raise MetricsError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Iterable[float] = LATENCY_BUCKETS_US
    ) -> Histogram:
        return self._get(name, Histogram, buckets)

    # -- terse instrumentation calls (what the engines use) ----------------
    # These run several times per packet when a registry is attached, so
    # the steady-state path is flattened to one dict probe plus inline
    # slot updates; get-or-create (and the type-mismatch error) only runs
    # on each name's first use.
    def inc(self, name: str, n: int = 1) -> None:
        inst = self._metrics.get(name)
        if inst is None or inst.__class__ is not Counter:
            inst = self.counter(name)
        inst.value += n

    def set_gauge(self, name: str, value: float) -> None:
        inst = self._metrics.get(name)
        if inst is None or inst.__class__ is not Gauge:
            inst = self.gauge(name)
        inst.value = value
        if value > inst.max_value:
            inst.max_value = value

    def observe(
        self, name: str, value: float,
        buckets: Iterable[float] = LATENCY_BUCKETS_US,
    ) -> None:
        inst = self._metrics.get(name)
        if inst is None or inst.__class__ is not Histogram:
            inst = self.histogram(name, buckets)
        inst.counts[bisect_left(inst.bounds, value)] += 1
        inst.count += 1
        inst.total += value
        if value < inst.min_seen:
            inst.min_seen = value
        if value > inst.max_seen:
            inst.max_seen = value

    # -- aggregation -------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s instruments into this registry, in place.

        The partitioned-kernel path: each worker process observes its
        shard into a private registry, and the conductor merges them
        into the run's registry afterwards.  Counters and histograms
        merge losslessly (sums of counts preserve means and bucket
        shapes).  Gauges are point-in-time values with no exact merge —
        the maximum is kept, which is right for the high-water-style
        gauges the engines set; run-level rate gauges should be
        re-stamped by the caller after merging.
        """
        for name, inst in other._metrics.items():
            if type(inst) is Counter:
                self.counter(name).value += inst.value
            elif type(inst) is Gauge:
                gauge = self.gauge(name)
                if inst.value > gauge.value:
                    gauge.value = inst.value
                if inst.max_value > gauge.max_value:
                    gauge.max_value = inst.max_value
            else:
                hist = self._get(name, Histogram, inst.bounds)
                if hist.bounds != inst.bounds:
                    raise MetricsError(
                        f"histogram {name!r} bucket layouts differ; "
                        "cannot merge"
                    )
                for i, n in enumerate(inst.counts):
                    hist.counts[i] += n
                hist.count += inst.count
                hist.total += inst.total
                if inst.min_seen < hist.min_seen:
                    hist.min_seen = inst.min_seen
                if inst.max_seen > hist.max_seen:
                    hist.max_seen = inst.max_seen

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def value(self, name: str, default: Any = 0) -> Any:
        """Scalar value of a counter/gauge, or a histogram's count."""
        inst = self._metrics.get(name)
        if inst is None:
            return default
        if isinstance(inst, Histogram):
            return inst.count
        return inst.value

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-ready ``{name: instrument snapshot}``, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def section(self, prefix: str) -> dict[str, dict[str, Any]]:
        """Snapshot restricted to names under ``prefix.`` (or == prefix)."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: inst.snapshot()
            for name, inst in sorted(self._metrics.items())
            if name == prefix or name.startswith(dotted)
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricsRegistry {len(self._metrics)} instruments>"
