"""Reference tree shapes: flat, chain, k-ary."""

from __future__ import annotations

from typing import Sequence

from repro.errors import TreeError
from repro.trees.base import SpanningTree

__all__ = ["flat_tree", "chain_tree", "kary_tree"]


def _check_members(root: int, destinations: Sequence[int]) -> list[int]:
    dests = list(destinations)
    if root in dests:
        raise TreeError(f"root {root} listed among destinations")
    if len(set(dests)) != len(dests):
        raise TreeError("duplicate destinations")
    return dests


def flat_tree(root: int, destinations: Sequence[int]) -> SpanningTree:
    """Root sends directly to every destination (the multisend shape)."""
    dests = _check_members(root, destinations)
    return SpanningTree(root=root, children={root: tuple(dests)})


def chain_tree(root: int, destinations: Sequence[int]) -> SpanningTree:
    """A linear pipeline — optimal for very large pipelined messages."""
    dests = _check_members(root, destinations)
    order = [root] + dests
    children = {a: (b,) for a, b in zip(order, order[1:])}
    return SpanningTree(root=root, children=children)


def kary_tree(root: int, destinations: Sequence[int], k: int) -> SpanningTree:
    """A balanced k-ary tree filled in BFS order."""
    if k < 1:
        raise TreeError(f"k must be >= 1, got {k}")
    dests = _check_members(root, destinations)
    children: dict[int, list[int]] = {}
    queue = [root]
    i = 0
    while i < len(dests):
        parent = queue.pop(0)
        kids = dests[i : i + k]
        children[parent] = kids
        queue.extend(kids)
        i += k
    return SpanningTree(
        root=root, children={n: tuple(c) for n, c in children.items()}
    )
