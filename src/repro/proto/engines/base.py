"""Reliability-engine base classes and the transport adapter contract.

An engine pair never imports its transport — it drives one through a
small duck-typed adapter the transport passes to the constructor.  The
adapter must expose:

``sim``
    the :class:`~repro.sim.engine.Simulator` (clock, processes, named
    RNG streams, metrics);
``nic``
    the NIC device model (``id``, ``name``, ``cpu``, ``processing()``,
    ``queue_tx()``);
``cost``
    the GM cost model (timings such as ``ack_timeout`` and
    ``nic_per_packet_send``);
``arm(group, record)``
    (re)start a record's clock on the group's fallback retransmission
    timer;
``send_group_ack(group)``
    coroutine: cumulative ack of ``group.recv_seq`` to the parent;
``send_nack(group, gaps)``
    coroutine: gap report to the parent (NACK families);
``retransmit(group, record, child, replay=False)``
    coroutine: stage one repair transmission to one child;
``regenerate_record(group, seq)``
    rebuild a retired send record from message metadata (or ``None``);
``inject_data(pkt)``
    coroutine: feed a locally reconstructed data packet back through
    the transport's ordinary receive path (FEC repair).

The *group* object handed to every hook carries the per-flow sequencing
state: ``recv_seq``, ``next_send_seq``, ``children`` / ``child_acked``
(one-to-many transports), the ``window``, and the two engine-facing
fields ``reliability_family`` / ``reliability_params`` plus the
engine-owned ``rel_state`` scratch dict.  The GM unicast transport hands
a ``Connection`` instead — only ``recv_seq`` is touched by the one
unicast-capable family, so the hooks work unchanged.

Hook purity contract: for the ``ack_window`` family every receiver hook
is a pure decision or state write — **zero simulated events** — which is
what makes porting the pre-refactor inline path onto the hooks
byte-identical.  Other families may schedule timers and spawn processes
from their hooks.
"""

from __future__ import annotations

from typing import Any, Generator

__all__ = ["ReceiverEngine", "SenderEngine"]


class _EngineHalf:
    """Shared plumbing: transport handle and per-group parameters."""

    __slots__ = ("transport",)

    #: family name (mirrors the registry key; set by subclasses)
    name = ""

    def __init__(self, transport: Any):
        self.transport = transport

    def param(self, group: Any, key: str) -> Any:
        """*group*'s value for tunable *key* (family default otherwise)."""
        params = group.reliability_params
        if key in params:
            return params[key]
        from repro.proto.engines import get_engine

        return get_engine(group.reliability_family).defaults[key]

    @staticmethod
    def state(group: Any) -> dict:
        """The engine-owned scratch dict riding on *group*.

        Shared between the sender and receiver halves (an intermediate
        multicast node is both); keys are namespaced ``s_*`` / ``r_*``.
        """
        return group.rel_state


class ReceiverEngine(_EngineHalf):
    """Receive-side policy: what to accept, when to ack, how to repair."""

    __slots__ = ()

    def classify(self, group: Any, h: Any) -> str:
        """Verdict for an arriving data header: ``"accept"``,
        ``"duplicate"`` (drop + re-ack, the exactly-once guarantee), or
        ``"drop"`` (discard silently; recovery is the family's job)."""
        raise NotImplementedError

    def on_accept(self, group: Any, h: Any) -> None:
        """Commit an accepted header to the group's sequencing state."""
        raise NotImplementedError

    def ack_after_accept(self, group: Any, h: Any) -> bool:
        """Whether the transport should ack right after this accept."""
        return True

    def on_parity(self, group: Any, pkt: Any) -> Generator:
        """Coroutine: an MCAST_FEC parity packet arrived (default: drop)."""
        return
        yield  # pragma: no cover - makes this a generator function


class SenderEngine(_EngineHalf):
    """Send-side policy: repair triggering and replay regeneration."""

    __slots__ = ()

    def on_data_queued(self, group: Any, record: Any) -> None:
        """A data packet for *record* was queued for the wire.

        Post-queue hook (the packet is already on its way): the FEC
        family accumulates parity blocks here.  Default: nothing, zero
        simulated events.
        """

    def on_nack(self, group: Any, pkt: Any) -> Generator:
        """Coroutine: an MCAST_NACK gap report arrived (default: ignore)."""
        return
        yield  # pragma: no cover - makes this a generator function

    def fallback_timeout(self, group: Any, cost: Any) -> float:
        """Timeout for the group's fallback retransmission timer.

        The ack-window family times out at ``ack_timeout`` (the paper's
        clock).  NACK families ack only at message boundaries, so their
        fallback — which exists to survive *total* loss, where no
        receiver knows there is a gap to report — runs slower.
        """
        return cost.ack_timeout

    def record_for_replay(self, group: Any, seq: int) -> Any:
        """The send record replaying *seq*, regenerating if retired.

        Recovery replay (regraft resync, NACK repair) goes through this
        instead of reaching into :class:`~repro.proto.window.SendWindow`
        directly, so a family can veto or redirect regeneration.
        """
        record = group.window.get(seq)
        if record is None:
            record = self.transport.regenerate_record(group, seq)
        return record
