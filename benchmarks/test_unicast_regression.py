"""Bench: §6.1 claim — "no noticeable impact on the performance of
non-multicast communications".

The multicast engine attaches to every NIC; this bench verifies plain
GM unicast latency and streaming throughput are identical whether or
not multicast groups exist and whether multicast traffic recently ran.
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.experiments.runner import measure_unicast
from repro.mcast import install_group, multicast
from repro.trees import build_tree


def unicast_in_cluster(cluster, size, iterations=20):
    starts, ends = [], []

    def sender():
        port = cluster.port(0)
        for _ in range(iterations):
            starts.append(cluster.now)
            handle = yield from port.send(1, size)
            yield handle.done

    def receiver():
        port = cluster.port(1)
        for _ in range(iterations):
            yield from port.receive()
            ends.append(cluster.now)
            yield from port.provide_receive_buffer()

    s = cluster.spawn(sender())
    r = cluster.spawn(receiver())
    cluster.run(until=cluster.sim.all_of([s, r]))
    return sum(e - t for e, t in zip(ends, starts)) / iterations


def test_unicast_unaffected_by_multicast_state(once):
    def experiment():
        rows = {}
        for size in (4, 4096, 16384):
            # Pristine cluster.
            base = unicast_in_cluster(
                Cluster(ClusterConfig(n_nodes=4)), size
            )
            # Cluster with installed groups AND completed multicasts.
            cluster = Cluster(ClusterConfig(n_nodes=4))
            tree = build_tree(0, [1, 2, 3], shape="optimal",
                              cost=cluster.cost, size=size)
            multicast(cluster, tree, 2048, group_id=7000 + size)
            cluster.run()
            loaded = unicast_in_cluster(cluster, size)
            rows[size] = (base, loaded)
        return rows

    rows = experiment_result = once(experiment)
    print()
    print(f"{'size':>7} {'pristine us':>12} {'with mcast us':>14}")
    for size, (base, loaded) in rows.items():
        print(f"{size:>7} {base:>12.2f} {loaded:>14.2f}")
        # "no noticeable impact": within 2%.
        assert abs(loaded - base) / base < 0.02, size


def test_unicast_latency_calibration(once):
    # The calibrated GM small-message latency must stay in the regime
    # the paper's hardware delivered (~7-8 us one-way).
    latency = once(lambda: measure_unicast(size=4, iterations=30))
    print(f"\nGM 4-byte one-way latency: {latency:.2f} us")
    assert 5.0 < latency < 11.0
