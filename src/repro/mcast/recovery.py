"""Self-healing multicast: failure-driven tree recovery.

Two recovery strategies sit on top of the NIC-based scheme, both
subscribed to the cluster's :class:`~repro.net.failure.FailureInjector`
(the only sanctioned way to learn of failures — at detection time, not
omnisciently):

``backup_tree``
    On the first interior-node loss, switch the whole group to the
    precomputed per-node backup tree (:meth:`TreeManager.backup_for`).
    O(1) decision at failure time; classic per-failure protection
    (subsequent failures fall back to incremental repair).

``tree_repair``
    In-place regraft of orphaned subtrees
    (:meth:`TreeManager.repair`), preserving the §5 deadlock-ordering
    invariant by construction and re-checking it on every repaired tree.

Either way, the *data* recovery is the proto layer's job: the new
parent's retransmit window replays everything the moved subtree has not
acknowledged (regenerating retired records from message metadata), and
duplicates are dropped and re-acked at the receivers — host delivery
stays exactly-once.

Determinism under sharding: every shard runs an identical
:class:`RecoveryManager` replica.  Failure notifications land at
identical instants (same spec, same seed), reachability is evaluated on
each shard's identical topology replica, and the repair computation is
deterministic — so all shards derive the same new tree and each applies
the group-table updates only to its local nodes.  No cross-shard control
traffic exists; only data packets (replays, acks) cross shards, via the
ordinary handoff machinery.

The group-update push itself is modeled as an out-of-band host control
plane (NIC host-command queues, normal command processing costs): link
failures sever the *data* fabric, while the management path — serial
console, dedicated control network — stays up, which is how production
GM mappers distributed route updates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mcast.group import ReplayCommand, UpdateGroupCommand
from repro.mcast.schemes import NicBasedScheme, SchemeSpec, register_scheme
from repro.trees.manager import TreeManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import Cluster
    from repro.net.failure import FailureEvent
    from repro.trees.base import SpanningTree

__all__ = [
    "BackupTreeScheme",
    "RecoveryManager",
    "TreeRepairScheme",
]


class RecoveryManager:
    """One cluster's (or one shard's) recovery control plane for a group.

    Subscribes to the failure injector; on each detection, re-derives
    reachability of the current tree's members from the root, heals the
    tree around newly unreachable nodes (per ``mode``), and pushes
    per-node :class:`UpdateGroupCommand`/:class:`ReplayCommand` to the
    *local* NICs affected.
    """

    def __init__(
        self,
        cluster: "Cluster",
        manager: TreeManager,
        group_id: int,
        port_num: int = 0,
        mode: str = "tree_repair",
    ):
        if mode not in ("backup_tree", "tree_repair"):
            raise ValueError(f"unknown recovery mode {mode!r}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.manager = manager
        self.group_id = group_id
        self.port_num = port_num
        self.mode = mode
        #: Tree members currently unreachable from the root (as of the
        #: last detection notice).
        self.unreachable: set[int] = set()
        self.tree_switches = 0
        self.repairs = 0
        self.regrafts = 0
        if cluster.failures is not None:
            cluster.failures.subscribe(self._on_failure)

    # -- failure hook ------------------------------------------------------
    def _on_failure(self, event: "FailureEvent") -> None:
        """Detection-time notice of one fabric transition."""
        topo = self.cluster.topology
        tree = self.manager.current
        root = tree.root
        unreachable = {
            n for n in tree.nodes
            if n != root and not topo.has_path(root, n)
        }
        went_down = unreachable - self.unreachable
        came_up = self.unreachable - unreachable
        self.unreachable = unreachable
        if went_down:
            self._heal(unreachable)
        for node in sorted(came_up):
            self._replay_to(node)

    # -- healing -----------------------------------------------------------
    def _heal(self, unreachable: set[int]) -> None:
        m = self.sim.metrics
        old = self.manager.current
        new_tree: "SpanningTree | None" = None
        if (
            self.mode == "backup_tree"
            and len(unreachable) == 1
            and old is self.manager.primary
        ):
            backup = self.manager.backup_for(next(iter(unreachable)))
            if backup is not None:
                new_tree = self.manager.switch_to(backup)
                self.tree_switches += 1
                if m is not None:
                    m.inc("mcast.recovery.tree_switches")
        if new_tree is None:
            # tree_repair proper, backup_tree's fallback for second and
            # later failures, and the leaf-death no-op.
            result = self.manager.repair(unreachable)
            if not result.regrafts:
                return  # only leaves died: no rewiring needed
            new_tree = result.tree
            self.repairs += 1
            self.regrafts += len(result.regrafts)
            if m is not None:
                m.inc("mcast.recovery.repairs")
                m.inc("mcast.recovery.regrafts", len(result.regrafts))
        if self.sim.trace.enabled:
            self.sim.record(
                "recovery", "tree_heal", group=self.group_id,
                mode=self.mode, unreachable=sorted(unreachable),
            )
        fr = self.sim.flight
        if fr is not None:
            fr.note(
                self.sim.now, "regraft", -1, group=self.group_id,
                mode=self.mode, unreachable=sorted(unreachable),
            )
        self._push_updates(old, new_tree)

    def _push_updates(
        self, old: "SpanningTree", new: "SpanningTree"
    ) -> None:
        """UpdateGroupCommand to every local node whose view changed."""
        cluster = self.cluster
        for node in new.nodes:
            if (
                new.parent_of(node) == old.parent_of(node)
                and new.children_of(node) == old.children_of(node)
            ):
                continue
            if not cluster.is_local(node):
                continue
            cluster.node(node).nic.post_command(UpdateGroupCommand(
                port=self.port_num,
                group_id=self.group_id,
                parent=new.parent_of(node),
                children=new.children_of(node),
            ))

    def _replay_to(self, node: int) -> None:
        """A member's connectivity recovered: its parent pushes the
        backlog now instead of waiting out the retransmit timer."""
        tree = self.manager.current
        if node not in set(tree.nodes):
            return
        parent = tree.parent_of(node)
        if parent is None or not self.cluster.is_local(parent):
            return
        m = self.sim.metrics
        if m is not None:
            m.inc("mcast.recovery.replay_kicks")
        self.cluster.node(parent).nic.post_command(ReplayCommand(
            port=self.port_num, group_id=self.group_id, child=node
        ))


class _SelfHealingScheme(NicBasedScheme):
    """NIC-based multicast with a failure-recovery control plane."""

    recovery_mode = "tree_repair"

    def install(self) -> None:
        super().install()
        if getattr(self, "recovery", None) is None:
            manager = TreeManager(
                self.tree,
                precompute_backups=(self.recovery_mode == "backup_tree"),
            )
            self.recovery = RecoveryManager(
                self.cluster,
                manager,
                self.group_id,
                self.port_num,
                mode=self.recovery_mode,
            )


class BackupTreeScheme(_SelfHealingScheme):
    """Switch to the precomputed alternate tree on failure detection."""

    recovery_mode = "backup_tree"


class TreeRepairScheme(_SelfHealingScheme):
    """Regraft orphaned subtrees in place on failure detection."""

    recovery_mode = "tree_repair"


register_scheme(SchemeSpec(
    key="backup_tree",
    title="NIC-based multicast + precomputed backup trees",
    feature_key="ours",
    default_tree="optimal",
    tree_uses_cost=True,
    cls=BackupTreeScheme,
))
register_scheme(SchemeSpec(
    key="tree_repair",
    title="NIC-based multicast + in-place tree repair",
    feature_key="ours",
    default_tree="optimal",
    tree_uses_cost=True,
    cls=TreeRepairScheme,
))
