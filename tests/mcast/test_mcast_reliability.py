"""Multicast reliability: per-child acks, selective retransmission, loss."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast import install_group, multicast
from repro.net import BernoulliLoss, PacketType, ScriptedLoss
from repro.trees import build_tree


def run_mcast(loss, size=512, n=8, shape="optimal", seed=11, cost=None):
    cost = cost or GMCostModel()
    cluster = Cluster(ClusterConfig(n_nodes=n, seed=seed, cost=cost), loss=loss)
    tree = build_tree(
        0, range(1, n), shape=shape, cost=cost, size=size
    )
    result = multicast(cluster, tree, size)
    cluster.run()  # drain every ack/timer so resource checks are exact
    return cluster, result


def test_lost_mcast_packet_to_one_child_recovered():
    # Drop the first multicast data packet heading to node 3 only.
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_DATA and p.header.dst == 3
    )
    cluster, result = run_mcast(loss)
    assert sorted(result["delivered"]) == list(range(1, 8))
    retransmitters = [n.id for n in cluster.nodes if n.mcast.retransmissions]
    assert retransmitters  # someone retransmitted


def test_retransmission_goes_only_to_laggards():
    # With a flat tree from the root, dropping node 2's packet must not
    # cause retransmissions to nodes that already acked.
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_DATA and p.header.dst == 2
    )
    cost = GMCostModel()
    cluster = Cluster(ClusterConfig(n_nodes=5, seed=1, cost=cost), loss=loss)
    tree = build_tree(0, [1, 2, 3, 4], shape="flat")
    result = multicast(cluster, tree, 128)
    cluster.run()
    assert sorted(result["delivered"]) == [1, 2, 3, 4]
    root = cluster.node(0).mcast
    assert root.retransmissions == 1
    retrans = cluster.sim.trace  # not traced; use duplicate counters instead
    dup_nodes = [n.id for n in cluster.nodes if n.mcast.duplicates_dropped]
    assert dup_nodes == []  # nobody got a duplicate


def test_mcast_ack_loss_recovered():
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_ACK, times=1
    )
    cluster, result = run_mcast(loss)
    assert sorted(result["delivered"]) == list(range(1, 8))


def test_forwarded_packet_loss_recovers_from_host_memory():
    # Drop a packet on the second hop of a chain: the intermediate NIC
    # must retransmit from the (pinned) host replica.
    cost = GMCostModel()
    loss = ScriptedLoss(
        lambda p: (
            p.header.ptype is PacketType.MCAST_DATA
            and p.header.src == 1
            and p.header.dst == 2
        )
    )
    cluster = Cluster(ClusterConfig(n_nodes=4, seed=2, cost=cost), loss=loss)
    tree = build_tree(0, [1, 2, 3], shape="chain")
    result = multicast(cluster, tree, 2048)
    cluster.run()
    assert sorted(result["delivered"]) == [1, 2, 3]
    assert cluster.node(1).mcast.retransmissions >= 1
    # After full recovery the pinned host region must be released.
    assert cluster.node(1).memory.registered_bytes == 0


def test_multipacket_mcast_loss_in_middle():
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_DATA
        and p.header.chunk == 1,
        times=2,
    )
    cluster, result = run_mcast(loss, size=16384, n=6)
    assert sorted(result["delivered"]) == list(range(1, 6))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    rate=st.floats(min_value=0.0, max_value=0.25),
    size=st.sampled_from([0, 8, 700, 4096, 12000]),
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=5000),
    shape=st.sampled_from(["optimal", "binomial", "chain", "flat"]),
)
def test_property_mcast_delivers_under_loss(rate, size, n, seed, shape):
    """Every member receives the multicast exactly once under random
    loss, for any tree shape; all held resources drain afterwards."""
    loss = BernoulliLoss(rate)
    cluster, result = run_mcast(
        loss, size=size, n=n, shape=shape, seed=seed
    )
    assert sorted(result["delivered"]) == list(range(1, n))
    for node in cluster.nodes:
        assert node.memory.registered_bytes == 0
        assert node.mcast.pending_retransmit_state() == {}
        assert node.nic.send_buffers.free == node.nic.send_buffers.size
        assert node.nic.recv_buffers.free == node.nic.recv_buffers.size
    # Exactly once: each port saw exactly one message.
    for i in range(1, n):
        assert cluster.port(i).messages_received == 1


def test_sequential_mcasts_same_group_ordered():
    cost = GMCostModel()
    cluster = Cluster(ClusterConfig(n_nodes=4, seed=3, cost=cost))
    tree = build_tree(0, [1, 2, 3], shape="chain")
    from repro.mcast.manager import install_group, nic_based_multicast

    install_group(cluster, 55, tree)
    received = {1: [], 2: [], 3: []}

    def root():
        for k in range(5):
            handle = yield from nic_based_multicast(
                cluster, 55, 100 + k, 0
            )
            del handle

    def rx(i):
        port = cluster.port(i)
        for _ in range(5):
            completion = yield from port.receive()
            received[i].append(completion.size)

    procs = [cluster.spawn(root())] + [
        cluster.spawn(rx(i)) for i in (1, 2, 3)
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    for i in (1, 2, 3):
        assert received[i] == [100, 101, 102, 103, 104]


def test_sequential_mcasts_with_loss_stay_ordered():
    cost = GMCostModel()
    loss = BernoulliLoss(0.15)
    cluster = Cluster(ClusterConfig(n_nodes=4, seed=9, cost=cost), loss=loss)
    tree = build_tree(0, [1, 2, 3], shape="chain")
    from repro.mcast.manager import install_group, nic_based_multicast

    install_group(cluster, 77, tree)
    received = {1: [], 2: [], 3: []}

    def root():
        for k in range(8):
            yield from nic_based_multicast(cluster, 77, 50 + k, 0)

    def rx(i):
        port = cluster.port(i)
        for _ in range(8):
            completion = yield from port.receive()
            received[i].append(completion.size)

    procs = [cluster.spawn(root())] + [
        cluster.spawn(rx(i)) for i in (1, 2, 3)
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    for i in (1, 2, 3):
        assert received[i] == [50 + k for k in range(8)]


def test_partitioned_child_escalates_to_unreachable():
    # A child that never receives any multicast data exhausts the
    # sender's retransmission budget and fails loudly, naming the child.
    from repro.errors import ReproError

    cost = GMCostModel(max_retransmits=3, ack_timeout=50.0)
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_DATA
        and p.header.dst == 3,
        times=10_000,
    )
    with pytest.raises(ReproError, match="peer unreachable"):
        run_mcast(loss, n=5, shape="flat", cost=cost)


def test_partitioned_child_error_names_the_child():
    from repro.errors import ReproError

    cost = GMCostModel(max_retransmits=2, ack_timeout=50.0)
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_ACK
        and p.header.src == 2,
        times=10_000,
    )
    with pytest.raises(ReproError, match=r"child 2"):
        run_mcast(loss, n=4, shape="flat", cost=cost)


def test_out_of_order_forwarded_packet_dropped_and_recovered():
    # Drop multicast seq 1 on the wire into node 1: seq 2 then arrives
    # out of order, is counted and dropped, and go-back-N retransmission
    # delivers both messages in order.
    from repro.mcast.manager import install_group, nic_based_multicast

    cost = GMCostModel(ack_timeout=100.0)
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_DATA
        and p.header.dst == 1
        and p.header.seq == 1
    )
    cluster = Cluster(ClusterConfig(n_nodes=3, seed=5, cost=cost), loss=loss)
    tree = build_tree(0, [1, 2], shape="chain")
    install_group(cluster, 91, tree)
    received = {1: [], 2: []}

    def root():
        for k in range(2):
            yield from nic_based_multicast(cluster, 91, 64 + k, 0)

    def rx(i):
        port = cluster.port(i)
        for _ in range(2):
            completion = yield from port.receive()
            received[i].append(completion.size)

    procs = [cluster.spawn(root())] + [
        cluster.spawn(rx(i)) for i in (1, 2)
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    cluster.run()
    assert received[1] == [64, 65]
    assert received[2] == [64, 65]
    assert cluster.node(1).mcast.out_of_order_dropped >= 1
    assert cluster.node(0).mcast.retransmissions >= 1


def test_unknown_group_drop_with_lost_retransmission():
    # Membership races the data (unknown-group drop at the late node),
    # and the recovery retransmission itself is lost once: a second
    # timeout round must still deliver.
    from repro.mcast.group import local_views
    from repro.mcast.manager import next_group_id, nic_based_multicast

    cost = GMCostModel(ack_timeout=100.0)
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_DATA
        and p.header.src == 1
        and p.header.dst == 2,
        times=1,
    )
    cluster = Cluster(ClusterConfig(n_nodes=3, seed=6, cost=cost), loss=loss)
    tree = build_tree(0, [1, 2], shape="chain")
    gid = next_group_id()
    views = local_views(gid, tree)
    cluster.node(0).mcast.install_group_now(views[0])
    cluster.node(1).mcast.install_group_now(views[1])
    delivered = {}

    def root():
        handle = yield from nic_based_multicast(cluster, gid, 256, 0)
        yield handle.done

    def late_installer():
        yield cluster.sim.timeout(250.0)
        cluster.node(2).mcast.install_group_now(views[2])

    def member(i):
        completion = yield from cluster.port(i).receive()
        assert completion.group == gid
        delivered[i] = cluster.now

    procs = [
        cluster.spawn(root()),
        cluster.spawn(late_installer()),
        cluster.spawn(member(1)),
        cluster.spawn(member(2)),
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    cluster.run()
    assert delivered[2] > 250.0
    assert loss.dropped == 1  # the scripted loss actually fired
    assert cluster.node(2).mcast.unknown_group_dropped >= 1
    assert cluster.node(1).mcast.retransmissions >= 2
