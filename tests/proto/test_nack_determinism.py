"""Determinism and suppression proofs for the NACK reliability family.

Two bars, mirroring the parallel-determinism matrix the kernel is held
to (``tests/sim/test_parallel_golden.py``):

* **Sharded byte-identity** — the same (spec, seed) with a
  destination-qualified scripted drop replays the exact same event
  trace, NACK emissions included (every ``mcast_nack`` record: same
  node, same instant, same gap list), serially and at 2 and 4 shards.
  Jitter draws come from per-node named RNG streams, so shard count
  must not move a single NACK.
* **Suppression collapse** — a packet dropped on the link into a
  16-node subtree of a 64-receiver fan-out opens the same gap at every
  descendant; the jittered suppression timers plus the cascading repair
  must collapse that to a handful of NACKs, not one per receiver.
"""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast.manager import install_group
from repro.net.fault import ScriptedLoss
from repro.net.packet import PacketType
from repro.obs.registry import MetricsRegistry
from repro.sim.parallel import PartitionPlan, ShardSet, merge_traces
from repro.trees import build_tree

N = 16
SIZE = 16384
#: The victim: seq 2's copy on the link into node 8 — in the 16-node
#: binomial tree that severs a whole subtree's view of the packet.
VICTIM_DST, VICTIM_SEQ = 8, 2


def _qualified_loss(dst=VICTIM_DST, seq=VICTIM_SEQ):
    """One scripted drop, destination-qualified so that per-shard loss
    instances fire identically wherever the victim link lives."""
    return ScriptedLoss(
        lambda pkt: pkt.header.ptype is PacketType.MCAST_DATA
        and pkt.header.seq == seq
        and pkt.dst == dst,
        times=1,
    )


def _programs(cluster, n):
    def root():
        handle = yield from cluster.node(0).mcast.multicast_send(
            cluster.port(0), 1, SIZE
        )
        yield handle.done

    def member(i):
        port = cluster.port(i)
        yield from port.receive()
        yield from port.provide_receive_buffer()

    if cluster.is_local(0):
        cluster.spawn(root())
    for i in range(1, n):
        if cluster.is_local(i):
            cluster.spawn(member(i))


def _render(records):
    """Render trace records with process-global ids (packet uids,
    message ids) stripped: those allocators number by execution order,
    which legitimately differs between serial and sharded runs.  The
    remaining fields pin each event's node, instant, and payload."""
    lines = []
    for rec in records:
        fields = {
            k: v for k, v in rec.fields.items() if k not in ("uid", "msg")
        }
        rendered = ",".join(f"{k}={fields[k]!r}" for k in sorted(fields))
        lines.append(f"{rec.time:.6f} {rec.component} {rec.category} {rendered}")
    return lines


def _serial_run(family="nack", n=N, loss=None, registry=None, trace=True):
    cost = GMCostModel()
    cluster = Cluster(
        ClusterConfig(n_nodes=n, cost=cost, seed=0, trace=trace),
        loss=loss if loss is not None else _qualified_loss(),
    )
    if registry is not None:
        cluster.sim.metrics = registry
    tree = build_tree(0, list(range(1, n)), shape="binomial")
    install_group(cluster, 1, tree, family=family)
    _programs(cluster, n)
    cluster.run()
    return cluster


def _serial_lines(family="nack"):
    return _render(_serial_run(family=family).sim.trace.records)


def _partitioned_lines(n_shards, family="nack"):
    cost = GMCostModel()
    cfg = ClusterConfig(n_nodes=N, cost=cost, seed=0, trace=True)
    plan = PartitionPlan.from_topology(
        Cluster(cfg).topology, n_shards, partitioner="contiguous"
    )
    tree = build_tree(0, list(range(1, N)), shape="binomial")
    shards = []
    for sid in range(n_shards):
        cluster = Cluster(
            cfg, loss=_qualified_loss(), local_nodes=plan.shard_nodes(sid)
        )
        plan.bind(cluster.topology)
        install_group(cluster, 1, tree, family=family)
        _programs(cluster, N)
        shards.append(cluster)
    conductor = ShardSet(
        plan, [c.sim for c in shards], [c.network for c in shards]
    )
    conductor.run()
    dropped = sum(c.network.dropped for c in shards)
    assert dropped == 1, f"expected exactly one forced drop, got {dropped}"
    return _render(merge_traces(c.sim for c in shards))


def _nack_lines(lines):
    return [line for line in lines if " mcast_nack " in line]


def test_serial_run_emits_and_recovers():
    """The scripted drop produces at least one NACK and full delivery."""
    registry = MetricsRegistry()
    _serial_run(registry=registry)
    assert registry.value("proto.nack_sent", 0) >= 1
    assert registry.value("proto.nack_repairs", 0) >= 1


@pytest.mark.parametrize("n_shards", [2, 4])
def test_sharded_nack_emission_byte_identical(n_shards):
    """Same (spec, seed): every NACK emission — node, instant, gap
    list — must be byte-identical between serial and sharded runs, and
    the full event trace must agree as a multiset (same-time records on
    different shards merge in a different but equally-legal tie order,
    so full-trace *ordering* is not promised across shard counts)."""
    serial = _serial_lines()
    sharded = _partitioned_lines(n_shards)
    nacks = _nack_lines(serial)
    assert nacks, "scripted drop produced no NACK records"
    assert nacks == _nack_lines(sharded), (
        f"{n_shards}-shard NACK emission diverged from serial"
    )
    assert sorted(serial) == sorted(sharded), (
        f"{n_shards}-shard event multiset diverged from serial"
    )


def test_serial_replay_identical_nack_fec():
    """The FEC family's reconstruction processes are seeded too: two
    identical runs must match trace-for-trace."""
    assert _serial_lines("nack_fec") == _serial_lines("nack_fec")


def test_suppression_collapses_fanout_implosion():
    """64 receivers, one drop into a 16-node subtree: without
    suppression every affected receiver would NACK (and re-NACK); with
    it, the NACK count stays an order of magnitude below the subtree."""
    n = 64
    registry = MetricsRegistry()
    # Drop seq 2 on the link root -> node 32: the binomial subtree under
    # node 32 (31 nodes) shares the gap.
    cluster = _serial_run(
        family="nack", n=n,
        loss=_qualified_loss(dst=32, seq=2),
        registry=registry, trace=False,
    )
    assert cluster.network.dropped == 1
    nacks = registry.value("proto.nack_sent", 0)
    affected = 32  # node 32 plus its 31 descendants
    assert 1 <= nacks <= affected // 4, (
        f"suppression failed to collapse the implosion: {nacks} NACKs "
        f"for one shared loss across {affected} receivers"
    )
    # The repair fully healed the subtree: exactly-once delivery.
    assert registry.value("proto.nack_repairs", 0) >= 1
