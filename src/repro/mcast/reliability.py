"""One-to-many reliability for NIC-based multicast.

"A multicast packet sent from one NIC to its children has the same
sequence number and send record, ensuring ordered sending for the same
group's multicast packets.  When an acknowledgment from one destination
is received, the acknowledged sequence number for that destination is
updated.  If the record for a packet is timed out, the retransmission of
the packet and the following ones will be performed only for the
destinations which have not acknowledged" (paper §5).

The mechanics — send window, per-window timer, Go-back-N sweep — come
from :mod:`repro.proto`; this module binds them to multicast groups:
the window is the group's record table, the sweep is the per-child
*selective* Go-back-N, and retransmitted data is re-fetched from the
(still registered) host replica.

Since the reliability-engine refactor this component is also the
**transport adapter** behind the pluggable families of
:mod:`repro.proto.engines`: each group names its family
(``group.reliability_family``), and this class dispatches gap reports
(MCAST_NACK) and repair/regeneration work to the family's sender
engine while exposing the wire-level helpers (group acks, NACKs,
retransmission staging, record regeneration, packet injection) the
engines drive.  The receive-side hooks are dispatched by
:class:`~repro.mcast.forward.Forwarding`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.net.packet import GM_HEADER_BYTES, Packet, PacketType, make_packet
from repro.nic.descriptor import PacketDescriptor
from repro.nic.lanai import TX_PRIO_ACK, TX_PRIO_DATA
from repro.proto import NEVER, RetransmitTimer, SelectiveGoBackN, send_ack
from repro.proto.engines import get_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.tokens import SendToken
    from repro.mcast.engine import McastEngine
    from repro.mcast.group import GroupState
    from repro.proto.engines import ReceiverEngine, SenderEngine

__all__ = ["McastRecord", "McastReliability"]


@dataclass
class McastRecord:
    """Send record for one multicast packet at one NIC."""

    seq: int
    group_id: int
    msg_id: int
    chunk: int
    nchunks: int
    payload: int
    msg_size: int
    #: children that have not yet acknowledged this seq
    unacked: set[int] = field(default_factory=set)
    #: the root's send token (None at intermediate NICs — they use the
    #: transformed receive token tracked on the held message instead)
    token: "SendToken | None" = None
    sent_at: float = 0.0
    retransmits: int = 0
    #: absolute retransmission deadline, managed by the group's
    #: :class:`~repro.proto.timer.RetransmitTimer`.
    deadline: float = NEVER
    #: application payload info riding on chunk 0 (survives retransmits)
    app_info: dict | None = None
    #: flight-recorder trace id (-1 = untraced); carried from the root
    #: post through forwarding, retransmission, and recovery replay.
    trace_id: int = -1


class _McastSelectiveGoBackN(SelectiveGoBackN):
    """The paper's per-child Go-back-N, bound to one node's engine."""

    __slots__ = ("rel",)

    def __init__(self, rel: "McastReliability"):
        self.rel = rel

    @property
    def max_retransmits(self) -> int:
        return self.rel.cost.max_retransmits

    def count(self, record: McastRecord, *, child: int, group: "GroupState") -> None:
        self.rel.engine.retransmissions += 1
        m = self.rel.sim.metrics
        if m is not None:
            m.inc("mcast.laggard_resends")

    def unreachable(self, record: McastRecord, *, child: int, group: "GroupState") -> str:
        return (
            f"{self.rel.nic.name}: multicast packet seq={record.seq} "
            f"group={group.group_id} retransmitted "
            f"{record.retransmits} times to child {child} — "
            "peer unreachable"
        )

    def rearm(self, record: McastRecord, *, group: "GroupState") -> None:
        self.rel.arm(group, record)

    def resend(self, record: McastRecord, *, child: int, group: "GroupState") -> Generator:
        yield from self.rel.retransmit(group, record, child)


class McastReliability:
    """Ack handling and per-child Go-back-N for one node's groups.

    One of :class:`~repro.mcast.engine.McastEngine`'s three composed
    components; reaches back through ``engine`` for record-completion
    plumbing, packet construction, and statistics.
    """

    def __init__(self, engine: "McastEngine"):
        self.engine = engine
        self.nic = engine.nic
        self.sim = engine.sim
        self.cost = engine.cost
        self.table = engine.table
        self.policy = _McastSelectiveGoBackN(self)
        #: family name -> (sender, receiver) engine pair for this node.
        #: Engines are stateless per instance (per-group state lives in
        #: ``group.rel_state``), so one pair per family suffices.
        self._engines: dict[str, tuple["SenderEngine", "ReceiverEngine"]] = {}

    # -- engine dispatch ----------------------------------------------------
    def engine_pair(
        self, group: "GroupState"
    ) -> tuple["SenderEngine", "ReceiverEngine"]:
        """The (sender, receiver) engines driving *group*'s family."""
        pair = self._engines.get(group.reliability_family)
        if pair is None:
            family = get_engine(group.reliability_family)
            pair = (family.sender_cls(self), family.receiver_cls(self))
            self._engines[group.reliability_family] = pair
        return pair

    def sender_engine(self, group: "GroupState") -> "SenderEngine":
        return self.engine_pair(group)[0]

    def receiver_engine(self, group: "GroupState") -> "ReceiverEngine":
        return self.engine_pair(group)[1]

    # -- ACK reception ------------------------------------------------------
    def _handle_mcast_ack(self, pkt: Packet, _buf: Any) -> Generator:
        # nic.processing() inlined on the per-ack path (profile-hot).
        cpu = self.nic.cpu
        ev = cpu.use_fast(self.cost.nic_ack_processing)
        if ev is None:
            yield from cpu.use(self.cost.nic_ack_processing)
        else:
            yield ev
        h = pkt.header
        group = self.table.get(h.group)
        if group is None:
            return
        child = h.src
        if child not in group.child_acked:
            return  # not one of ours
        if h.ack_seq <= group.child_acked[child]:
            return  # stale
        self._apply_child_ack(group, child, h.ack_seq, pkt.uid)

    def _apply_child_ack(
        self, group: "GroupState", child: int, ack_seq: int, pkt_uid: int
    ) -> None:
        """Advance one child's cumulative ack and retire covered records.

        Shared by the MCAST_ACK handler and the ack piggybacked on every
        MCAST_NACK (for the NACK families, gap reports carry the
        reporter's contiguous prefix).
        """
        group.child_acked[child] = ack_seq
        m = self.sim.metrics
        fr = self.sim.flight
        for record in group.window.ack_from_child(child, ack_seq):
            if m is not None:
                m.observe("proto.ack_latency_us", self.sim.now - record.sent_at)
            if fr is not None and record.trace_id >= 0:
                fr.record(
                    self.sim.now, record.trace_id, "ack", self.nic.id,
                    pkt_uid, record.chunk, {"child": child},
                )
            self.engine._record_completed(group, record)
        if group.timer is not None:
            group.timer.defuse()

    # -- NACK reception -----------------------------------------------------
    def _handle_mcast_nack(self, pkt: Packet, _buf: Any) -> Generator:
        """A child reported gaps: apply its piggybacked cumulative ack,
        then hand the gap list to the group's sender engine."""
        cpu = self.nic.cpu
        ev = cpu.use_fast(self.cost.nic_ack_processing)
        if ev is None:
            yield from cpu.use(self.cost.nic_ack_processing)
        else:
            yield ev
        h = pkt.header
        group = self.table.get(h.group)
        if group is None:
            return
        child = h.src
        if child not in group.child_acked:
            return  # not one of ours
        if h.ack_seq > group.child_acked[child]:
            self._apply_child_ack(group, child, h.ack_seq, pkt.uid)
        yield from self.sender_engine(group).on_nack(group, pkt)

    def send_group_ack(self, group: "GroupState") -> Generator:
        """Acknowledge the group's current receive seq to the parent."""
        assert group.parent is not None
        yield from send_ack(
            self.nic, self.cost,
            ptype=PacketType.MCAST_ACK,
            dst=group.parent,
            port=group.port_num,
            from_port=group.port_num,
            ack_seq=group.recv_seq,
            group=group.group_id,
        )

    def send_nack(self, group: "GroupState", gaps: list[int]) -> Generator:
        """Report *gaps* to the parent (with the cumulative ack
        piggybacked in ``ack_seq``) at ack priority."""
        assert group.parent is not None
        nic, cost = self.nic, self.cost
        ev = nic.cpu.use_fast(cost.nic_ack_generation)
        if ev is None:
            yield from nic.cpu.use(cost.nic_ack_generation)
        else:
            yield ev
        pkt = make_packet(
            PacketType.MCAST_NACK, nic.id, group.parent, nic.id,
            port=group.port_num,
            from_port=group.port_num,
            ack_seq=group.recv_seq,
            group=group.group_id,
        )
        pkt.header.info["gaps"] = list(gaps)
        self.sim.record(
            nic.name, "mcast_nack", group=group.group_id, gaps=list(gaps),
        )
        nic.queue_tx(PacketDescriptor(pkt), TX_PRIO_ACK)

    def inject_data(self, pkt: Packet) -> Generator:
        """Feed a locally reconstructed data packet (FEC repair) back
        through the ordinary receive path — sequencing, acks, forwarding
        and host delivery behave exactly as for a wire arrival."""
        yield from self.engine.forwarding._handle_mcast_data(pkt, None)

    # -- timers -----------------------------------------------------------------
    def arm(self, group: "GroupState", record: McastRecord) -> None:
        """(Re)start *record*'s retransmission clock on its group's timer."""
        timer = group.timer
        if timer is None:
            timeout = self.sender_engine(group).fallback_timeout(
                group, self.cost
            )
            timer = group.timer = RetransmitTimer(
                self.sim,
                timeout,
                group.window,
                lambda record, group=group: self._expired(group, record),
            )
        timer.arm(record)

    def _expired(self, group: "GroupState", record: McastRecord) -> None:
        """The group's oldest unacked record timed out: start the
        selective Go-back-N sweep toward the laggard children."""
        m = self.sim.metrics
        if m is not None:
            m.inc("proto.retransmit_timeouts")
        self.sim.record(
            self.nic.name, "mcast_timeout", group=group.group_id,
            seq=record.seq, unacked=sorted(record.unacked),
        )
        self.sim.process(
            self.policy.sweep(group.window, record.seq, group=group),
            name=f"{self.nic.name}.mcast_gbn",
        )

    # -- regraft resync ----------------------------------------------------
    def resync_children(
        self, group: "GroupState", added: list[int]
    ) -> Generator:
        """Bring newly grafted children up to this node's sequence state.

        Every sequence this node has seen (root: allocated; member:
        received) that a new child has not acknowledged is replayed.
        Retired records are regenerated from ``msg_meta`` — payload
        bytes come back over DMA from the still-registered host
        replica.  Replays a regrafted child already received are
        dup-dropped and re-acked at the child (bounded duplicate wire
        traffic, zero duplicate host deliveries), which also converges
        the race where the child's ack beat this update.
        """
        hi = group.next_send_seq - 1 if group.is_root else group.recv_seq
        m = self.sim.metrics
        sender = self.sender_engine(group)
        for seq in range(1, hi + 1):
            # Through the engine interface: the family may regenerate a
            # retired record (or veto the replay) rather than this code
            # reaching into the SendWindow directly.
            record = sender.record_for_replay(group, seq)
            if record is None:
                continue
            for child in added:
                if group.child_acked.get(child, 0) >= seq:
                    continue
                record.unacked.add(child)
                self.arm(group, record)
                if m is not None:
                    m.inc("mcast.recovery.replays")
                yield from self.retransmit(
                    group, record, child, replay=True
                )

    def regenerate_record(
        self, group: "GroupState", seq: int
    ) -> McastRecord | None:
        """Rebuild a retired send record for *seq* from message metadata.

        ``token=None`` always — at the root the original multisend token
        has already accounted this packet, so a regenerated record must
        not touch token accounting when it completes again.
        """
        from repro.net.packet import split_message

        for msg_id, (base_seq, nchunks, msg_size, tid) in group.msg_meta.items():
            if base_seq <= seq < base_seq + nchunks:
                break
        else:
            return None
        chunk = seq - base_seq
        payload = split_message(msg_size, self.cost.mtu)[chunk]
        record = McastRecord(
            seq=seq,
            group_id=group.group_id,
            msg_id=msg_id,
            chunk=chunk,
            nchunks=nchunks,
            payload=payload,
            msg_size=msg_size,
            unacked=set(),
            token=None,
            trace_id=tid,
        )
        group.window.add(record)
        held = group.held.get(msg_id)
        if held is not None:
            # Keep the host pin alive until the regenerated obligation
            # is discharged too.
            held.pending_records += 1
        return record

    def retransmit(
        self, group: "GroupState", record: McastRecord, child: int,
        replay: bool = False,
    ) -> Generator:
        """Stage one retransmission to one child from host memory.

        Data is re-fetched from (still registered) host memory — the
        receive buffer was released when forwarding completed.
        *replay* marks recovery resyncs (regraft / explicit replay), so
        the flight recorder can attribute the wait to ``recovery_gap``
        rather than ``retransmit_wait``.
        """
        buf = yield self.nic.send_buffers.acquire()
        yield from self.nic.dma(record.payload + GM_HEADER_BYTES)
        yield from self.nic.processing(self.cost.nic_per_packet_send)
        record.sent_at = self.sim.now
        m = self.sim.metrics
        if m is not None:
            # Uniform across reliability families: every repair/replay
            # packet emission (timer resend, NACK repair, resync).
            m.inc("mcast.retransmit_packets")
        pkt = self.engine._build_mcast_packet(group, record, child)
        self.sim.record(
            self.nic.name, "mcast_retransmit", group=group.group_id,
            seq=record.seq, child=child, attempt=record.retransmits,
        )
        fr = self.sim.flight
        if fr is not None and record.trace_id >= 0:
            fr.record(
                self.sim.now, record.trace_id, "tx", self.nic.id,
                pkt.uid, record.chunk,
                {"attempt": record.retransmits, "dst": child,
                 "replay": replay},
            )
        desc = PacketDescriptor(pkt, buffer=buf)  # default free-on-transmit
        self.nic.queue_tx(desc, TX_PRIO_DATA)
