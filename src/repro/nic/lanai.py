"""The NIC core: processor, engines, queues, and dispatch.

Mirrors the structure of a GM Myrinet Control Program:

* a **host command loop** draining send events the host posted;
* a **receive loop** draining packets latched off the wire;
* a **transmit loop** feeding the wire, firing each packet descriptor's
  callback when the transmit DMA engine finishes;
* a single slow **processor** (capacity-1 resource) that every protocol
  action must hold, and a **PCI bus** (capacity-1 resource) that every
  host-memory DMA must hold.

Protocol logic (GM unicast, the paper's multicast, the baseline schemes)
registers *handlers*; the NIC core stays protocol-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.net.packet import Packet, PacketType
from repro.nic.descriptor import PacketDescriptor
from repro.nic.sram import BufferPool
from repro.sim.events import PENDING, SimEvent
from repro.sim.resources import EMPTY, PriorityStore, Resource, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.params import GMCostModel
    from repro.net.fabric import Network
    from repro.sim.engine import Simulator

__all__ = ["NIC", "HostCommand"]

#: Transmit-queue priorities: ACKs jump ahead of data so round trips stay
#: short even when the data queue is deep.
TX_PRIO_ACK = 0
TX_PRIO_DATA = 1
TX_PRIO_RETRANSMIT = 1  # retransmissions ride with data, FIFO


@dataclass
class HostCommand:
    """Base class for host-to-NIC commands (send events, group updates)."""

    port: int = 0
    context: dict[str, Any] = field(default_factory=dict)


class NIC:
    """One simulated LANai-class network interface card."""

    def __init__(
        self,
        sim: "Simulator",
        nic_id: int,
        cost: "GMCostModel",
        network: "Network",
    ):
        self.sim = sim
        self.id = nic_id
        self.cost = cost
        self.network = network
        self.name = f"nic[{nic_id}]"

        #: The LANai processor — all protocol processing serializes here.
        self.cpu = Resource(sim, 1, name=f"{self.name}.cpu")
        #: The PCI bus shared by host-DMA in both directions.
        self.pci = Resource(sim, 1, name=f"{self.name}.pci")
        #: The LANai's SRAM copy engine (separate from the processor):
        #: staging copies pipeline with protocol processing and the wire,
        #: so multi-packet forwarding streams while a single-packet
        #: message eats the full copy latency.
        self.copy_engine = Resource(sim, 1, name=f"{self.name}.copy")

        self.host_queue: Store = Store(sim, name=f"{self.name}.hostq")
        self.rx_queue: Store = Store(sim, name=f"{self.name}.rxq")
        self.tx_queue: PriorityStore = PriorityStore(sim, name=f"{self.name}.txq")

        self.send_buffers = BufferPool(
            sim, cost.nic_send_buffers, name=f"{self.name}.sendbuf"
        )
        self.recv_buffers = BufferPool(
            sim, cost.nic_recv_buffers, name=f"{self.name}.recvbuf"
        )

        #: ptype -> generator-returning handler(packet, buffer)
        self.packet_handlers: dict[
            PacketType, Callable[[Packet, Any], Generator]
        ] = {}
        #: command type -> generator-returning handler(command)
        self.command_handlers: dict[type, Callable[[Any], Generator]] = {}

        # statistics
        self.packets_sent = 0
        self.packets_received = 0
        self.rx_overruns = 0

        network.attach(nic_id, self._on_wire_packet)
        sim.process(self._command_loop(), name=f"{self.name}.cmd")
        sim.process(self._rx_loop(), name=f"{self.name}.rx")
        sim.process(self._tx_loop(), name=f"{self.name}.tx")

    # -- host side ---------------------------------------------------------
    def post_command(self, command: HostCommand) -> None:
        """Called by the host (which has already paid its PIO cost)."""
        self.host_queue.put(command)

    # -- wire side ---------------------------------------------------------
    def _on_wire_packet(self, packet: Packet) -> None:
        """Latch an arriving packet into SRAM, or drop it on overrun.

        ACKs are header-only and are absorbed into scratch space without
        consuming a receive buffer (as in GM, where small control packets
        are handled inline by the MCP).
        """
        if packet.header.ptype.is_data:
            buf = self.recv_buffers.try_acquire()
            m = self.sim.metrics
            if buf is None:
                self.rx_overruns += 1
                if m is not None:
                    m.inc("nic.rx_overruns")
                self.sim.record(
                    self.name,
                    "rx_overrun",
                    uid=packet.uid,
                    src=packet.src,
                    seq=packet.header.seq,
                )
                return
            if m is not None:
                m.set_gauge("nic.recv_buffers_in_use", self.recv_buffers.in_use)
            fr = self.sim.flight
            if fr is not None:
                fr.record(
                    self.sim.now, -1, "gauge", self.id, -1, 0,
                    {"name": "nic.recv_buffers_in_use",
                     "value": self.recv_buffers.in_use},
                )
            self.rx_queue.put((packet, buf))
        else:
            self.rx_queue.put((packet, None))

    # -- engine loops --------------------------------------------------------
    def _command_loop(self) -> Generator:
        host_queue = self.host_queue
        while True:
            command = host_queue.try_get()
            if command is EMPTY:
                command = yield host_queue.get()
            handler = self.command_handlers.get(type(command))
            if handler is None:
                raise LookupError(
                    f"{self.name}: no handler for {type(command).__name__}"
                )
            # Fetch/decode the host event — paid once per host request.
            yield from self.processing(self.cost.nic_command_fetch)
            yield from handler(command)

    def _rx_loop(self) -> Generator:
        # Deliberately NOT a try_get drain: a backlogged receive path must
        # keep yielding between packets so same-instant deliveries, ACK
        # timers, and LANai grants interleave in arrival order.  Draining
        # synchronously here reorders ties and shifts multicast latencies.
        sim = self.sim
        rx_queue = self.rx_queue
        get = rx_queue.get
        handlers = self.packet_handlers
        while True:
            packet, buf = yield get()
            self.packets_received += 1
            m = sim.metrics
            if m is not None:
                m.inc("nic.packets_received")
            handler = handlers.get(packet.header.ptype)
            if handler is None:
                if buf is not None:
                    buf.release()
                sim.record(
                    self.name,
                    "rx_unhandled",
                    ptype=packet.header.ptype.value,
                    uid=packet.uid,
                )
                continue
            yield from handler(packet, buf)

    def _tx_loop(self) -> Generator:
        sim = self.sim
        trace = sim.trace
        tx_queue = self.tx_queue
        try_get = tx_queue.try_get
        inject = self.network.inject
        nic_id = self.id
        while True:
            desc = try_get()
            if desc is EMPTY:
                desc = yield tx_queue.get()
            pkt = desc.packet
            if pkt.src != nic_id:
                raise RuntimeError(
                    f"{self.name} asked to transmit {pkt.describe()} "
                    f"with src {pkt.src}"
                )
            if trace.enabled:
                sim.record(
                    self.name, "tx_start", uid=pkt.uid, dst=pkt.dst,
                    seq=pkt.header.seq, ptype=pkt.header.ptype.value,
                )
            tx_started = sim._now
            # One completion event per transmitted packet: allocate via
            # __new__ (sim.event() + SimEvent.__init__ showed up in
            # serving-rate profiles).
            injected = SimEvent.__new__(SimEvent)
            injected.sim = sim
            injected.callbacks = []
            injected._value = PENDING
            injected._ok = None
            injected.name = None
            inject(pkt, on_injected=injected.succeed)
            yield injected  # transmit DMA engine drains the buffer
            self.packets_sent += 1
            m = sim.metrics
            if m is not None:
                m.inc("nic.packets_sent")
                m.observe("nic.tx_service_us", sim._now - tx_started)
                m.set_gauge(
                    "nic.send_buffers_in_use", self.send_buffers.in_use
                )
            fr = sim.flight
            if fr is not None:
                fr.record(
                    sim._now, -1, "gauge", nic_id, -1, 0,
                    {"name": "nic.send_buffers_in_use",
                     "value": self.send_buffers.in_use},
                )
            if trace.enabled:
                sim.record(
                    self.name, "tx_done", uid=pkt.uid, dst=pkt.dst,
                    seq=pkt.header.seq, ptype=pkt.header.ptype.value,
                )
            self._complete(desc)

    def _complete(self, desc: PacketDescriptor) -> None:
        """Fire the descriptor callback (in the background, so the next
        queued packet can start transmitting meanwhile, as the real send
        DMA engine would)."""
        callback = desc.on_transmit
        if callback is None:
            if desc.buffer is not None:
                desc.buffer.release()
            return
        result = callback(desc)
        if result is not None:
            # Anonymous: an f-string name per replica chain showed up in
            # serving-rate profiles (Process falls back to the generator's
            # __name__ for error messages).
            self.sim.process(result)

    # -- building blocks for protocol handlers --------------------------------
    def dma(self, nbytes: int, priority: int = 0) -> Generator:
        """One host→NIC DMA transaction (PCI read) on the shared bus."""
        duration = self.cost.dma_time(nbytes)
        ev = self.pci.use_fast(duration)
        if ev is None:
            yield from self.pci.use(duration, priority=priority)
        else:
            yield ev

    def dma_write(self, nbytes: int, priority: int = 0) -> Generator:
        """One NIC→host DMA transaction (PCI write) on the shared bus."""
        duration = self.cost.dma_write_time(nbytes)
        ev = self.pci.use_fast(duration)
        if ev is None:
            yield from self.pci.use(duration, priority=priority)
        else:
            yield ev

    def processing(self, cost: float, priority: int = 0) -> Generator:
        """Hold the LANai processor for *cost* µs (fast path when idle)."""
        ev = self.cpu.use_fast(cost)
        if ev is None:
            yield from self.cpu.use(cost, priority=priority)
        else:
            yield ev

    def sram_copy(self, nbytes: int) -> Generator:
        """Stage *nbytes* through SRAM on the copy engine."""
        duration = nbytes / self.cost.nic_sram_copy_bandwidth
        ev = self.copy_engine.use_fast(duration)
        if ev is None:
            yield from self.copy_engine.use(duration)
        else:
            yield ev

    def queue_tx(self, desc: PacketDescriptor, priority: int = TX_PRIO_DATA) -> None:
        self.tx_queue.put_priority(priority, desc)

    def __repr__(self) -> str:
        return f"<NIC {self.id}>"
