"""``python -m repro.obs``: protocol health reports + Chrome traces.

Runs any registered multicast scheme once under full observation and
prints a protocol-health report; optional flags write the
machine-readable report JSON and a Chrome trace-event timeline (open
it in https://ui.perfetto.dev) for the first scheme run.

Examples::

    python -m repro.obs                              # all schemes, report
    python -m repro.obs --scheme nic_based --nodes 8 \
        --chrome-trace out.json                      # Fig. 2, interactive
    python -m repro.obs --smoke                      # CI artifacts
    python -m repro.obs --validate out.json          # schema check only
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.mcast.schemes import available_schemes
from repro.net.fault import BernoulliLoss, LossModel, ScriptedLoss
from repro.net.packet import PacketType
from repro.obs.health import (
    build_health_report,
    render_health_report,
    run_observed,
)
from repro.obs.timeline import validate_chrome_trace, write_chrome_trace

SMOKE_TRACE = "obs_smoke_trace.json"
SMOKE_REPORT = "obs_smoke_report.json"


def _first_data_drop() -> ScriptedLoss:
    """Deterministically drop the first data packet of a run.

    One forced loss puts the retransmission timer, the resend, and the
    duplicate-filter paths on the wire, so the report's retransmit and
    drop sections carry real numbers even on a loss-free fabric.
    """
    return ScriptedLoss(
        lambda pkt: pkt.header.ptype in (PacketType.DATA, PacketType.MCAST_DATA)
        and pkt.header.seq == 1,
        times=1,
    )


def _loss_for(args: argparse.Namespace) -> LossModel | None:
    if args.loss is not None:
        return BernoulliLoss(args.loss, seed=args.seed)
    if args.drop_first:
        return _first_data_drop()
    return None


def _validate_file(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    errors = validate_chrome_trace(payload)
    if errors:
        for err in errors[:20]:
            print(f"INVALID {path}: {err}", file=sys.stderr)
        return 2
    n = len(payload["traceEvents"])
    print(f"OK {path}: {n} trace events")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scheme", action="append", choices=available_schemes(),
        help="scheme(s) to run (repeatable; default: all registered)",
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--size", type=int, default=4096,
                        help="message size in bytes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--loss", type=float, default=None, metavar="RATE",
        help="Bernoulli per-packet loss rate (overrides --drop-first)",
    )
    parser.add_argument(
        "--no-drop-first", dest="drop_first", action="store_false",
        help="don't force-drop the first data packet of each run",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH",
        help="write the first scheme's timeline as Chrome trace-event JSON",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the health report as JSON",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI mode: 4 nodes, 1 KiB, write {SMOKE_TRACE} + {SMOKE_REPORT}",
    )
    parser.add_argument(
        "--validate", metavar="PATH",
        help="validate an existing trace-event JSON file and exit",
    )
    args = parser.parse_args(argv)

    if args.validate:
        return _validate_file(args.validate)

    if args.smoke:
        args.nodes = 4
        args.size = 1024
        args.chrome_trace = args.chrome_trace or SMOKE_TRACE
        args.json = args.json or SMOKE_REPORT

    schemes = args.scheme or list(available_schemes())
    # The first run feeds the Chrome trace; prefer the paper's scheme so
    # the default export is the Fig. 2 NIC-based timeline.
    if "nic_based" in schemes:
        schemes = ["nic_based"] + [s for s in schemes if s != "nic_based"]

    runs = []
    for i, scheme in enumerate(schemes):
        want_trace = bool(args.chrome_trace) and i == 0
        runs.append(run_observed(
            scheme,
            nodes=args.nodes,
            size=args.size,
            seed=args.seed,
            loss=_loss_for(args),  # fresh model per run
            trace=want_trace,
        ))

    print(render_health_report(runs))

    if args.chrome_trace:
        payload = write_chrome_trace(args.chrome_trace, runs[0].tracer)
        print(f"\nwrote {args.chrome_trace} "
              f"({len(payload['traceEvents'])} trace events, "
              f"scheme {runs[0].scheme})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(build_health_report(runs), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
