"""Bench: resource-utilization evidence for the paper's mechanism.

Runs identical 8 KB multicasts under both schemes and reports where the
time went: host-based forwarding doubles up on PCI at every
intermediate; the NIC-based scheme trades that for LANai cycles and SRAM
copy-engine time.
"""

from repro.analysis import cluster_utilization, render_utilization
from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mcast import host_based_multicast, multicast
from repro.trees import build_tree


def _run(scheme, size=8192, n=16):
    cluster = Cluster(ClusterConfig(n_nodes=n))
    if scheme == "nb":
        tree = build_tree(0, range(1, n), shape="optimal",
                          cost=cluster.cost, size=size)
        multicast(cluster, tree, size)
    else:
        tree = build_tree(0, range(1, n), shape="binomial")
        host_based_multicast(cluster, tree, size)
    cluster.run()
    return cluster_utilization(cluster)


def test_where_the_time_goes(once):
    def both():
        return {"nb": _run("nb"), "hb": _run("hb")}

    reports = once(both)
    for scheme, report in reports.items():
        print(f"\n--- {scheme.upper()} multicast, 16 nodes, 8 KB ---")
        print(render_utilization(report))
    nb, hb = reports["nb"], reports["hb"]
    # The trade the paper describes, in numbers:
    assert hb.total_pci > 1.5 * nb.total_pci        # double PCI crossing
    assert nb.total_copy > 0 and hb.total_copy == 0  # SRAM staging
    assert nb.elapsed < hb.elapsed                   # and NB still wins
    # Wire bytes are identical-ish: both send ~15 replicas of the data.
    assert 0.8 < nb.wire_bytes_total / hb.wire_bytes_total < 1.25
