"""Recovery-latency benchmark: the self-healing schemes on a pinned
failure fixture.

Reuses Figure 8's fixture — a 64-node Clos, one 16 KiB broadcast over
the pinned binomial tree, three staggered interior-NIC-link outages
(:mod:`repro.experiments.fig8`) — and reports, per scheme, how long the
orphaned subtrees went undelivered: for every destination in a failed
node's subtree that had not yet been served when its link went down,
``recovery latency = host delivery time - link_down time``.  Mean and
95th percentile land in the ``resilience`` section of
``BENCH_kernel.json``.

Report-only: the simulator is deterministic, so these are simulated
microseconds, not wall-clock — they characterize the recovery designs
(CI gates them only through the fig8 delivery checks).
"""

from __future__ import annotations

from statistics import mean
from typing import Any

from repro.experiments import fig8
from repro.gm.params import GMCostModel
from repro.scenario import broadcast_point, run_spec
from repro.trees import build_tree

__all__ = ["bench_resilience"]


def _p95(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[int(0.95 * (len(ordered) - 1))]


def bench_resilience() -> dict[str, Any]:
    """Mean/95p recovery latency per scheme on the fig8 fixture."""
    tree = build_tree(0, list(range(1, fig8.NODES)), shape="binomial")
    n_failures = len(fig8.VICTIMS)
    down_at = {
        victim: fig8.DOWN_AT + fig8.STAGGER * k
        for k, victim in enumerate(fig8.VICTIMS)
    }
    report: dict[str, Any] = {
        "fixture": (
            f"{fig8.NODES}-node clos, {fig8.SIZE}B broadcast, binomial "
            f"tree, {n_failures} staggered interior link failures"
        ),
        "schemes": {},
    }
    members = list(range(1, fig8.NODES))
    for scheme in fig8.SCHEMES:
        spec = broadcast_point(
            fig8.NODES, fig8.SIZE, scheme,
            tree_shape="binomial",
            failures=fig8.failure_spec(n_failures, GMCostModel()),
        )
        point = run_spec(spec).value(fig8.SIZE)
        latencies: list[float] = []
        for victim, t_down in down_at.items():
            for node in tree.subtree_nodes(victim):
                delivered = point.deliveries.get(node)
                if delivered is not None and delivered > t_down:
                    latencies.append(delivered - t_down)
        report["schemes"][scheme] = {
            "delivered": len(point.deliveries),
            "expected": len(members),
            "completion_us": round(point.completion_us, 3),
            "affected_deliveries": len(latencies),
            "recovery_latency_mean_us": (
                round(mean(latencies), 3) if latencies else None
            ),
            "recovery_latency_p95_us": (
                round(_p95(latencies), 3) if latencies else None
            ),
        }
    return report
