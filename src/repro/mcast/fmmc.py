"""The FM/MC baseline: end-to-end credits with a central credit manager.

"FM/MC provides an end-to-end flow control with host-level credits.  A
centralized credit manager is used to recycle multicast credits, which
does not scale" (paper §2).

The model captures the scaling defect: every multicast sender must
obtain credits from one manager node over the real simulated network
(request/grant unicasts through GM), and credits recycle only after
receivers consume the data and their hosts return them to the manager.
Aggregate throughput therefore saturates at the manager's service rate,
however many senders there are — the bottleneck the paper's
decentralized ack scheme avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.errors import CreditError
from repro.gm.tokens import ReceiveToken

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import Cluster

__all__ = [
    "FMMCCreditManager",
    "control_port",
    "fmmc_sender_program",
    "fmmc_consumer_program",
]

#: GM port reserved for FM/MC credit-control traffic, so that grant
#: messages are not consumed by processes draining multicast data.
CONTROL_PORT = 1


def control_port(cluster: "Cluster", node_id: int):
    """The node's credit-control port (created and provisioned lazily)."""
    node = cluster.node(node_id)
    port = node.gm.ports.get(CONTROL_PORT)
    if port is None:
        port = node.open_port(CONTROL_PORT)
        for _ in range(cluster.config.prepost_recv_tokens):
            port._recv_tokens.append(ReceiveToken(CONTROL_PORT))
    return port


@dataclass
class FMMCCreditManager:
    """The centralized credit manager, living on one node's host.

    Credits are modelled as a counter guarded by the manager's host
    process; requests and returns are GM unicasts carrying ``info``
    commands.  ``service_time`` is the host cost to handle one request
    (bookkeeping + reply post), which bounds system-wide multicast
    throughput at ``credits_per_grant / service_time``.
    """

    cluster: "Cluster"
    node_id: int = 0
    total_credits: int = 32
    credits_per_grant: int = 4
    service_time: float = 2.0
    port_num: int = 0

    available: int = field(init=False)
    pending: list[int] = field(init=False, default_factory=list)
    grants: int = field(init=False, default=0)
    max_queue: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.credits_per_grant > self.total_credits:
            raise CreditError("grant size exceeds credit pool")
        self.available = self.total_credits

    def program(self, n_requests: int) -> Generator:
        """Manager host process: serve *n_requests* grant requests."""
        port = control_port(self.cluster, self.node_id)
        served = 0
        while served < n_requests:
            completion = yield from port.receive()
            command = completion.info.get("fmmc")
            if command == "return":
                self.available += completion.info["count"]
                continue
            assert command == "request", command
            requester = completion.src
            self.pending.append(requester)
            self.max_queue = max(self.max_queue, len(self.pending))
            # Serve strictly in order; wait for credits to be recycled.
            while self.pending:
                if self.available < self.credits_per_grant:
                    completion = yield from port.receive()
                    if completion.info.get("fmmc") == "return":
                        self.available += completion.info["count"]
                    else:
                        self.pending.append(completion.src)
                        self.max_queue = max(
                            self.max_queue, len(self.pending)
                        )
                    continue
                nxt = self.pending.pop(0)
                self.available -= self.credits_per_grant
                yield from self.cluster.node(self.node_id).host.compute(
                    self.service_time
                )
                handle = yield from port.send(
                    nxt, 16, dst_port=CONTROL_PORT,
                    info={"fmmc": "grant",
                          "count": self.credits_per_grant},
                )
                del handle
                self.grants += 1
                served += 1
                if served >= n_requests:
                    break
        # Drain outstanding credit returns so the pool is whole again.
        while self.available < self.total_credits:
            completion = yield from port.receive()
            assert completion.info.get("fmmc") == "return"
            self.available += completion.info["count"]


def fmmc_sender_program(
    manager: FMMCCreditManager,
    sender: int,
    group_id: int,
    size: int,
    rounds: int,
    sent_log: list[float],
) -> Generator:
    """A multicast root under FM/MC rules: request credits, then send.

    The actual data movement reuses the NIC-based multicast machinery —
    FM/MC forwarded on the NIC too; its defect is the credit plumbing.
    """
    from repro.mcast.manager import nic_based_multicast

    cluster = manager.cluster
    port = control_port(cluster, sender)
    for _ in range(rounds):
        handle = yield from port.send(
            manager.node_id, 16, dst_port=CONTROL_PORT,
            info={"fmmc": "request"},
        )
        del handle
        grant = yield from port.receive()
        if grant.info.get("fmmc") != "grant":
            raise CreditError(f"sender {sender} got {grant.info}")
        send_handle = yield from nic_based_multicast(
            cluster, group_id, size, sender
        )
        yield send_handle.done
        sent_log.append(cluster.sim.now)
        # Return the credits (receivers consumed the data; their returns
        # are aggregated through the root here for model simplicity).
        handle = yield from port.send(
            manager.node_id,
            16,
            dst_port=CONTROL_PORT,
            info={"fmmc": "return", "count": manager.credits_per_grant},
        )
        del handle


def fmmc_consumer_program(
    cluster: "Cluster", node_id: int, expected: int
) -> Generator:
    """A multicast destination: drain *expected* messages."""
    port = cluster.port(node_id)
    for _ in range(expected):
        yield from port.receive()
