"""Bench: Figure 7 — skew-tolerance improvement vs system size."""

from repro.experiments import fig7


def test_fig7_skew_scaling(once):
    result = once(lambda: fig7.run(quick=False, node_counts=(4, 8, 16)))
    print()
    print(result.render())

    for label in ("factor-4B", "factor-4096B"):
        series = result.get(label)
        ys = [series.y_at(x) for x in sorted(series.xs())]
        # Paper: "the improvement factor becomes greater as the system
        # size increases for a fixed amount of process skew".
        assert ys[-1] > ys[0], label
        assert all(y > 1.0 for y in ys), label
    # Small messages benefit more than 4 KB ones (paper: 5.82 vs 2.9).
    assert (
        result.get("factor-4B").y_at(16)
        > result.get("factor-4096B").y_at(16)
    )
