"""The reliability-engine registry, spec plumbing, and family behavior.

Covers the seams the ReliabilityEngine refactor introduced: the
registry contract, ReliabilitySpec validation/serialization, scheme
registry exposure, the GM unicast family gate, and exactly-once
delivery under loss for every family.
"""

import pytest

from repro.errors import ConfigError
from repro.proto.engines import (
    EngineFamily,
    available_engines,
    get_engine,
    unicast_engines,
)


# ---------------------------------------------------------------------------
# Registry contract
# ---------------------------------------------------------------------------

def test_shipped_families_registered():
    assert set(available_engines()) >= {"ack_window", "nack", "nack_fec"}


def test_only_ack_window_drives_unicast():
    assert unicast_engines() == ("ack_window",)


def test_unknown_family_fails_with_catalog():
    with pytest.raises(ValueError, match="ack_window"):
        get_engine("quantum_retry")


def test_duplicate_registration_rejected():
    from repro.proto.engines import register_engine

    family = get_engine("nack")
    with pytest.raises(ValueError, match="already registered"):
        register_engine(family)


def test_family_entries_are_frozen():
    family = get_engine("ack_window")
    with pytest.raises(AttributeError):
        family.name = "other"


def test_nack_fec_inherits_nack_defaults():
    nack, fec = get_engine("nack"), get_engine("nack_fec")
    for key, value in nack.defaults.items():
        assert fec.defaults[key] == value
    assert fec.defaults["fec_block"] >= 1
    assert isinstance(fec, EngineFamily)


# ---------------------------------------------------------------------------
# ReliabilitySpec validation and serialization
# ---------------------------------------------------------------------------

def test_reliability_spec_round_trip():
    from repro.scenario.spec import ReliabilitySpec

    spec = ReliabilitySpec(
        family="nack_fec", nack_delay_us=80.0, fec_block=8
    )
    assert ReliabilitySpec.from_dict(spec.to_dict()) == spec
    assert spec.params() == {"nack_delay_us": 80.0, "fec_block": 8}


def test_reliability_spec_rejects_unknown_family():
    from repro.scenario.spec import ReliabilitySpec

    with pytest.raises(ConfigError, match="unknown reliability family"):
        ReliabilitySpec(family="quantum_retry")


@pytest.mark.parametrize("knob,value", [
    ("nack_delay_us", -1.0),
    ("nack_jitter_us", -0.5),
    ("repair_suppression_us", -10.0),
    ("depth_scale_us", -1.0),
    ("fallback_timeout_scale", 0),
    ("fec_block", 0),
    ("fec_block", 2.5),
])
def test_reliability_spec_rejects_bad_knobs(knob, value):
    from repro.scenario.spec import ReliabilitySpec

    with pytest.raises(ConfigError):
        ReliabilitySpec(**{knob: value})


def test_scenario_spec_carries_reliability():
    from repro.scenario.spec import ScenarioSpec, broadcast_point

    spec = broadcast_point(8, 4096, "nic_based")
    from dataclasses import replace

    from repro.scenario.spec import ReliabilitySpec

    spec = replace(spec, reliability=ReliabilitySpec(family="nack"))
    again = ScenarioSpec.from_json(spec.to_json())
    assert again.reliability == spec.reliability


def test_reliability_rejected_on_unicast_workloads():
    from dataclasses import replace

    from repro.scenario.spec import ReliabilitySpec, unicast_point

    spec = unicast_point(size=4096)
    with pytest.raises(ConfigError):
        replace(spec, reliability=ReliabilitySpec(family="nack"))


# ---------------------------------------------------------------------------
# Scheme registry and GM gate
# ---------------------------------------------------------------------------

def test_scheme_registry_exposes_nack_variants():
    from repro.mcast.schemes import available_schemes, get_scheme

    schemes = available_schemes()
    assert "nic_nack" in schemes and "nic_nack_fec" in schemes
    assert get_scheme("nic_nack").cls.reliability_family == "nack"
    assert get_scheme("nic_nack_fec").cls.reliability_family == "nack_fec"


def test_gm_engine_rejects_multicast_only_family():
    from repro.cluster import Cluster
    from repro.config import ClusterConfig
    from repro.gm.protocol import GMEngine

    cluster = Cluster(ClusterConfig(n_nodes=2))
    nic = cluster.node(1).nic
    with pytest.raises(ConfigError, match="unicast"):
        GMEngine(nic, reliability="nack")


# ---------------------------------------------------------------------------
# Exactly-once delivery under loss, every family
# ---------------------------------------------------------------------------

def _lossy_broadcast(scheme, rate=0.03, seed=4, n=16):
    from repro.net.fault import LossSpec
    from repro.obs.registry import MetricsRegistry
    from repro.scenario.harness import run_spec
    from repro.scenario.spec import broadcast_point

    spec = broadcast_point(
        n, 16384, scheme, seed=seed, tree_shape="binomial",
        loss=LossSpec(
            kind="bernoulli", rate=rate, packet_types=("MCAST_DATA",)
        ),
        name=f"exactly-once[{scheme}]",
    )
    registry = MetricsRegistry()
    result = run_spec(spec, registry=registry)
    (point,) = result.values.values()
    return point, registry


@pytest.mark.parametrize("scheme", ["nic_based", "nic_nack", "nic_nack_fec"])
def test_exactly_once_under_loss(scheme):
    """3% data loss: every member delivers exactly once — the deliveries
    map is keyed per member, so duplicates cannot hide in a count."""
    point, registry = _lossy_broadcast(scheme)
    assert sorted(point.deliveries) == list(range(1, 16))
    assert registry.value("net.fault_drops", 0) >= 1, (
        "seed produced no drops; the exactly-once claim went untested"
    )


def test_spec_level_family_override():
    """A ReliabilitySpec on the scenario overrides the scheme default:
    nic_based + family=nack behaves as the NACK engine (no ACK-window
    timeouts; gaps recovered by repair)."""
    from dataclasses import replace

    from repro.net.fault import LossSpec
    from repro.obs.registry import MetricsRegistry
    from repro.scenario.harness import run_spec
    from repro.scenario.spec import ReliabilitySpec, broadcast_point

    spec = broadcast_point(
        16, 16384, "nic_based", seed=4, tree_shape="binomial",
        loss=LossSpec(
            kind="bernoulli", rate=0.03, packet_types=("MCAST_DATA",)
        ),
    )
    spec = replace(spec, reliability=ReliabilitySpec(family="nack"))
    registry = MetricsRegistry()
    result = run_spec(spec, registry=registry)
    (point,) = result.values.values()
    assert sorted(point.deliveries) == list(range(1, 16))
    assert registry.value("proto.nack_sent", 0) >= 1


def test_knob_override_reaches_engine():
    """Spec knobs must land in the group's engine params: an absurdly
    large nack delay turns the NACK family into pure fallback-timeout
    recovery (no NACK ever fires)."""
    from dataclasses import replace

    from repro.net.fault import LossSpec
    from repro.obs.registry import MetricsRegistry
    from repro.scenario.harness import run_spec
    from repro.scenario.spec import ReliabilitySpec, broadcast_point

    spec = broadcast_point(
        16, 16384, "nic_nack", seed=4, tree_shape="binomial",
        loss=LossSpec(
            kind="bernoulli", rate=0.03, packet_types=("MCAST_DATA",)
        ),
    )
    spec = replace(
        spec,
        reliability=ReliabilitySpec(nack_delay_us=1e6, nack_jitter_us=0.0),
    )
    registry = MetricsRegistry()
    result = run_spec(spec, registry=registry)
    (point,) = result.values.values()
    assert sorted(point.deliveries) == list(range(1, 16))
    assert registry.value("proto.nack_sent", 0) == 0
    assert registry.value("proto.retransmit_timeouts", 0) >= 1
