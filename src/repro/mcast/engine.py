"""The multicast engine: composition root for the NIC-based scheme.

One :class:`McastEngine` attaches to each node's NIC alongside the GM
engine and composes three explicit components — :class:`Multisend`
(root-side replica chains), :class:`Forwarding` (intermediate-node
forwarding), and :class:`McastReliability` (acks, timers, selective
Go-back-N on the :mod:`repro.proto` core) — registering each component's
handlers for the packets and host commands it owns.  The engine itself
keeps only what the components share: the group table, statistics,
packet construction, and completion plumbing.  The GM code paths are
untouched (the paper: "Our modification to GM was done by leaving the
code for other types of communications mostly unchanged").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.gm.tokens import SendToken
from repro.mcast.forward import Forwarding
from repro.mcast.group import (
    CreateGroupCommand,
    GroupState,
    GroupTable,
    McastSendCommand,
    ReplayCommand,
    UpdateGroupCommand,
    _HeldMessage,
)
from repro.mcast.multisend import Multisend
from repro.mcast.reliability import McastRecord, McastReliability
from repro.net.packet import Packet, PacketType, make_packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.node import Node

__all__ = ["McastEngine"]


class McastEngine:
    """NIC-resident multicast protocol for one node."""

    def __init__(self, node: "Node"):
        self.node = node
        self.nic = node.nic
        self.gm = node.gm
        self.memory = node.memory
        self.sim = node.sim
        self.cost = node.cost
        self.table = GroupTable()

        # statistics
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.out_of_order_dropped = 0
        self.no_token_dropped = 0
        self.unknown_group_dropped = 0
        self.messages_forwarded = 0

        # components (reliability before the paths that arm its timers)
        self.reliability = McastReliability(self)
        self.multisend = Multisend(self)
        self.forwarding = Forwarding(self)

        nic = self.nic
        nic.command_handlers[McastSendCommand] = (
            self.multisend._handle_mcast_send
        )
        nic.command_handlers[CreateGroupCommand] = self._handle_create_group
        nic.command_handlers[UpdateGroupCommand] = self._handle_update_group
        nic.command_handlers[ReplayCommand] = self._handle_replay
        nic.packet_handlers[PacketType.MCAST_DATA] = (
            self.forwarding._handle_mcast_data
        )
        nic.packet_handlers[PacketType.MCAST_ACK] = (
            self.reliability._handle_mcast_ack
        )
        nic.packet_handlers[PacketType.MCAST_NACK] = (
            self.reliability._handle_mcast_nack
        )
        nic.packet_handlers[PacketType.MCAST_FEC] = (
            self.forwarding._handle_mcast_fec
        )

    # -- group management -------------------------------------------------
    def _handle_create_group(self, cmd: CreateGroupCommand) -> Generator:
        yield from self.nic.processing(self.cost.nic_group_lookup)
        assert cmd.state is not None
        if cmd.replace and cmd.state.group_id in self.table:
            self.table.remove(cmd.state.group_id)
        self.table.install(cmd.state)
        self._observe_fanout(cmd.state)

    def _handle_update_group(self, cmd: UpdateGroupCommand) -> Generator:
        """Apply a tree repair to this node's group view, in place.

        Sequence state (``recv_seq``, ``next_send_seq``, per-child acks)
        survives; only the parent/children wiring changes.  Departed
        children stop being this node's responsibility (their records'
        pending-ack entries are discharged); arriving children are
        resynced from the retransmit window.
        """
        yield from self.nic.processing(self.cost.nic_group_lookup)
        group = self.table.get(cmd.group_id)
        if group is None:
            return
        old_parent = group.parent
        old_children = set(group.children)
        group.parent = cmd.parent
        group.children = tuple(cmd.children)
        if self.sim.trace.enabled:
            self.sim.record(
                self.nic.name, "group_update", group=group.group_id,
                parent=-1 if cmd.parent is None else cmd.parent,
                children=list(cmd.children),
            )
        removed = old_children - set(group.children)
        for child in sorted(removed):
            group.child_acked.pop(child, None)
            for record in group.window.remove_child(child):
                self._record_completed(group, record)
        added = [c for c in group.children if c not in old_children]
        for child in added:
            group.child_acked.setdefault(child, 0)
        if added:
            yield from self.reliability.resync_children(group, added)
        if group.parent is not None and group.parent != old_parent:
            # Tell the new parent how far this subtree already got, so
            # its resync replay stops as early as possible.
            yield from self.reliability.send_group_ack(group)

    def _handle_replay(self, cmd: ReplayCommand) -> Generator:
        """Push the outstanding backlog to one (recovered) child now,
        rather than waiting out the retransmission timer."""
        yield from self.nic.processing(self.cost.nic_group_lookup)
        group = self.table.get(cmd.group_id)
        if group is None or cmd.child not in group.child_acked:
            return
        m = self.sim.metrics
        for seq in group.window.seqs():
            record = group.window.get(seq)
            if record is None or cmd.child not in record.unacked:
                continue
            self.reliability.arm(group, record)
            if m is not None:
                m.inc("mcast.recovery.replays")
            yield from self.reliability.retransmit(
                group, record, cmd.child, replay=True
            )

    def install_group_now(self, state: GroupState) -> None:
        """Zero-cost install (experiment setup before time starts)."""
        self.table.install(state)
        self._observe_fanout(state)

    def _observe_fanout(self, state: GroupState) -> None:
        """Record this node's fan-out in the group's spanning tree."""
        m = self.sim.metrics
        if m is not None:
            m.observe(
                "mcast.group_fanout", len(state.children),
                (0, 1, 2, 4, 8, 16, 32, 64),
            )

    # -- host-facing send ----------------------------------------------------
    def multicast_send(
        self, port, group_id: int, size: int, caller=None, info=None
    ) -> Generator:
        """Root-side host call: post one multisend request.

        Usage from a host program: ``handle = yield from
        node.mcast.multicast_send(port, gid, nbytes)``.
        """
        from repro.errors import TokenExhausted
        from repro.gm.api import SendHandle

        port._check_owner(caller)
        if not port._free_send_tokens:
            raise TokenExhausted(
                f"port {self.nic.id}:{port.port_num} has no free send tokens"
            )
        token: SendToken = port._free_send_tokens.pop()
        token.arm(dst=-1, dst_port=port.port_num, size=size)
        if info is not None:
            token.context["info"] = info
        fr = self.sim.flight
        if fr is not None:
            tid = fr.begin(
                self.sim.now, self.nic.id, "mcast", size=size,
                group=group_id, msg_id=token.msg_id,
            )
            if tid >= 0:
                token.context["trace_id"] = tid
        handle = SendHandle(
            token=token, done=self.sim.event(), posted_at=self.sim.now
        )
        port._completions[token.token_id] = handle
        port.sends_posted += 1
        yield self.sim.timeout(self.cost.host_send_post)
        self.nic.post_command(
            McastSendCommand(port=port.port_num, token=token, group_id=group_id)
        )
        return handle

    # -- packet construction -----------------------------------------------------
    def _build_mcast_packet(
        self, group: GroupState, record: McastRecord, child: int
    ) -> Packet:
        # make_packet: one header per (packet, child) transmission makes
        # this a serving-rate hot site.
        pkt = make_packet(
            PacketType.MCAST_DATA, self.nic.id, child, group.root,
            group=group.group_id,
            port=group.port_num,
            from_port=group.port_num,
            seq=record.seq,
            msg_id=record.msg_id,
            chunk=record.chunk,
            nchunks=record.nchunks,
            payload=record.payload,
            msg_size=record.msg_size,
            trace_id=record.trace_id,
        )
        if record.chunk == 0 and record.app_info:
            pkt.header.info["app"] = record.app_info
        return pkt

    # -- completion plumbing ---------------------------------------------------------
    def _record_completed(self, group: GroupState, record: McastRecord) -> None:
        """All children acknowledged one packet."""
        if record.token is not None:
            # Root: account against the multisend token.
            token = record.token
            token.unacked_packets -= 1
            if token.complete:
                self._root_token_complete(group, token)
            return
        # Intermediate: account against the held message.
        held = group.held.get(record.msg_id)
        if held is None:
            return
        held.pending_records -= 1
        self._maybe_release_held(group, held)

    def _root_token_complete(self, group: GroupState, token: SendToken) -> None:
        port = self.gm.ports.get(token.port_num)
        if self.sim.trace.enabled:
            self.sim.record(
                self.nic.name, "mcast_send_complete", group=group.group_id,
                msg=token.msg_id,
            )
        if port is not None:
            port.complete_send(token)

    def _maybe_release_held(self, group: GroupState, held: _HeldMessage) -> None:
        """Release host pin + receive token once delivery AND forwarding
        obligations are both fully discharged."""
        done_forwarding = (
            held.all_records_created and held.pending_records == 0
        ) or not group.children
        if not (done_forwarding and held.delivered_to_host):
            return
        group.held.pop(held.msg_id, None)
        self.messages_forwarded += bool(group.children)
        if held.region is not None:
            held.region.unpin()
            self.memory.deregister(held.region)
        if held.token is not None:
            held.token.transformed = False
            port = self.gm.ports.get(group.port_num)
            if port is not None:
                port.return_recv_token(held.token)

    # -- introspection -------------------------------------------------------------------
    def pending_retransmit_state(self) -> dict[int, int]:
        """group_id -> number of unacked records (for tests/monitoring)."""
        return {
            gid: len(state.records)
            for gid, state in self.table._groups.items()
            if state.records
        }
