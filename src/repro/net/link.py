"""Unidirectional network links.

A link serializes packets at its bandwidth and adds a fixed propagation
latency.  Serialization occupies the link (FIFO contention); propagation
pipelines, so back-to-back packets overlap their flight times.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.events import SimEvent
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.net.packet import Packet

__all__ = ["Link"]


class Link:
    """One direction of a full-duplex Myrinet cable.

    Parameters
    ----------
    bandwidth:
        Bytes per microsecond (Myrinet-2000: 250 B/µs = 2 Gb/s).
    latency:
        Propagation + per-hop routing delay in µs for the packet head.
    """

    def __init__(
        self,
        sim: "Simulator",
        bandwidth: float,
        latency: float,
        name: str = "link",
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._channel = Resource(sim, capacity=1, name=f"{name}.channel")
        #: Cumulative bytes serialized (utilization accounting).
        self.bytes_carried = 0
        self.packets_carried = 0

    def serialization_time(self, packet: "Packet") -> float:
        return packet.wire_size / self.bandwidth

    @property
    def busy(self) -> bool:
        return self._channel.in_use > 0

    @property
    def queue_length(self) -> int:
        return self._channel.queue_length

    def claim_head(self) -> SimEvent:
        """Request the channel for a packet head (cut-through traversal).

        The caller must follow up with :meth:`hold_for` (which schedules the
        release) once the head has crossed; see ``fabric.Network._traverse``.
        """
        return self._channel.request()

    def hold_for(self, claim: SimEvent, duration: float) -> None:
        """Keep the channel occupied for *duration* µs, then release.

        Scheduled in the background so the packet head can progress to the
        next hop while the tail is still streaming through this link.  This
        runs once per packet per hop, so it uses a single scheduled
        callback rather than spawning a release process (which would cost a
        boot event, a timeout event, and generator machinery per hop).
        """
        channel = self._channel
        self.sim.call_at(
            self.sim.now + duration,
            lambda: channel.release(claim),  # type: ignore[arg-type]
        )

    def account(self, packet: "Packet") -> None:
        self.bytes_carried += packet.wire_size
        self.packets_carried += 1

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.bandwidth}B/us lat={self.latency}us>"
