"""Smoke tests for the perf counters and the benchmark harness."""

import json

from repro.perf import KERNEL_COUNTERS
from repro.perf.bench_kernel import bench_event_loop, main
from repro.sim import Simulator


def test_kernel_counters_track_engine():
    KERNEL_COUNTERS.reset()
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    snap = KERNEL_COUNTERS.snapshot()
    assert snap["simulators"] >= 1
    assert snap["events"] >= 2


def test_bench_event_loop_reports_rate():
    report = bench_event_loop(2_000)
    assert report["events"] >= 2_000
    assert report["events_per_sec"] > 0
    assert report["wall_s"] > 0
    # Median rides alongside best-of-N; the CI gate compares medians.
    assert 0 < report["median_events_per_sec"] <= max(report["repeat_rates"])
    assert report["median_events_per_sec"] in report["repeat_rates"] or \
        len(report["repeat_rates"]) % 2 == 0


def test_smoke_benchmark_writes_valid_json(tmp_path, capsys):
    out = tmp_path / "BENCH_kernel.json"
    assert main(["--smoke", "-o", str(out)]) == 0
    capsys.readouterr()  # swallow the printed report
    report = json.loads(out.read_text())
    assert report["benchmark"] == "repro.perf.bench_kernel"
    assert report["cpu_count"] >= 1
    assert report["kernel"]["events_per_sec"] > 0
    assert report["kernel"]["median_events_per_sec"] > 0
    serving = report["serving"]
    assert serving["events"] > 0
    assert serving["median_events_per_sec"] > 0
    assert serving["msgs_delivered"] > 0
    assert serving["before"]["events_per_sec"] > 0
    # The smoke spec is shorter than the committed baseline workload, so
    # no cross-machine "speedup" may be reported for it.
    assert "speedup_vs_pre_kernel_v3" not in serving
    for entry in report["figures"].values():
        assert entry["serial_wall_s"] > 0
        assert entry["parallel_wall_s"] > 0
        assert entry["events_per_sec"] > 0
        assert entry["outputs_identical"] is True
        assert entry["cpu_count"] >= 1
        if entry["cpu_count"] == 1:
            # One core: the serial-vs-pool wall comparison is noise and
            # must be flagged rather than reported as a speedup.
            assert entry["speedup"] is None
            assert entry["parallel_comparison"] == "skipped-1cpu"
        else:
            assert "parallel_comparison" not in entry
    assert report["totals"]["all_outputs_identical"] is True


def test_timer_churn_reports_before_and_after():
    from repro.perf.bench_kernel import bench_timer_churn

    report = bench_timer_churn()
    # The protocol issues exactly as many (re)arm requests as the old
    # per-record scheme pushed heap callbacks — behaviour preserved...
    assert report["after"]["arm_requests"] == report["before"]["heap_callbacks"]
    # ...while the per-window timer collapses the heap traffic.
    assert report["after"]["heap_callbacks"] < report["before"]["heap_callbacks"]
    assert report["after"]["stale_fires"] < report["before"]["stale_fires"]
    assert report["after"]["fires"] >= 1  # the forced retransmission fired
    assert report["heap_callbacks_avoided"] > 0


def test_bench_serving_is_deterministic_and_carries_baseline():
    from repro.perf.bench_serving import PRE_KERNEL_V3_SERVING, bench_serving

    report = bench_serving(repeats=2, smoke=True)
    assert report["events"] > 0
    assert report["median_events_per_sec"] > 0
    assert report["msgs_posted"] > 0
    assert report["msgs_delivered"] > 0
    assert report["p99_delivery_us"] > 0
    assert report["before"] == PRE_KERNEL_V3_SERVING
    assert "speedup_vs_pre_kernel_v3" not in report
