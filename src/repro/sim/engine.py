"""The simulation engine: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator

from repro.perf.counters import KERNEL_COUNTERS
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

__all__ = ["Simulator", "URGENT", "NORMAL"]

#: Priority for internal immediate resumptions (processed before NORMAL
#: events scheduled at the same instant).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a ``float`` in *microseconds* throughout this project (all cost
    models are expressed in µs and bytes/µs).

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :meth:`rng`).
    trace:
        If true, record :class:`~repro.sim.trace.TraceRecord` entries for
        component events (components call :meth:`record`).
    """

    def __init__(self, seed: int = 0, trace: bool = False):
        self._heap: list[tuple[float, int, int, SimEvent]] = []
        self._now: float = 0.0
        self._seq = count()
        self._rngs = RngRegistry(seed)
        self.seed = seed
        self.trace = Tracer(enabled=trace)
        #: Events processed by :meth:`step` over this simulator's lifetime.
        self.events_processed = 0
        KERNEL_COUNTERS.simulators += 1

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.3f}us queued={len(self._heap)}>"

    # -- event factories ---------------------------------------------------
    def event(self, name: str | None = None) -> SimEvent:
        """Create a fresh, untriggered event."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` µs from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[SimEvent, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start driving *generator* as a simulation process."""
        return Process(self, generator, name=name)

    def any_of(self, events: list[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: list[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def rng(self, name: str):
        """A named, deterministic ``random.Random`` stream."""
        return self._rngs.get(name)

    def record(self, component: str, category: str, **fields: Any) -> None:
        """Append a trace record at the current time (no-op if disabled)."""
        if self.trace.enabled:
            self.trace.record(self._now, component, category, fields)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float, priority: int) -> None:
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event)
        )

    def call_at(
        self, when: float, fn: Callable[[], None], *, priority: int = NORMAL
    ) -> SimEvent:
        """Run ``fn()`` at absolute time *when* (>= now)."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        # A pre-triggered bare event pushed straight onto the heap at the
        # absolute time: no Timeout wrapper, no relative-delay round trip,
        # and the caller's priority is honoured.
        ev = SimEvent(self)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev: fn())  # type: ignore[union-attr]
        heapq.heappush(self._heap, (when, priority, next(self._seq), ev))
        return ev

    # -- run loop ----------------------------------------------------------
    def step(self) -> None:
        """Process one event from the queue."""
        if not self._heap:
            raise EmptySchedule
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        KERNEL_COUNTERS.events += 1
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for cb in callbacks:
            cb(event)

    def run(self, until: float | SimEvent | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a ``float`` — run until simulated time reaches that instant;
        * a :class:`SimEvent` — run until that event is processed, and
          return its value (raising its exception if it failed).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, SimEvent):
            stop = until
            if stop.processed:
                if not stop.ok:
                    raise stop.value
                return stop.value
            flag: list[bool] = []
            stop.add_callback(lambda _ev: flag.append(True))
            while not flag:
                if not self._heap:
                    raise RuntimeError(
                        f"simulation ran out of events before {stop!r} triggered"
                    )
                self.step()
            if not stop.ok:
                raise stop.value
            return stop.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"run(until={horizon}) is in the past")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)
        return None
