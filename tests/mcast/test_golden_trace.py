"""Golden-trace identity for the kernel's event schedule.

The v2 kernel (raw-callback timers, `use_fast`/`claim_fast`/`try_get`
fast paths, fused run loop) must not move a single event relative to the
v1 schedule.  This test pins the *complete* trace of an 8-node NIC-based
multicast — with a forced data-packet drop so the retransmission timer,
Go-back-N resend, and duplicate-ACK paths are all on the wire — as a
committed fixture and compares record for record.

A divergence here means a scheduling tie was broken differently (a
fast path assigned a heap sequence number at a different moment), which
is exactly the class of bug the fast paths must not introduce.

Regenerate the fixture (only after deliberately changing the model, and
after verifying the figure tables against a pre-change run)::

    PYTHONPATH=src python tests/mcast/test_golden_trace.py
"""

from pathlib import Path

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast.manager import install_group
from repro.net.fault import ScriptedLoss
from repro.net.packet import PacketType
from repro.trees import build_tree

FIXTURE = Path(__file__).with_name("golden_8node_trace.txt")


def golden_lines(n=8, size=4096, seed=0, flight=None):
    """Full trace of a retransmitting 8-node multicast, one line per record.

    Packet uids and message ids come from process-global allocators, so
    their absolute values depend on which tests ran earlier in the
    process; renumber both by first appearance so the fixture pins the
    *sequence*, not the allocator state.

    ``flight`` optionally attaches a flight recorder to the run's
    simulator — the observability tests re-run the fixture with one
    attached to pin that hop recording never moves an event.
    """
    cost = GMCostModel()
    loss = ScriptedLoss(
        lambda pkt: pkt.header.ptype is PacketType.MCAST_DATA
        and pkt.header.seq == 1,
        times=1,
    )
    cluster = Cluster(
        ClusterConfig(n_nodes=n, cost=cost, seed=seed, trace=True), loss=loss
    )
    if flight is not None:
        cluster.sim.flight = flight
    dests = list(range(1, n))
    tree = build_tree(0, dests, shape="optimal", cost=cost, size=size)
    install_group(cluster, 1, tree)

    def root():
        handle = yield from cluster.node(0).mcast.multicast_send(
            cluster.port(0), 1, size
        )
        yield handle.done

    def member(i):
        port = cluster.port(i)
        yield from port.receive()
        yield from port.provide_receive_buffer()

    procs = [cluster.spawn(root())]
    procs += [cluster.spawn(member(i)) for i in dests]
    cluster.run(until=cluster.sim.all_of(procs))

    assert loss.dropped == 1, f"expected exactly one forced drop, got {loss.dropped}"
    assert any(
        r.category == "mcast_retransmit" for r in cluster.sim.trace
    ), "golden run must exercise the retransmission path"

    renumber = {"uid": {}, "msg": {}}
    lines = []
    for rec in cluster.sim.trace:
        fields = dict(rec.fields)
        for key, seen in renumber.items():
            if key in fields:
                fields[key] = seen.setdefault(fields[key], len(seen))
        rendered = ",".join(f"{k}={fields[k]!r}" for k in sorted(fields))
        lines.append(f"{rec.time:.6f} {rec.component} {rec.category} {rendered}")
    return lines


def test_golden_trace_identical_to_fixture():
    expected = FIXTURE.read_text().splitlines()
    actual = golden_lines()
    # Compare pairwise first so a failure points at the first divergent
    # record instead of dumping two 50-line blobs.
    for i, (want, got) in enumerate(zip(expected, actual)):
        assert want == got, f"trace diverges at record {i}:\n-{want}\n+{got}"
    assert len(actual) == len(expected), (
        f"trace length changed: fixture {len(expected)}, run {len(actual)}"
    )


if __name__ == "__main__":  # fixture regeneration entry point
    lines = golden_lines()
    FIXTURE.write_text("\n".join(lines) + "\n")
    print(f"wrote {FIXTURE} ({len(lines)} records)")
