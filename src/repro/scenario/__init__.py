"""Declarative, serializable experiment scenarios.

One :class:`~repro.scenario.spec.ScenarioSpec` names everything a
measurement needs — the cluster (size, topology, cost model, loss), the
workload (scheme, tree shape, group, skew), and the measurement policy
(sizes, iterations, warmup) — as a frozen, JSON-round-trippable value.
:class:`~repro.scenario.harness.Harness` executes a spec (cluster
lifecycle, scheme binding, the shared root/member/receiver program
templates, round-barrier delivery tracking);
:class:`~repro.scenario.grid.ScenarioGrid` assembles specs into sweeps
whose cells ship to pool workers as serialized specs.

Layering: ``repro.scenario`` sits above the protocol engines and below
``repro.experiments`` — the figure harnesses *declare* grids of specs
here; nothing in this package may import ``repro.experiments`` (or
``repro.obs``: a metrics registry attaches through the duck-typed
``sim.metrics`` slot).  ``tools/check_layering.py`` enforces both edges.
"""

from repro.scenario.grid import GridCell, ScenarioGrid
from repro.scenario.harness import (
    BroadcastResult,
    Harness,
    MulticastMeasurement,
    ScenarioResult,
    measured_ack_trip,
    register_workload_runner,
    run_cell,
    run_spec,
)
from repro.scenario.spec import (
    MPI_SIZES,
    PAPER_SIZES,
    QUICK_MAX_SKEWS,
    QUICK_SIZES,
    MeasurementSpec,
    ScenarioSpec,
    TrafficSpec,
    WorkloadSpec,
    broadcast_point,
    mpi_bcast_point,
    multicast_point,
    multisend_point,
    serving_point,
    skew_point,
    unicast_point,
)

__all__ = [
    "BroadcastResult",
    "GridCell",
    "Harness",
    "MPI_SIZES",
    "MeasurementSpec",
    "MulticastMeasurement",
    "PAPER_SIZES",
    "QUICK_MAX_SKEWS",
    "QUICK_SIZES",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "TrafficSpec",
    "WorkloadSpec",
    "broadcast_point",
    "measured_ack_trip",
    "mpi_bcast_point",
    "multicast_point",
    "multisend_point",
    "register_workload_runner",
    "run_cell",
    "run_spec",
    "serving_point",
    "skew_point",
    "unicast_point",
]
