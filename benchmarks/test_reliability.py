"""Bench: §7 claim — reliability without a centralized manager.

Measures multicast latency degradation under increasing packet loss:
delivery must stay correct at every rate, latency must degrade
gracefully, and retransmissions must target only laggards.
"""

from statistics import mean

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mcast.manager import install_group, next_group_id, nic_based_multicast
from repro.net import BernoulliLoss
from repro.trees import build_tree


def lossy_multicast_run(rate, n=8, size=1024, rounds=15, seed=11):
    cluster = Cluster(
        ClusterConfig(n_nodes=n, seed=seed),
        loss=BernoulliLoss(rate) if rate else None,
    )
    tree = build_tree(0, range(1, n), shape="optimal",
                      cost=cluster.cost, size=size)
    gid = next_group_id()
    install_group(cluster, gid, tree)
    durations = []
    deliveries = {i: 0 for i in range(1, n)}

    def root():
        for _ in range(rounds):
            start = cluster.now
            handle = yield from nic_based_multicast(cluster, gid, size, 0)
            yield handle.done
            durations.append(cluster.now - start)

    def rx(i):
        port = cluster.port(i)
        for _ in range(rounds):
            yield from port.receive()
            deliveries[i] += 1
            yield from port.provide_receive_buffer()

    procs = [cluster.spawn(root())] + [
        cluster.spawn(rx(i)) for i in range(1, n)
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    cluster.run()
    retrans = sum(node.mcast.retransmissions for node in cluster.nodes)
    return {
        "latency": mean(durations),
        "deliveries": deliveries,
        "retransmissions": retrans,
        "drops": cluster.network.dropped,
    }


def test_multicast_under_loss(once):
    rates = (0.0, 0.02, 0.05, 0.10)

    def sweep():
        return {rate: lossy_multicast_run(rate) for rate in rates}

    results = once(sweep)
    print()
    print(f"{'loss rate':>10} {'latency us':>11} {'drops':>6} {'retrans':>8}")
    for rate, res in results.items():
        print(f"{rate:>10.2f} {res['latency']:>11.1f} "
              f"{res['drops']:>6} {res['retransmissions']:>8}")
        # Exactly-once delivery at every rate.
        assert all(c == 15 for c in res["deliveries"].values()), rate

    # Loss-free run: zero retransmissions (timers never fire).
    assert results[0.0]["retransmissions"] == 0
    # Latency degrades monotonically-ish but stays bounded: even at 10%
    # loss the mean stays within ~8x of the loss-free mean (timeouts
    # are 400us against a ~40us loss-free multicast).
    assert results[0.10]["latency"] < 8 * results[0.0]["latency"]
    # Retransmissions scale with drops, not with fan-out: no storms.
    lossy = results[0.10]
    assert lossy["retransmissions"] < 25 * lossy["drops"]
