"""Parallel execution of figure sweeps.

Every figure sweep is a grid of independent simulation points: each cell
builds its own :class:`~repro.cluster.Cluster` from ``(figure, sizes,
n_nodes, seed)`` and shares no state with its neighbours.  That makes the
sweep embarrassingly parallel, so :class:`SweepExecutor` fans cells across
a ``ProcessPoolExecutor`` while keeping the *results* in deterministic
submission order — the assembled tables are byte-identical to a serial
run.

Cells must be picklable: a module-level callable plus plain-data
arguments.  ``jobs=1`` (the default for library callers) runs everything
in-process with zero multiprocessing overhead; any failure to stand up a
worker pool (restricted sandboxes without ``/dev/shm``, missing ``fork``)
degrades to the same in-process path rather than erroring.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "SweepCell",
    "CellResult",
    "SweepExecutor",
    "default_jobs",
    "run_cells",
    "run_grid",
]


def default_jobs() -> int:
    """The CLI default: one worker per CPU."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class SweepCell:
    """One self-contained simulation point of a figure sweep.

    ``fn(*args, **kwargs)`` must be a module-level callable that builds
    everything it needs (cluster, trees, seeds) from its arguments.
    """

    figure: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    label: str = ""

    def run(self) -> "CellResult":
        started = time.perf_counter()
        value = self.fn(*self.args, **self.kwargs)
        return CellResult(
            figure=self.figure,
            label=self.label,
            value=value,
            wall_time=time.perf_counter() - started,
        )


@dataclass
class CellResult:
    """A cell's return value plus its wall-clock cost."""

    figure: str
    label: str
    value: Any
    wall_time: float


def _run_cell(cell: SweepCell) -> CellResult:
    """Module-level trampoline so cells pickle into worker processes."""
    return cell.run()


class SweepExecutor:
    """Runs sweep cells, serially or across a process pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None`` means :func:`default_jobs`;
        ``1`` runs in-process (no pool, no pickling).

    After :meth:`run`, ``timings`` holds each cell's ``(label,
    wall_time)`` in submission order — the per-cell timing feed for
    ``repro.perf``.
    """

    def __init__(self, jobs: int | None = None):
        resolved = default_jobs() if jobs is None else int(jobs)
        if resolved < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = resolved
        self.timings: list[tuple[str, float]] = []

    def run(self, cells: Iterable[SweepCell]) -> list[Any]:
        """Execute *cells*, returning their values in submission order."""
        ordered = list(cells)
        if self.jobs == 1 or len(ordered) <= 1:
            results = [_run_cell(cell) for cell in ordered]
        else:
            results = self._run_pool(ordered)
        self.timings = [(r.label or r.figure, r.wall_time) for r in results]
        return [r.value for r in results]

    def _run_pool(self, ordered: Sequence[SweepCell]) -> list[CellResult]:
        workers = min(self.jobs, len(ordered))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError, RuntimeError):
            # No usable multiprocessing primitives here (restricted
            # sandboxes without /dev/shm, missing fork) — the sweep still
            # has to produce numbers.
            return [_run_cell(cell) for cell in ordered]
        with pool:
            try:
                futures = [pool.submit(_run_cell, cell) for cell in ordered]
                # Collect in submission order: determinism over
                # completion-order throughput tricks.
                return [future.result() for future in futures]
            except (BrokenProcessPool, pickle.PicklingError):
                # Workers died under us or a cell would not pickle across
                # the process boundary.  Only those infrastructure
                # failures degrade to in-process execution; an exception
                # raised *by a cell* comes out of ``future.result()`` with
                # its original type and propagates to the caller — a
                # failing simulation point must fail the sweep, not
                # silently re-run.
                return [_run_cell(cell) for cell in ordered]


def run_cells(
    cells: Iterable[SweepCell], jobs: int | None = 1
) -> list[Any]:
    """One-shot convenience wrapper used by the figure modules."""
    return SweepExecutor(jobs=jobs).run(cells)


def run_grid(grid: Any, jobs: int | None = 1) -> dict[Any, Any]:
    """Execute a :class:`~repro.scenario.grid.ScenarioGrid`.

    Each cell's spec travels to its worker as JSON (strings pickle
    trivially) and is rebuilt there by
    :func:`repro.scenario.harness.run_cell`.  Returns ``{key: value}``
    in declaration order; single-size specs yield the bare point value,
    multi-size specs a ``{size: value}`` dict.
    """
    from repro.scenario.harness import run_cell

    cells = [
        SweepCell(
            figure=grid.figure,
            fn=run_cell,
            args=(cell.spec.to_json(),),
            label=cell.label,
        )
        for cell in grid.cells
    ]
    values = run_cells(cells, jobs=jobs)
    out: dict[Any, Any] = {}
    for cell, by_size in zip(grid.cells, values):
        sizes = cell.spec.measurement.sizes
        out[cell.key] = by_size[sizes[0]] if len(sizes) == 1 else by_size
    return out
