"""Figure 1: the feature-axes comparison, with live probes.

The static half is the feature matrix (``repro.mcast.features``); the
dynamic half *demonstrates* three of the claims on the simulated stack:
protection is enforced, LFC's credits can deadlock while ID-ordered
trees cannot, and FM/MC's central manager throttles concurrent roots.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import DeadlockDetected, ProtectionError
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.mcast.features import SCHEMES, feature_table
from repro.mcast.fmmc import (
    FMMCCreditManager,
    fmmc_consumer_program,
    fmmc_sender_program,
)
from repro.mcast.lfc import run_lfc_multicasts
from repro.mcast.manager import install_group
from repro.sim import Simulator
from repro.trees import SpanningTree, build_tree

__all__ = ["run"]


def _probe_protection() -> bool:
    cluster = Cluster(ClusterConfig(n_nodes=2))
    try:
        next(cluster.port(0).send(1, 8, caller=object()))
    except ProtectionError:
        return True
    return False


def _probe_lfc_deadlock() -> bool:
    sim = Simulator()
    t1 = SpanningTree(root=0, children={0: (1,), 1: (2,)})
    t2 = SpanningTree(root=3, children={3: (2,), 2: (1,)})
    try:
        run_lfc_multicasts(sim, 4, [t1, t2], n_buffers=1)
    except DeadlockDetected:
        return True
    return False


def _probe_id_ordering_immunity() -> bool:
    sim = Simulator()
    trees = [
        build_tree(root, [n for n in range(5) if n != root], shape="chain")
        for root in range(3)
    ]
    try:
        run_lfc_multicasts(sim, 5, trees, n_buffers=2)
    except DeadlockDetected:
        return False
    return True


def _probe_fmmc_bottleneck() -> tuple[float, float]:
    """Completion time with 1 vs 4 concurrent FM/MC roots."""

    def one(n_senders: int) -> float:
        n = 8
        cluster = Cluster(ClusterConfig(n_nodes=n))
        manager = FMMCCreditManager(
            cluster, node_id=0, total_credits=4, credits_per_grant=4
        )
        rounds = 3
        procs = []
        for idx, sender in enumerate(range(1, 1 + n_senders)):
            gid = 900 + idx
            dests = [d for d in range(1, n) if d != sender]
            install_group(cluster, gid, build_tree(sender, dests, shape="flat"))
            log: list[float] = []
            procs.append(
                cluster.spawn(
                    fmmc_sender_program(manager, sender, gid, 64, rounds, log)
                )
            )
            for d in dests:
                procs.append(
                    cluster.spawn(fmmc_consumer_program(cluster, d, rounds))
                )
        procs.append(cluster.spawn(manager.program(n_senders * rounds)))
        cluster.run(until=cluster.sim.all_of(procs))
        return cluster.now

    return one(1), one(4)


def run(quick: bool = False, cost: GMCostModel | None = None) -> FigureResult:
    del quick, cost  # probes are already cheap
    result = FigureResult(
        figure_id="fig1",
        title="Feature-axes comparison of multicast schemes",
    )
    result.extra["table"] = feature_table()

    probes = Series(label="probe (1=claim holds)")
    probes.add(1, float(_probe_protection()))
    probes.add(2, float(_probe_lfc_deadlock()))
    probes.add(3, float(_probe_id_ordering_immunity()))
    t1, t4 = _probe_fmmc_bottleneck()
    probes.add(4, float(t4 > 2.0 * t1))
    result.series.append(probes)
    result.notes.append(
        "probes: 1=GM port protection enforced, 2=LFC credits deadlock on "
        "cyclic trees, 3=ID-ordered trees immune even under LFC, "
        "4=FM/MC central manager throttles concurrent roots "
        f"(1 root: {t1:.0f}us, 4 roots: {t4:.0f}us)"
    )
    result.headlines["probes passing (of 4)"] = sum(probes.ys())
    assert set(SCHEMES) == {"ours", "lfc", "fmmc", "nic_assisted"}
    return result
