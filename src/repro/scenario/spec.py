"""Scenario specifications: frozen, JSON-serializable experiment points.

A :class:`ScenarioSpec` is the declarative form of one measurement the
paper's evaluation grid contains — and of any workload beyond it
(different schemes, tree shapes, group subsets, loss models, skew).  It
bundles three parts:

* ``cluster`` — a :class:`~repro.config.ClusterConfig`, including the
  declarative loss spec (so Fig. 7-style loss sweeps serialize);
* ``workload`` — what the nodes run: a scheme key from the multicast
  registry (or the MPI-level NIC/host choice), tree shape, group
  membership, process skew;
* ``measurement`` — how it is timed: message sizes, iterations, warmup.

Everything round-trips through JSON (``to_json``/``from_json``), which
is what lets sweep cells carry their spec into pool workers and lets
``python -m repro.experiments --scenario spec.json`` run user-written
scenarios without a figure module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.gm.params import GMCostModel
from repro.mcast.schemes import BoundScheme, get_scheme, resolve_scheme
from repro.net.failure import FailureSpec
from repro.net.fault import LossSpec
from repro.trees import TREE_SHAPES

__all__ = [
    "ScenarioSpec",
    "WorkloadSpec",
    "MeasurementSpec",
    "TelemetrySpec",
    "TrafficSpec",
    "PartitionSpec",
    "ReliabilitySpec",
    "PARTITIONABLE_KINDS",
    "ARRIVAL_KINDS",
    "WORKLOAD_KINDS",
    "METRIC_BY_KIND",
    "PAPER_SIZES",
    "MPI_SIZES",
    "QUICK_SIZES",
    "QUICK_MAX_SKEWS",
    "unicast_point",
    "multisend_point",
    "multicast_point",
    "mpi_bcast_point",
    "broadcast_point",
    "skew_point",
    "serving_point",
]

#: Message sizes swept in the paper's GM-level figures (lists, as the
#: figure modules slice and concatenate them).
PAPER_SIZES = [1, 4, 16, 64, 256, 512, 1024, 2048, 4096, 8192, 16384]
#: MPI-level sweep ends at the largest eager message.
MPI_SIZES = [1, 4, 16, 64, 256, 512, 1024, 2048, 4096, 8192, 16287]

#: The canonical quick-mode size lists (one per sweep family; formerly
#: scattered across fig3-fig7).  Quick mode trades sweep resolution for
#: wall-clock — endpoints and the regime transitions stay, interior
#: points go; see EXPERIMENTS.md ("Quick vs full sweeps").
QUICK_SIZES: dict[str, list[int]] = {
    "multisend": [1, 64, 512, 4096, 16384],  # fig3
    "multicast": [1, 512, 4096, 16384],  # fig5
    "mpi_bcast": [4, 512, 8192, 16287],  # fig4
}
#: Quick-mode max-skew sweep (fig6); full mode uses fig6.MAX_SKEWS.
QUICK_MAX_SKEWS = (0.0, 800.0, 3200.0)

WORKLOAD_KINDS = (
    "unicast", "multisend", "multicast", "mpi_bcast", "mpi_skew",
    "serving", "broadcast",
)

#: Workload kinds the sharded kernel (:mod:`repro.sim.parallel`) can
#: decompose.  The others coordinate through host-side state that is
#: global by construction — the iterated multicast kinds share a
#: per-round completion event across all receivers, and churn rewrites
#: group membership on arbitrary shards mid-run.  ``broadcast`` is the
#: one-shot multicast shape: no round barrier, so each shard just runs
#: its local members to quiescence.
PARTITIONABLE_KINDS = ("unicast", "multisend", "serving", "broadcast")

#: Arrival processes a :class:`TrafficSpec` can declare.
ARRIVAL_KINDS = ("poisson", "trace")

#: The metric each workload kind reports (the paper's methodology).
METRIC_BY_KIND = {
    "unicast": "one_way_latency_us",
    "multisend": "last_ack_latency_us",
    "multicast": "max_leaf_delivery_plus_ack_us",
    "mpi_bcast": "bcast_latency_plus_ack_us",
    "mpi_skew": "bcast_cpu_time_us",
    "serving": "delivered_msgs_per_sec",
    "broadcast": "completion_time_us",
}

#: MPI-level scheme spellings -> "use the NIC-based broadcast".
_MPI_SCHEMES = {
    "nic": True, "nb": True, "nic_based": True,
    "host": False, "hb": False, "host_based": False,
}

#: resolve_scheme context per workload kind (the legacy nb/hb dialects).
_SCHEME_CONTEXT = {
    "multisend": "multisend",
    "multicast": "multicast",
    "serving": "multicast",
    "broadcast": "multicast",
}


def _unknown_keys(data: dict[str, Any], cls: type, what: str) -> None:
    if not isinstance(data, dict):
        raise ConfigError(f"{what} must be an object, got {data!r}")
    unknown = set(data) - {f.name for f in fields(cls)}
    if unknown:
        raise ConfigError(
            f"unknown {what} keys: {', '.join(sorted(unknown))}"
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """What the nodes run.

    ``scheme`` is a multicast-registry key (canonical or the legacy
    ``nb``/``hb`` spellings) for GM-level kinds, or ``nic``/``host`` for
    the MPI-level kinds.  ``group`` restricts the destination set (default:
    every non-root node).  ``max_skew`` is the ``mpi_skew`` draw range
    (uniform in [-max/2, +max/2], the paper's §6.3 loop).
    """

    kind: str
    scheme: str = "nic_based"
    tree_shape: str | None = None
    group: tuple[int, ...] | None = None
    root: int = 0
    max_skew: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigError(
                f"unknown workload kind {self.kind!r}; "
                f"pick one of {WORKLOAD_KINDS}"
            )
        if self.kind in _SCHEME_CONTEXT:
            try:
                resolve_scheme(self.scheme, context=_SCHEME_CONTEXT[self.kind])
            except ValueError as exc:
                raise ConfigError(str(exc)) from None
        elif self.kind in ("mpi_bcast", "mpi_skew"):
            if self.scheme not in _MPI_SCHEMES:
                raise ConfigError(
                    f"unknown MPI scheme {self.scheme!r}; pick one of "
                    f"{', '.join(sorted(_MPI_SCHEMES))}"
                )
        if self.tree_shape is not None and self.tree_shape not in TREE_SHAPES:
            raise ConfigError(
                f"unknown tree shape {self.tree_shape!r}; "
                f"pick one of {tuple(TREE_SHAPES)}"
            )
        if self.root < 0:
            raise ConfigError(f"root must be >= 0, got {self.root}")
        if self.max_skew < 0:
            raise ConfigError(f"max_skew must be >= 0, got {self.max_skew}")
        if self.group is not None:
            object.__setattr__(self, "group", tuple(self.group))
            if self.root in self.group:
                raise ConfigError(
                    f"root {self.root} must not be in the group"
                )
            if any(m < 0 for m in self.group):
                raise ConfigError("group members must be >= 0")
            if len(set(self.group)) != len(self.group):
                raise ConfigError("group members must be distinct")

    @property
    def canonical_scheme(self) -> str:
        """The registry key (GM kinds) or ``nic``/``host`` (MPI kinds)."""
        if self.kind in _SCHEME_CONTEXT:
            return resolve_scheme(
                self.scheme, context=_SCHEME_CONTEXT[self.kind]
            )
        if self.kind in ("mpi_bcast", "mpi_skew"):
            return "nic" if _MPI_SCHEMES[self.scheme] else "host"
        return self.scheme

    @property
    def nic(self) -> bool:
        """MPI kinds: whether the NIC-based broadcast is selected."""
        return _MPI_SCHEMES.get(self.scheme, True)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "scheme": self.scheme}
        if self.tree_shape is not None:
            out["tree_shape"] = self.tree_shape
        if self.group is not None:
            out["group"] = list(self.group)
        if self.root != 0:
            out["root"] = self.root
        if self.max_skew != 0.0:
            out["max_skew"] = self.max_skew
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkloadSpec":
        _unknown_keys(data, cls, "workload spec")
        if "group" in data and data["group"] is not None:
            data = dict(data, group=tuple(data["group"]))
        return cls(**data)


@dataclass(frozen=True)
class TelemetrySpec:
    """Flight-recorder / time-series request riding on a measurement.

    ``sample`` is the fraction of root messages traced by the flight
    recorder (:mod:`repro.obs.flight`), ``cap`` its ring-buffer event
    capacity, ``interval_us`` the time-series window
    (:mod:`repro.obs.timeseries`; only meaningful for serving runs).
    Declaring telemetry in a spec does not by itself attach anything —
    recorders are built and attached by the obs layer (the scenario
    layer stays observer-free), so a detached run of the same spec is
    byte-identical.
    """

    sample: float = 1.0
    cap: int = 1 << 18
    interval_us: float = 1000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample <= 1.0:
            raise ConfigError(
                f"telemetry sample must be in [0, 1], got {self.sample}"
            )
        if self.cap < 1:
            raise ConfigError(f"telemetry cap must be >= 1, got {self.cap}")
        if self.interval_us <= 0:
            raise ConfigError(
                f"telemetry interval_us must be > 0, got {self.interval_us}"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.sample != 1.0:
            out["sample"] = self.sample
        if self.cap != 1 << 18:
            out["cap"] = self.cap
        if self.interval_us != 1000.0:
            out["interval_us"] = self.interval_us
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetrySpec":
        _unknown_keys(data, cls, "telemetry spec")
        return cls(**data)


@dataclass(frozen=True)
class MeasurementSpec:
    """How a workload is timed (the paper's loop shape)."""

    sizes: tuple[int, ...] = (0,)
    iterations: int = 30
    warmup: int = 5
    metric: str = ""  #: informational; defaults to the kind's metric
    #: optional telemetry request (see :class:`TelemetrySpec`)
    telemetry: "TelemetrySpec | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(self.sizes))
        if not self.sizes:
            raise ConfigError("measurement needs at least one message size")
        if any(not isinstance(s, int) or s < 0 for s in self.sizes):
            raise ConfigError(f"sizes must be ints >= 0, got {self.sizes}")
        if self.iterations < 1:
            raise ConfigError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        if self.warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {self.warmup}")
        if self.metric and self.metric not in METRIC_BY_KIND.values():
            raise ConfigError(
                f"unknown metric {self.metric!r}; known: "
                f"{', '.join(sorted(set(METRIC_BY_KIND.values())))}"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "sizes": list(self.sizes),
            "iterations": self.iterations,
            "warmup": self.warmup,
        }
        if self.metric:
            out["metric"] = self.metric
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MeasurementSpec":
        _unknown_keys(data, cls, "measurement spec")
        if "sizes" in data:
            data = dict(data, sizes=tuple(data["sizes"]))
        if data.get("telemetry") is not None:
            data = dict(
                data, telemetry=TelemetrySpec.from_dict(data["telemetry"])
            )
        return cls(**data)


@dataclass(frozen=True)
class TrafficSpec:
    """Sustained serving traffic: many groups, continuous arrivals.

    The serving workload (``kind="serving"``) runs ``n_groups``
    concurrent multicast groups over one cluster for ``duration_us``
    simulated microseconds.  Each group's root posts messages with
    seeded Poisson inter-arrival gaps (``arrival="poisson"``, mean rate
    ``rate_per_group`` messages/µs) or replays an explicit arrival
    trace (``arrival="trace"``, ``trace_arrivals`` of
    ``(time_us, group_index)`` pairs).  ``schemes`` are multicast
    registry keys cycled across groups; ``sizes`` are cycled across a
    group's messages.  ``churn_interval_us > 0`` adds membership churn:
    a seeded process picks a group at mean exponential gaps and rotates
    one member out for a spare node (applied between that group's
    sends, so reliability state never straddles a membership change).
    Deliveries inside ``warmup_us`` are excluded from the stats.
    """

    duration_us: float = 50_000.0
    n_groups: int = 4
    group_size: int = 3
    arrival: str = "poisson"
    rate_per_group: float = 1e-3  #: messages per µs per group (poisson)
    trace_arrivals: tuple[tuple[float, int], ...] | None = None
    sizes: tuple[int, ...] = (1024,)
    schemes: tuple[str, ...] = ("nic_based",)
    churn_interval_us: float = 0.0  #: mean µs between churn events; 0 = off
    warmup_us: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_us <= 0:
            raise ConfigError(
                f"duration_us must be > 0, got {self.duration_us}"
            )
        if self.n_groups < 1:
            raise ConfigError(f"n_groups must be >= 1, got {self.n_groups}")
        if self.group_size < 1:
            raise ConfigError(
                f"group_size must be >= 1, got {self.group_size}"
            )
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigError(
                f"unknown arrival kind {self.arrival!r}; "
                f"pick one of {ARRIVAL_KINDS}"
            )
        if self.arrival == "poisson" and self.rate_per_group <= 0:
            raise ConfigError(
                f"rate_per_group must be > 0, got {self.rate_per_group}"
            )
        if self.arrival == "trace":
            if not self.trace_arrivals:
                raise ConfigError(
                    "arrival='trace' needs a non-empty trace_arrivals"
                )
            object.__setattr__(
                self,
                "trace_arrivals",
                tuple((float(t), int(g)) for t, g in self.trace_arrivals),
            )
            for t, g in self.trace_arrivals:
                if t < 0:
                    raise ConfigError(f"trace arrival time {t} < 0")
                if not 0 <= g < self.n_groups:
                    raise ConfigError(
                        f"trace arrival group {g} outside "
                        f"[0, {self.n_groups})"
                    )
        elif self.trace_arrivals is not None:
            raise ConfigError(
                "trace_arrivals requires arrival='trace'"
            )
        object.__setattr__(self, "sizes", tuple(self.sizes))
        if not self.sizes:
            raise ConfigError("traffic needs at least one message size")
        if any(not isinstance(s, int) or s < 0 for s in self.sizes):
            raise ConfigError(f"sizes must be ints >= 0, got {self.sizes}")
        if not self.schemes:
            raise ConfigError("traffic needs at least one scheme")
        try:
            object.__setattr__(
                self,
                "schemes",
                tuple(
                    resolve_scheme(s, context="multicast")
                    for s in self.schemes
                ),
            )
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
        for key in self.schemes:
            if get_scheme(key).cls.post is BoundScheme.post:
                raise ConfigError(
                    f"scheme {key!r} cannot drive sustained traffic "
                    "(it only supports one-shot run_once)"
                )
        if self.churn_interval_us < 0:
            raise ConfigError(
                f"churn_interval_us must be >= 0, "
                f"got {self.churn_interval_us}"
            )
        if not 0 <= self.warmup_us < self.duration_us:
            raise ConfigError(
                f"warmup_us must be in [0, duration_us), "
                f"got {self.warmup_us}"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "duration_us": self.duration_us,
            "n_groups": self.n_groups,
            "group_size": self.group_size,
            "arrival": self.arrival,
            "sizes": list(self.sizes),
            "schemes": list(self.schemes),
        }
        if self.arrival == "poisson":
            out["rate_per_group"] = self.rate_per_group
        if self.trace_arrivals is not None:
            out["trace_arrivals"] = [list(p) for p in self.trace_arrivals]
        if self.churn_interval_us:
            out["churn_interval_us"] = self.churn_interval_us
        if self.warmup_us:
            out["warmup_us"] = self.warmup_us
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrafficSpec":
        _unknown_keys(data, cls, "traffic spec")
        if "sizes" in data:
            data = dict(data, sizes=tuple(data["sizes"]))
        if "schemes" in data:
            data = dict(data, schemes=tuple(data["schemes"]))
        if data.get("trace_arrivals") is not None:
            data = dict(
                data,
                trace_arrivals=tuple(
                    tuple(p) for p in data["trace_arrivals"]
                ),
            )
        return cls(**data)


@dataclass(frozen=True)
class PartitionSpec:
    """Sharded-kernel execution request (:mod:`repro.sim.parallel`).

    ``shards`` simulators run the scenario conservatively in parallel;
    ``partitioner`` assigns nodes to shards (``"contiguous"`` id ranges
    or ``"switch_affine"``, which keeps each leaf switch's NICs
    together — fewer cut links, so less handoff traffic); ``seed``
    deterministically varies the switch-affine placement order.
    ``processes`` picks one-OS-process-per-shard execution over the
    in-process conductor (identical results; the in-process form is the
    determinism reference and the cheaper choice for small shard
    counts).
    """

    shards: int = 2
    partitioner: str = "switch_affine"
    seed: int = 0
    processes: bool = False

    def __post_init__(self) -> None:
        from repro.sim.parallel import PARTITIONERS

        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.partitioner not in PARTITIONERS:
            raise ConfigError(
                f"unknown partitioner {self.partitioner!r}; "
                f"pick one of {PARTITIONERS}"
            )
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "shards": self.shards,
            "partitioner": self.partitioner,
        }
        if self.seed:
            out["seed"] = self.seed
        if self.processes:
            out["processes"] = self.processes
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PartitionSpec":
        _unknown_keys(data, cls, "partition spec")
        return cls(**data)


#: Workload kinds that drive the multicast reliability stack (a
#: ``reliability`` section is meaningless for unicast / MPI kinds).
_RELIABILITY_KINDS = ("multisend", "multicast", "serving", "broadcast")


@dataclass(frozen=True)
class ReliabilitySpec:
    """Reliability-engine selection riding on a scenario.

    ``family`` names a :mod:`repro.proto.engines` registry entry
    (``ack_window``, ``nack``, ``nack_fec``); ``None`` keeps the bound
    scheme's default (``nic_based`` defaults to ``ack_window``,
    ``nic_nack``/``nic_nack_fec`` to their namesakes).  The knobs
    override the family's defaults where set; ``None`` means "engine
    default" and is not forwarded, so a spec with only ``family`` set
    is byte-identical to selecting the scheme variant directly.
    """

    family: str | None = None
    #: NACK families: fixed delay before a gap NACK fires (µs)
    nack_delay_us: float | None = None
    #: NACK families: uniform jitter added to the delay (µs; seeded)
    nack_jitter_us: float | None = None
    #: NACK families: sender ignores re-NACKs for a seq this soon after
    #: repairing it (µs)
    repair_suppression_us: float | None = None
    #: NACK families: fallback Go-back-N timeout, as a multiple of the
    #: cost model's ``ack_timeout``
    fallback_timeout_scale: float | None = None
    #: NACK families: tail gaps are overdue after this many observed
    #: inter-arrival gaps of silence
    tail_spacing_factor: float | None = None
    #: NACK families: extra suppression delay per hop of tree depth
    #: below the first non-root level (µs)
    depth_scale_us: float | None = None
    #: NACK+FEC: data packets per XOR parity block
    fec_block: int | None = None

    def __post_init__(self) -> None:
        if self.family is not None:
            # Scenario may import proto (see tools/check_layering.py);
            # validate eagerly so a typo fails at spec build time.
            from repro.proto.engines import available_engines

            if self.family not in available_engines():
                raise ConfigError(
                    f"unknown reliability family {self.family!r}; "
                    f"pick one of {', '.join(available_engines())}"
                )
        for knob in (
            "nack_delay_us", "nack_jitter_us", "repair_suppression_us",
            "fallback_timeout_scale", "tail_spacing_factor",
            "depth_scale_us",
        ):
            value = getattr(self, knob)
            if value is not None and value < 0:
                raise ConfigError(f"{knob} must be >= 0, got {value}")
        if self.fallback_timeout_scale == 0:
            raise ConfigError("fallback_timeout_scale must be > 0")
        if self.fec_block is not None and (
            not isinstance(self.fec_block, int) or self.fec_block < 1
        ):
            raise ConfigError(
                f"fec_block must be an int >= 1, got {self.fec_block}"
            )

    def params(self) -> dict[str, Any]:
        """The non-default knobs, as engine parameter overrides."""
        out: dict[str, Any] = {}
        for f in fields(self):
            if f.name == "family":
                continue
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = value
        return out

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.family is not None:
            out["family"] = self.family
        out.update(self.params())
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReliabilitySpec":
        _unknown_keys(data, cls, "reliability spec")
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable experiment scenario."""

    workload: WorkloadSpec
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    measurement: MeasurementSpec = field(default_factory=MeasurementSpec)
    traffic: TrafficSpec | None = None
    partition: PartitionSpec | None = None
    reliability: ReliabilitySpec | None = None
    name: str = ""

    def __post_init__(self) -> None:
        n = self.cluster.n_nodes
        w = self.workload
        if w.root >= n:
            raise ConfigError(
                f"root {w.root} outside the {n}-node cluster"
            )
        if w.group is not None and any(m >= n for m in w.group):
            raise ConfigError(
                f"group member outside the {n}-node cluster: {w.group}"
            )
        if w.kind == "unicast" and n < 2:
            raise ConfigError("unicast needs at least 2 nodes")
        if w.kind != "unicast" and n < 2:
            raise ConfigError(f"{w.kind} needs at least 2 nodes")
        if w.kind == "serving":
            if self.traffic is None:
                raise ConfigError(
                    "serving scenarios need a 'traffic' section"
                )
            t = self.traffic
            if t.group_size > n - 1:
                raise ConfigError(
                    f"group_size {t.group_size} does not fit a "
                    f"{n}-node cluster (root + members)"
                )
            if t.churn_interval_us and t.group_size > n - 2:
                raise ConfigError(
                    "membership churn needs at least one spare node: "
                    f"group_size {t.group_size} leaves none in a "
                    f"{n}-node cluster"
                )
        elif self.traffic is not None:
            raise ConfigError(
                "a 'traffic' section requires workload kind 'serving'"
            )
        if (
            self.reliability is not None
            and w.kind not in _RELIABILITY_KINDS
        ):
            raise ConfigError(
                f"a 'reliability' section requires a multicast workload "
                f"kind ({', '.join(_RELIABILITY_KINDS)}), got {w.kind!r}"
            )
        p = self.partition
        if p is not None:
            if w.kind not in PARTITIONABLE_KINDS:
                raise ConfigError(
                    f"workload kind {w.kind!r} cannot run partitioned "
                    f"(decomposable kinds: {PARTITIONABLE_KINDS})"
                )
            if (
                w.kind == "serving"
                and self.traffic is not None
                and self.traffic.churn_interval_us
            ):
                raise ConfigError(
                    "membership churn cannot run partitioned (churn "
                    "rewrites group tables across shard boundaries)"
                )
            if p.shards > n:
                raise ConfigError(
                    f"{p.shards} shards cannot all be non-empty with "
                    f"{n} nodes"
                )

    @property
    def metric(self) -> str:
        return self.measurement.metric or METRIC_BY_KIND[self.workload.kind]

    def destinations(self) -> list[int]:
        """The member node ids (explicit group, or all non-root nodes)."""
        if self.workload.group is not None:
            return list(self.workload.group)
        return [
            i for i in range(self.cluster.n_nodes) if i != self.workload.root
        ]

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.name:
            out["name"] = self.name
        out["cluster"] = self.cluster.to_dict()
        out["workload"] = self.workload.to_dict()
        out["measurement"] = self.measurement.to_dict()
        if self.traffic is not None:
            out["traffic"] = self.traffic.to_dict()
        if self.partition is not None:
            out["partition"] = self.partition.to_dict()
        if self.reliability is not None:
            out["reliability"] = self.reliability.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        _unknown_keys(data, cls, "scenario spec")
        if "workload" not in data:
            raise ConfigError("scenario spec needs a 'workload' section")
        kwargs: dict[str, Any] = {
            "workload": WorkloadSpec.from_dict(data["workload"]),
        }
        if "cluster" in data:
            kwargs["cluster"] = ClusterConfig.from_dict(data["cluster"])
        if "measurement" in data:
            kwargs["measurement"] = MeasurementSpec.from_dict(
                data["measurement"]
            )
        if data.get("traffic") is not None:
            kwargs["traffic"] = TrafficSpec.from_dict(data["traffic"])
        if data.get("partition") is not None:
            kwargs["partition"] = PartitionSpec.from_dict(data["partition"])
        if data.get("reliability") is not None:
            kwargs["reliability"] = ReliabilitySpec.from_dict(
                data["reliability"]
            )
        if "name" in data:
            kwargs["name"] = data["name"]
        return cls(**kwargs)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ScenarioSpec":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"scenario spec is not valid JSON: {exc}") from None
        return cls.from_dict(data)


# ---------------------------------------------------------------------------
# Point builders: the paper's measurement shapes as one-liners.  These are
# what the figure grids and the thin measure_* wrappers construct.
# ---------------------------------------------------------------------------

def _cluster_cfg(n: int, cost: GMCostModel | None, seed: int) -> ClusterConfig:
    return ClusterConfig(n_nodes=n, cost=cost or GMCostModel(), seed=seed)


def unicast_point(
    cost: GMCostModel | None = None,
    size: int = 0,
    iterations: int = 10,
    seed: int = 0,
) -> ScenarioSpec:
    """Mean one-way GM latency between two nodes (the ack-trip probe)."""
    return ScenarioSpec(
        workload=WorkloadSpec(kind="unicast"),
        cluster=_cluster_cfg(2, cost, seed),
        measurement=MeasurementSpec(
            sizes=(size,), iterations=iterations, warmup=0
        ),
    )


def multisend_point(
    n_dest: int,
    size: int,
    scheme: str,
    iterations: int = 30,
    warmup: int = 5,
    cost: GMCostModel | None = None,
    seed: int = 0,
) -> ScenarioSpec:
    """Fig. 3 shape: one root multisending to *n_dest* flat destinations."""
    return ScenarioSpec(
        workload=WorkloadSpec(kind="multisend", scheme=scheme),
        cluster=_cluster_cfg(n_dest + 1, cost, seed),
        measurement=MeasurementSpec(
            sizes=(size,), iterations=iterations, warmup=warmup
        ),
    )


def multicast_point(
    n_nodes: int,
    size: int,
    scheme: str,
    iterations: int = 30,
    warmup: int = 5,
    cost: GMCostModel | None = None,
    seed: int = 0,
    tree_shape: str | None = None,
) -> ScenarioSpec:
    """Fig. 5 shape: GM-level multicast over the scheme's spanning tree."""
    return ScenarioSpec(
        workload=WorkloadSpec(
            kind="multicast", scheme=scheme, tree_shape=tree_shape
        ),
        cluster=_cluster_cfg(n_nodes, cost, seed),
        measurement=MeasurementSpec(
            sizes=(size,), iterations=iterations, warmup=warmup
        ),
    )


def mpi_bcast_point(
    n_ranks: int,
    size: int,
    nic: bool,
    iterations: int = 30,
    warmup: int = 5,
    cost: GMCostModel | None = None,
    seed: int = 0,
) -> ScenarioSpec:
    """Fig. 4 shape: MPI_Bcast latency, pre-synchronized per iteration."""
    return ScenarioSpec(
        workload=WorkloadSpec(
            kind="mpi_bcast", scheme="nic" if nic else "host"
        ),
        cluster=_cluster_cfg(n_ranks, cost, seed),
        measurement=MeasurementSpec(
            sizes=(size,), iterations=iterations, warmup=warmup
        ),
    )


def broadcast_point(
    n_nodes: int,
    size: int,
    scheme: str,
    cost: GMCostModel | None = None,
    seed: int = 0,
    tree_shape: str | None = None,
    topology: str = "clos",
    clos_radix: int = 16,
    failures: FailureSpec | None = None,
    loss: LossSpec | None = None,
    reliability: ReliabilitySpec | None = None,
    name: str = "",
) -> ScenarioSpec:
    """Fig. 8/9 shape: one one-shot broadcast, optionally with failures
    injected mid-flight or a declarative loss model.  Completion time =
    root post to the last member's host delivery; per-destination
    delivery times ride along so the 100%-delivery check is verifiable,
    not assumed."""
    return ScenarioSpec(
        workload=WorkloadSpec(
            kind="broadcast", scheme=scheme, tree_shape=tree_shape
        ),
        cluster=ClusterConfig(
            n_nodes=n_nodes,
            cost=cost or GMCostModel(),
            seed=seed,
            topology=topology,
            clos_radix=clos_radix,
            failures=failures,
            loss=loss,
        ),
        measurement=MeasurementSpec(sizes=(size,), iterations=1, warmup=0),
        reliability=reliability,
        name=name,
    )


def serving_point(
    n_nodes: int = 16,
    traffic: TrafficSpec | None = None,
    cost: GMCostModel | None = None,
    seed: int = 0,
    name: str = "",
) -> ScenarioSpec:
    """Sustained serving shape: concurrent groups, continuous arrivals."""
    return ScenarioSpec(
        workload=WorkloadSpec(kind="serving"),
        cluster=_cluster_cfg(n_nodes, cost, seed),
        measurement=MeasurementSpec(sizes=(0,), iterations=1, warmup=0),
        traffic=traffic or TrafficSpec(),
        name=name,
    )


def skew_point(
    n: int,
    nic: bool,
    max_skew: float,
    size: int,
    iterations: int,
    cost: GMCostModel | None = None,
    seed: int = 0,
    warmup: int = 3,
) -> ScenarioSpec:
    """Fig. 6/7 shape: host CPU time in MPI_Bcast under process skew."""
    return ScenarioSpec(
        workload=WorkloadSpec(
            kind="mpi_skew",
            scheme="nic" if nic else "host",
            max_skew=max_skew,
        ),
        cluster=_cluster_cfg(n, cost, seed),
        measurement=MeasurementSpec(
            sizes=(size,), iterations=iterations, warmup=warmup
        ),
    )
