"""Critical-path acceptance: reconciliation, recovery gaps, shard merge.

The fig8-style pinned scenario here is the committed
``examples/scenarios/clos_failures_selfheal.json`` workload: a 64-node
Clos broadcast under ``tree_repair`` with three uplinks scheduled down
mid-flight, so some destinations deliver only after the healed tree
replays the message.  The acceptance bars:

* every destination's six segment sums reconcile with the harness's
  measured delivery time to < 1us;
* ``recovery_gap`` is non-zero exactly for the failure-affected
  (replayed) destinations;
* the per-destination breakdown is identical at 2 and 4 shards
  (trace ids are per-origin, so sharding cannot renumber them).
"""

import json
from pathlib import Path

import pytest

from repro.obs.critical import (
    SEGMENTS,
    critical_path_to_dict,
    critical_paths,
    render_critical_path,
)
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.scenario.harness import Harness
from repro.scenario.spec import ScenarioSpec

SPEC_PATH = (
    Path(__file__).resolve().parents[2]
    / "examples" / "scenarios" / "clos_failures_selfheal.json"
)


def _run_clos(shards: int):
    """One flight-recorded run of the pinned failure scenario."""
    raw = json.loads(SPEC_PATH.read_text())
    raw["partition"]["shards"] = shards
    spec = ScenarioSpec.from_dict(raw)
    flight = FlightRecorder(sample=1.0)
    result = Harness(
        spec, registry=MetricsRegistry(), flight=flight
    ).run()
    size = spec.measurement.sizes[0]
    return result.values[size], critical_paths(flight.events)


@pytest.fixture(scope="module")
def clos2():
    return _run_clos(2)


def test_segment_sums_reconcile_within_1us(clos2):
    broadcast, paths = clos2
    assert len(paths) == 1
    cp = paths[0]
    assert len(cp.destinations) == len(broadcast.deliveries) == 63
    for dest, p in cp.destinations.items():
        assert p.exact, f"dest {dest} walk hit a gap"
        # Telescoping walk: segments sum exactly to the flight's view.
        assert p.segment_sum == pytest.approx(p.delivery_us, abs=1e-9)
        # ...and the flight's view matches the harness measurement to
        # < 1us (the host wake-up after the completion event).
        measured = broadcast.deliveries[dest] - broadcast.start_us
        assert abs(measured - p.segment_sum) < 1.0, (
            f"dest {dest}: measured {measured:.3f}us vs "
            f"segments {p.segment_sum:.3f}us"
        )


def test_recovery_gap_only_for_replayed_destinations(clos2):
    _broadcast, paths = clos2
    cp = paths[0]
    replayed = {d for d, p in cp.destinations.items() if p.replayed}
    assert replayed, "the pinned scenario must exercise replay"
    for dest, p in cp.destinations.items():
        if dest in replayed:
            assert p.segments["recovery_gap"] > 0.0
        else:
            assert p.segments["recovery_gap"] == 0.0
    # The broadcast's critical destination is failure-affected: the
    # fig8 answer to "where did the time go" is the recovery gap.
    crit = cp.destinations[cp.critical_destination]
    assert crit.replayed
    assert crit.segments["recovery_gap"] > max(
        crit.segments[s] for s in SEGMENTS if s != "recovery_gap"
    )


def _comparable(paths):
    """The uid-free shape of a breakdown (uids vary across shard counts)."""
    return [
        {
            "trace_id": cp.trace_id,
            "origin": cp.origin,
            "destinations": {
                dest: (
                    round(p.delivery_us, 9),
                    {s: round(v, 9) for s, v in p.segments.items()},
                    p.hops, p.retransmits, p.replayed, p.exact,
                )
                for dest, p in cp.destinations.items()
            },
        }
        for cp in paths
    ]


def test_breakdown_identical_at_2_and_4_shards(clos2):
    _b2, paths2 = clos2
    _b4, paths4 = _run_clos(4)
    assert _comparable(paths2) == _comparable(paths4)


def test_render_and_dict_shapes(clos2):
    _broadcast, paths = clos2
    cp = paths[0]
    text = render_critical_path(cp)
    assert "critical path: trace" in text
    assert "recovery gap" in text
    d = critical_path_to_dict(cp)
    assert d["critical_destination"] == cp.critical_destination
    assert set(d["destinations"]) == {
        str(dest) for dest in cp.destinations
    }
    one = next(iter(d["destinations"].values()))
    assert set(one["segments"]) == set(SEGMENTS)
    json.dumps(d)  # JSON-ready end to end
