"""Retransmission policies: what to resend when the oldest record expires.

The sweep skeleton — walk the window from the expired sequence number,
count the attempt, escalate past ``max_retransmits``, hand each record
to the transport — is identical for GM unicast and NIC-based multicast;
only the *selection* differs:

* :class:`GoBackN` — "the sender will retransmit the packet, as well as
  all the later packets from the same port" (paper §4);
* :class:`SelectiveGoBackN` — "the retransmission of the packet and the
  following ones will be performed only for the destinations which have
  not acknowledged" (paper §5).

A policy class owns the selection loop; the owning engine subclasses it
to supply the transport hooks (:meth:`RetransmitPolicy.resend`, the
escalation message, the statistics counter).  A future selective-repeat
or adaptive-backoff scheme is a new policy class here — not a third
copy of the loop in an engine.

Policies are driven from :class:`repro.proto.timer.RetransmitTimer`'s
``on_expire`` hook, typically as a freshly spawned simulation process:
``sim.process(policy.sweep(window, from_seq, …))``.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ReproError
from repro.proto.window import SendWindow

__all__ = ["RetransmitPolicy", "GoBackN", "SelectiveGoBackN"]


class RetransmitPolicy:
    """Template for a retransmission sweep over a :class:`SendWindow`.

    Subclasses implement :meth:`sweep` (the selection loop) using
    :meth:`attempt` for the shared bump/count/escalate step, and the
    transport hooks below.
    """

    __slots__ = ()

    #: Retransmission cap before escalation.  Engine-bound subclasses
    #: expose the cost model's value as a property so configuration
    #: stays live.
    max_retransmits: int

    # -- the sweep ---------------------------------------------------------
    def sweep(self, window: SendWindow, from_seq: int, **ctx: Any) -> Generator:
        """Resend what this policy selects, as a simulation coroutine.

        ``ctx`` carries transport context (the connection or group the
        window belongs to) through to the hooks.
        """
        raise NotImplementedError

    def attempt(self, record: Any, **ctx: Any) -> None:
        """One more (re)transmission attempt: count it, escalate past
        the cap with the transport's "peer unreachable" diagnosis."""
        record.retransmits += 1
        self.count(record, **ctx)
        if record.retransmits > self.max_retransmits:
            raise ReproError(self.unreachable(record, **ctx))

    # -- transport hooks (engine-supplied) ---------------------------------
    def count(self, record: Any, **ctx: Any) -> None:
        """Bump the owning engine's retransmission statistics."""
        raise NotImplementedError

    def unreachable(self, record: Any, **ctx: Any) -> str:
        """Escalation message once ``max_retransmits`` is exceeded."""
        raise NotImplementedError

    def resend(self, record: Any, **ctx: Any) -> Generator:
        """Transport coroutine that puts *record* back on the wire."""
        raise NotImplementedError


class GoBackN(RetransmitPolicy):
    """Unicast Go-back-N: the expired record and every later unacked one.

    The window is snapshotted once; records acked while earlier ones
    were being retransmitted are skipped.
    """

    __slots__ = ()

    def sweep(self, window: SendWindow, from_seq: int, **ctx: Any) -> Generator:
        for seq in window.seqs():
            if seq < from_seq:
                continue
            record = window.get(seq)
            if record is None:
                continue  # acked while we were retransmitting predecessors
            self.attempt(record, **ctx)
            yield from self.resend(record, **ctx)


class SelectiveGoBackN(RetransmitPolicy):
    """Per-child Go-back-N for one-to-many windows.

    Resends the expired record and its successors, but each packet only
    to the children still present in its ``unacked`` set, grouped by
    child so one laggard's recovery stream stays in sequence order.  The
    window is sorted **once** per sweep (the pre-refactor code re-sorted
    it for every child).
    """

    __slots__ = ()

    def sweep(self, window: SendWindow, from_seq: int, **ctx: Any) -> Generator:
        seqs = [seq for seq in window.seqs() if seq >= from_seq]
        laggards = {
            child
            for seq in seqs
            for child in window.records[seq].unacked
        }
        for child in sorted(laggards):
            for seq in seqs:
                record = window.get(seq)
                if record is None or child not in record.unacked:
                    continue
                self.attempt(record, child=child, **ctx)
                self.rearm(record, **ctx)
                yield from self.resend(record, child=child, **ctx)

    def rearm(self, record: Any, **ctx: Any) -> None:
        """Restart the record's timer before the resend goes out (the
        multicast engine re-arms eagerly; override as appropriate)."""
        raise NotImplementedError
