"""Cluster resource-utilization reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.experiments.report import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import Cluster

__all__ = [
    "NodeUtilization",
    "ClusterUtilization",
    "cluster_utilization",
    "render_utilization",
]


@dataclass(frozen=True)
class NodeUtilization:
    """Busy time (µs) of one node's engines."""

    node: int
    nic_cpu: float
    pci: float
    copy_engine: float
    host_compute: float
    packets_sent: int
    packets_received: int


@dataclass(frozen=True)
class ClusterUtilization:
    """Aggregate utilization over a finished (or paused) run."""

    elapsed: float
    nodes: tuple[NodeUtilization, ...]
    #: total bytes carried per link name, busiest first
    link_bytes: tuple[tuple[str, int], ...]
    wire_bytes_total: int

    @property
    def total_nic_cpu(self) -> float:
        return sum(n.nic_cpu for n in self.nodes)

    @property
    def total_pci(self) -> float:
        return sum(n.pci for n in self.nodes)

    @property
    def total_copy(self) -> float:
        return sum(n.copy_engine for n in self.nodes)

    def node_fraction(self, node: int, engine: str) -> float:
        """Busy fraction of one engine over the elapsed window."""
        if self.elapsed <= 0:
            return 0.0
        value = getattr(self.nodes[node], engine)
        return value / self.elapsed


def cluster_utilization(cluster: "Cluster", top_links: int = 8) -> ClusterUtilization:
    """Snapshot utilization counters from a cluster."""
    nodes = []
    for node in cluster.nodes:
        nodes.append(
            NodeUtilization(
                node=node.id,
                nic_cpu=node.nic.cpu.busy_time,
                pci=node.nic.pci.busy_time,
                copy_engine=node.nic.copy_engine.busy_time,
                host_compute=node.host.compute_time,
                packets_sent=node.nic.packets_sent,
                packets_received=node.nic.packets_received,
            )
        )
    links = sorted(
        (
            (link.name, link.bytes_carried)
            for link in cluster.topology.all_links()
            if link.bytes_carried
        ),
        key=lambda kv: kv[1],
        reverse=True,
    )
    return ClusterUtilization(
        elapsed=cluster.now,
        nodes=tuple(nodes),
        link_bytes=tuple(links[:top_links]),
        wire_bytes_total=sum(b for _n, b in links),
    )


def render_utilization(report: ClusterUtilization) -> str:
    """Human-readable utilization table."""
    headers = ["node", "NIC cpu us", "PCI us", "copy us", "host us",
               "pkts tx", "pkts rx"]
    rows = [
        [
            str(n.node),
            f"{n.nic_cpu:.1f}",
            f"{n.pci:.1f}",
            f"{n.copy_engine:.1f}",
            f"{n.host_compute:.1f}",
            str(n.packets_sent),
            str(n.packets_received),
        ]
        for n in report.nodes
    ]
    out = [
        f"elapsed: {report.elapsed:.1f} us, wire bytes: "
        f"{report.wire_bytes_total}",
        render_table(headers, rows),
    ]
    if report.link_bytes:
        out.append("busiest links:")
        for name, nbytes in report.link_bytes:
            out.append(f"  {name}: {nbytes} B")
    return "\n".join(out)
