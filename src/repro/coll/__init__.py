"""NIC-based collective operations — the paper's stated future work.

"In view of the benefits of NIC-based multicast, we intend to expand the
NIC-based support to other collective operations, for example, Allreduce
and All-to-all broadcast" (paper §7).  This package implements that
program on the same simulated stack:

* :mod:`repro.coll.engine` — a NIC-resident tree-aggregation engine:
  contributions flow *up* the multicast group tree, combined on each
  LANai, and the result flows *down* via the forwarding machinery; a
  barrier is the degenerate reduction.  (Cf. Buntinas et al., "Fast
  NIC-Level Barrier over Myrinet/GM", IPDPS 2001, and "NIC-Based
  Reduction in Myrinet Clusters", SAN-02 — reference [6] and [4] of the
  paper.)
* :mod:`repro.coll.rdma_bcast` — NIC-based broadcast beyond the eager
  limit, using rendezvous registration so the data lands zero-copy
  ("we also intend to study the NIC-based multicast using remote DMA
  operations", §7).
* host-based comparison collectives live on the MPI layer
  (:meth:`repro.mpi.comm.RankContext.allreduce`).
"""

from repro.coll.engine import CollectiveEngine, REDUCE_OPS
from repro.coll.rdma_bcast import rdma_bcast

__all__ = ["CollectiveEngine", "REDUCE_OPS", "rdma_bcast"]
