"""Cluster configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.gm.params import GMCostModel

__all__ = ["ClusterConfig", "TOPOLOGIES"]

TOPOLOGIES = ("single", "clos", "line")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build a :class:`~repro.cluster.Cluster`.

    Attributes
    ----------
    n_nodes:
        Number of nodes (each a host + NIC).
    cost:
        Timing constants; defaults to the paper's testbed preset.
    topology:
        ``"single"`` (one crossbar), ``"clos"`` (two-level Clos above 16
        nodes, single switch at or below — Myrinet's default), or
        ``"line"`` (chained switches, for stress tests).
    seed:
        Master RNG seed (skew draws, loss draws, ...).
    trace:
        Record structured trace events (needed by the Fig. 2 experiment).
    prepost_recv_tokens:
        Receive buffers preposted on every port at construction, before
        simulated time starts (the paper's tests assume receivers are
        ready; replenishment during a run pays normal host costs).
    clos_radix:
        Crossbar radix for the Clos builder.
    extras:
        Free-form knobs for experiments (documented where used).
    """

    n_nodes: int = 16
    cost: GMCostModel = field(default_factory=GMCostModel.lanai9)
    topology: str = "clos"
    seed: int = 0
    trace: bool = False
    prepost_recv_tokens: int = 64
    clos_radix: int = 16
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; pick one of {TOPOLOGIES}"
            )
        if self.prepost_recv_tokens < 0:
            raise ConfigError("prepost_recv_tokens must be >= 0")
        if self.prepost_recv_tokens > self.cost.recv_tokens_per_port:
            raise ConfigError(
                "cannot prepost more receive tokens than the port owns "
                f"({self.prepost_recv_tokens} > {self.cost.recv_tokens_per_port})"
            )
