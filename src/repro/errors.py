"""Exception hierarchy for the repro stack."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "ProtectionError",
    "TokenExhausted",
    "RegistrationError",
    "GroupError",
    "TreeError",
    "RoutingError",
    "DeadlockDetected",
    "CreditError",
    "MPIError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError, ValueError):
    """Invalid cluster, cost-model, or scenario configuration.

    Also a :class:`ValueError`: config knobs historically surfaced bad
    values that way (``measure_multisend(..., "quantum")``), and callers
    catching either spelling must keep working now that validation lives
    in the scenario specs.
    """


class ProtectionError(ReproError):
    """A process touched a GM port it does not own (paper §2: protection)."""


class TokenExhausted(ReproError):
    """A send was attempted with no free send tokens on the port."""


class RegistrationError(ReproError):
    """DMA attempted on unregistered host memory, or bad (de)registration."""


class GroupError(ReproError):
    """Invalid multicast-group operation (unknown group, bad membership)."""


class TreeError(ReproError):
    """Invalid spanning-tree structure or deadlock-ordering violation."""


class RoutingError(ReproError):
    """No route between two NICs in the configured topology."""


class DeadlockDetected(ReproError):
    """The simulator stalled with blocked processes holding resources.

    Raised by analysis helpers (e.g. the LFC credit-deadlock demonstration),
    never spuriously during normal operation of the proposed scheme.
    """


class CreditError(ReproError):
    """Credit accounting violation in the FM/MC or LFC baseline schemes."""


class MPIError(ReproError):
    """Invalid MPI-level usage (bad rank, communicator mismatch, ...)."""
