"""Partitioned-vs-serial determinism proofs (the PR-2/PR-6 bar).

The conservative-parallel kernel must not move a single event: a
partitioned run replays the pinned 54-record golden trace and the quick
fig-3 table byte-identically to serial, at 2 and at 4 shards.

Two workload-level accommodations, both documented in
:mod:`repro.sim.parallel`:

* the golden run's forced drop is destination-qualified here (serial
  and partitioned alike): each shard builds its own ``ScriptedLoss``
  instance, so a ``times=1`` budget is per-shard, and only a predicate
  that names the victim packet fires identically everywhere.  A serial
  run with the qualified predicate still replays the committed fixture
  exactly (asserted first), because dst 1's copy *is* the drop the
  unqualified predicate hits.
* packet uids / message ids are process-global allocators, renumbered
  by first appearance exactly as the serial golden test does.
"""

from pathlib import Path

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast.manager import install_group
from repro.net.fault import ScriptedLoss
from repro.net.packet import PacketType
from repro.sim.parallel import PartitionPlan, ShardSet, merge_traces
from repro.trees import build_tree

FIXTURE = Path(__file__).parent.parent / "mcast" / "golden_8node_trace.txt"

N = 8
SIZE = 4096


def _qualified_loss():
    """The golden drop, pinned to its victim (dst 1's seq-1 data copy)."""
    return ScriptedLoss(
        lambda pkt: pkt.header.ptype is PacketType.MCAST_DATA
        and pkt.header.seq == 1
        and pkt.dst == 1,
        times=1,
    )


def _render(records):
    renumber = {"uid": {}, "msg": {}}
    lines = []
    for rec in records:
        fields = dict(rec.fields)
        for key, seen in renumber.items():
            if key in fields:
                fields[key] = seen.setdefault(fields[key], len(seen))
        rendered = ",".join(f"{k}={fields[k]!r}" for k in sorted(fields))
        lines.append(f"{rec.time:.6f} {rec.component} {rec.category} {rendered}")
    return lines


def _golden_programs(cluster, tree):
    """Spawn the golden workload's local programs on *cluster*."""

    def root():
        handle = yield from cluster.node(0).mcast.multicast_send(
            cluster.port(0), 1, SIZE
        )
        yield handle.done

    def member(i):
        port = cluster.port(i)
        yield from port.receive()
        yield from port.provide_receive_buffer()

    if cluster.is_local(0):
        cluster.spawn(root())
    for i in range(1, N):
        if cluster.is_local(i):
            cluster.spawn(member(i))


def _serial_lines():
    cost = GMCostModel()
    cluster = Cluster(
        ClusterConfig(n_nodes=N, cost=cost, seed=0, trace=True),
        loss=_qualified_loss(),
    )
    tree = build_tree(0, list(range(1, N)), shape="optimal", cost=cost, size=SIZE)
    install_group(cluster, 1, tree)
    _golden_programs(cluster, tree)
    cluster.run()
    return _render(cluster.sim.trace.records)


def _partitioned_lines(n_shards):
    cost = GMCostModel()
    cfg = ClusterConfig(n_nodes=N, cost=cost, seed=0, trace=True)
    plan = PartitionPlan.from_topology(
        Cluster(cfg).topology, n_shards, partitioner="contiguous"
    )
    tree = build_tree(0, list(range(1, N)), shape="optimal", cost=cost, size=SIZE)
    shards = []
    for sid in range(n_shards):
        cluster = Cluster(
            cfg, loss=_qualified_loss(), local_nodes=plan.shard_nodes(sid)
        )
        plan.bind(cluster.topology)
        install_group(cluster, 1, tree)
        _golden_programs(cluster, tree)
        shards.append(cluster)
    conductor = ShardSet(
        plan, [c.sim for c in shards], [c.network for c in shards]
    )
    conductor.run()
    assert conductor.messages > 0, "workload never crossed a shard boundary"
    dropped = sum(c.network.dropped for c in shards)
    assert dropped == 1, f"expected exactly one forced drop, got {dropped}"
    return _render(merge_traces(c.sim for c in shards))


def test_serial_qualified_loss_matches_fixture():
    """The dst-qualified drop IS the fixture's drop (victim identity)."""
    expected = FIXTURE.read_text().splitlines()
    actual = _serial_lines()
    for i, (want, got) in enumerate(zip(expected, actual)):
        assert want == got, f"trace diverges at record {i}:\n-{want}\n+{got}"
    assert len(actual) == len(expected)


@pytest.mark.parametrize("n_shards", [2, 4])
def test_partitioned_golden_trace_identical(n_shards):
    expected = FIXTURE.read_text().splitlines()
    actual = _partitioned_lines(n_shards)
    for i, (want, got) in enumerate(zip(expected, actual)):
        assert want == got, (
            f"{n_shards}-shard trace diverges at record {i}:\n-{want}\n+{got}"
        )
    assert len(actual) == len(expected), (
        f"trace length changed: fixture {len(expected)}, "
        f"{n_shards}-shard run {len(actual)}"
    )


# ---------------------------------------------------------------------------
# Quick fig-3 table identity: every (n_dest, size, scheme) cell of the
# quick multisend sweep, partitioned vs serial, value-for-value.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_shards", [2, 4])
def test_partitioned_fig3_quick_table_identical(n_shards):
    from dataclasses import replace

    from repro.scenario.harness import Harness
    from repro.scenario.spec import (
        QUICK_SIZES,
        PartitionSpec,
        multisend_point,
    )

    for scheme in ("nb", "hb"):
        for size in QUICK_SIZES["multisend"]:
            spec = multisend_point(
                n_dest=7, size=size, scheme=scheme, iterations=5, warmup=1
            )
            serial = Harness(spec).run().values
            part = Harness(
                replace(
                    spec,
                    partition=PartitionSpec(
                        shards=n_shards, partitioner="contiguous"
                    ),
                )
            ).run().values
            assert part == serial, (scheme, size, n_shards, part, serial)


# ---------------------------------------------------------------------------
# Failure + loss replay identity: a broadcast that loses packets AND
# suffers a mid-flight link failure must replay byte-identically for a
# given (spec, seed, shard count) — the bar the self-healing recovery
# schemes (PR "topology failure lifecycle") are held to.  Serial and
# sharded runs are each self-deterministic; serial==sharded equality is
# only promised failure-free (see run_point_partitioned), so each mode
# is compared against its own replay, not across modes.
# ---------------------------------------------------------------------------

def _failure_broadcast_spec():
    from dataclasses import replace

    from repro.net.failure import FailureEvent, FailureSpec
    from repro.net.fault import LossSpec
    from repro.scenario.spec import broadcast_point

    # Victim: node 8's NIC cable, down mid-broadcast, healed well before
    # the retransmit window would give up.
    scratch = Cluster(ClusterConfig(n_nodes=16, topology="clos", seed=5))
    cable = scratch.topology.nic_cable_index(8)
    failures = FailureSpec(kind="scheduled", events=(
        FailureEvent(30.0, "link_down", cable),
        FailureEvent(600.0, "link_up", cable),
    ))
    spec = broadcast_point(
        16, 16384, "tree_repair", seed=5, tree_shape="binomial",
        failures=failures, name="golden-failure-broadcast",
    )
    return replace(
        spec,
        cluster=replace(
            spec.cluster, loss=LossSpec(kind="bernoulli", rate=0.02)
        ),
    )


def _failure_broadcast_run(mode):
    from dataclasses import replace

    from repro.obs.registry import MetricsRegistry
    from repro.scenario.harness import Harness
    from repro.scenario.spec import PartitionSpec

    spec = _failure_broadcast_spec()
    if mode != "serial":
        n_shards = int(mode.split("-")[0])
        spec = replace(
            spec,
            partition=PartitionSpec(
                shards=n_shards, partitioner="contiguous"
            ),
        )
    registry = MetricsRegistry()
    result = Harness(spec, registry=registry).run()
    (point,) = result.values.values()
    return point, registry.snapshot()


@pytest.mark.parametrize("mode", ["serial", "2-shards", "4-shards"])
def test_failure_broadcast_replay_identical(mode):
    first_point, first_metrics = _failure_broadcast_run(mode)
    # Full delivery despite 2% bernoulli loss and a mid-flight failure.
    assert sorted(first_point.deliveries) == list(range(1, 16)), mode
    assert first_point.completion_us > 0

    second_point, second_metrics = _failure_broadcast_run(mode)
    assert second_point == first_point, (
        f"{mode} replay diverged: {second_point} != {first_point}"
    )
    assert second_metrics == first_metrics, f"{mode} metrics diverged"
