"""Recovery-scheme invariants: exactly-once delivery, scheme behavior,
and window drainage across a mid-broadcast link failure."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mcast.schemes import get_scheme, resolve_scheme
from repro.net.failure import FailureEvent, FailureSpec
from repro.obs.registry import MetricsRegistry
from repro.trees import build_tree

N = 16
SIZE = 16384
VICTIM = 8
GROUP = 1


def _victim_failure(victim=VICTIM, down=30.0, up=600.0, seed=3):
    scratch = Cluster(ClusterConfig(n_nodes=N, topology="clos", seed=seed))
    cable = scratch.topology.nic_cable_index(victim)
    return FailureSpec(kind="scheduled", events=(
        FailureEvent(down, "link_down", cable),
        FailureEvent(up, "link_up", cable),
    ))


def _run_broadcast(scheme, failures, registry=None, seed=3):
    """One one-shot broadcast to quiescence; returns (cluster, state).

    Members post a *second* receive after relaying: if recovery ever
    delivered a message to a host twice, that probe would complete and
    show up in ``state['dups']``.
    """
    cluster = Cluster(
        ClusterConfig(n_nodes=N, topology="clos", seed=seed,
                      failures=failures)
    )
    if registry is not None:
        cluster.sim.metrics = registry
    spec = get_scheme(resolve_scheme(scheme, context="multicast"))
    tree = build_tree(0, list(range(1, N)), shape="binomial")
    bound = spec.cls(spec, cluster, tree)
    bound.group_id = GROUP
    bound.install()
    state = {"delivered": {}, "dups": []}

    def root():
        yield from bound.post(SIZE)

    def member(i):
        port = cluster.port(i)
        yield from port.receive()
        state["delivered"][i] = cluster.now
        yield from port.provide_receive_buffer()
        yield from bound.relay(i, SIZE)
        yield from port.receive()  # duplicate probe: must never complete
        state["dups"].append(i)

    cluster.spawn(root())
    for i in range(1, N):
        cluster.spawn(member(i))
    cluster.run()
    return cluster, state


@pytest.mark.parametrize("scheme", ["backup_tree", "tree_repair"])
def test_exactly_once_delivery_across_failure(scheme):
    cluster, state = _run_broadcast(scheme, _victim_failure())
    assert sorted(state["delivered"]) == list(range(1, N))
    assert state["dups"] == [], (
        f"duplicate host deliveries after recovery: {state['dups']}"
    )
    # Every delivery-guarantee window closed once the failure healed.
    for i in range(N):
        assert cluster.node(i).mcast.pending_retransmit_state() == {}, i


def test_tree_repair_counters_show_regraft_not_switch():
    registry = MetricsRegistry()
    _run_broadcast("tree_repair", _victim_failure(), registry=registry)
    assert registry.value("mcast.recovery.repairs") >= 1
    assert registry.value("mcast.recovery.regrafts") >= 1
    assert registry.value("mcast.recovery.tree_switches") == 0
    assert registry.value("net.failures.link_down") == 1
    assert registry.value("net.failures.link_up") == 1


def test_backup_tree_counters_show_switch_not_regraft():
    registry = MetricsRegistry()
    _run_broadcast("backup_tree", _victim_failure(), registry=registry)
    assert registry.value("mcast.recovery.tree_switches") == 1
    assert registry.value("mcast.recovery.repairs") == 0


@pytest.mark.parametrize("scheme", ["backup_tree", "tree_repair"])
def test_leaf_failure_recovers_without_rewiring(scheme):
    """A leaf's link down strands no subtree: no regraft or switch is
    needed, only window replay once the link heals."""
    tree = build_tree(0, list(range(1, N)), shape="binomial")
    leaf = max(tree.leaves())
    registry = MetricsRegistry()
    cluster, state = _run_broadcast(
        scheme, _victim_failure(victim=leaf), registry=registry
    )
    assert sorted(state["delivered"]) == list(range(1, N))
    assert state["dups"] == []
    assert registry.value("mcast.recovery.regrafts") == 0
    assert registry.value("mcast.recovery.tree_switches") == 0


def test_no_failures_means_no_recovery_activity():
    registry = MetricsRegistry()
    cluster, state = _run_broadcast("tree_repair", None, registry=registry)
    assert sorted(state["delivered"]) == list(range(1, N))
    for name in registry.names():
        assert not name.startswith("mcast.recovery."), name
