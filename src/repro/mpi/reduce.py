"""MPI_Allreduce: host-based and NIC-based implementations.

Host-based: binomial reduction to rank 0 (each intermediate process
receives its children's partials, combines on the host, and forwards),
then a broadcast of the result — the classic MPICH composition.

NIC-based (the paper's future work, implemented in
:mod:`repro.coll.engine`): contributions combine on the LANais up the
multicast group tree and the result rides the forwarding machinery down,
with no host involvement at intermediate nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.coll.engine import REDUCE_OPS
from repro.errors import ReproError
from repro.mpi.bcast import host_based_bcast, rank_binomial_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import RankContext

__all__ = ["host_allreduce", "nic_allreduce", "ensure_collective_group"]

_REDUCE_TAG = -44


def host_allreduce(
    ctx: "RankContext", value: Any, op: str = "sum"
) -> Generator[Any, Any, Any]:
    """Binomial reduce-to-0 followed by a host-based broadcast."""
    if op not in REDUCE_OPS:
        raise ReproError(f"unknown reduce op {op!r}")
    combine = REDUCE_OPS[op]
    yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
    tree = rank_binomial_tree(ctx.comm.size, 0)
    partial = value
    # Children send before their parent combines; receive in reverse
    # send order (deepest subtree last) is not required — matching by
    # source keeps it simple and correct.
    for child in tree.children_of(ctx.rank):
        entry = yield from ctx.recv(source=child, tag=_REDUCE_TAG)
        partial = combine(partial, entry["payload"])
    parent = tree.parent_of(ctx.rank)
    if parent is not None:
        yield from ctx.send(parent, 16, tag=_REDUCE_TAG, payload=partial)
    result = yield from host_based_bcast(
        ctx, root=0, size=16, payload=partial if ctx.rank == 0 else None
    )
    return result


def ensure_collective_group(ctx: "RankContext") -> Generator[Any, Any, int]:
    """The rank-0-rooted group NIC collectives run over (demand-created
    through the same machinery as broadcast groups)."""
    from repro.mpi.bcast import _create_group

    group_id = ctx.bcast_groups.get(0)
    if group_id is None:
        group_id = yield from _create_group(ctx, 0)
    return group_id


def nic_allreduce(
    ctx: "RankContext", value: Any, op: str = "sum"
) -> Generator[Any, Any, Any]:
    """NIC-based allreduce over the collective group tree."""
    yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
    group_id = yield from ensure_collective_group(ctx)
    result = yield from ctx.node.coll.allreduce(
        ctx.port, group_id, value, op=op
    )
    return result


def nic_barrier(ctx: "RankContext") -> Generator:
    """NIC-based barrier over the collective group tree."""
    yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
    group_id = yield from ensure_collective_group(ctx)
    yield from ctx.node.coll.barrier(ctx.port, group_id)
