"""NIC-based multicast — the paper's contribution, plus its baselines.

The proposed scheme consists of:

* a **NIC-based multisend** (``multisend``): one host request, one
  host→NIC DMA, then the NIC emits a replica per destination by rewriting
  the packet header in a GM-2 descriptor callback;
* **NIC-based forwarding** (``forward``): an intermediate NIC looks up
  the multicast group table and re-queues received packets to its
  children without host involvement, pipelining multi-packet messages;
* **one-to-many reliability** (``reliability``): per-group sequence
  numbers, an array of per-child acknowledged sequence numbers, and
  selective Go-back-N retransmission from registered host memory;
* **deadlock freedom** without credits, via per-group queues,
  receive-token transformation, and ID-ordered trees (``repro.trees``).

Baselines: host-based multiple unicasts (``hostbased``), the NIC-assisted
scheme (``nic_assisted``), LFC (``lfc``) and FM/MC (``fmmc``) credit
schemes, compared on the paper's feature axes in ``features``.  All of
them — proposed scheme included — are registered in ``schemes`` behind
one ``BoundScheme`` interface; ``run_scheme`` drives any of them
end-to-end by key.
"""

from repro.mcast.engine import McastEngine
from repro.mcast.group import (
    CreateGroupCommand,
    GroupState,
    GroupTable,
    McastSendCommand,
)
from repro.mcast.hostbased import host_based_multicast
from repro.mcast.manager import (
    demand_install_group,
    install_group,
    multicast,
    next_group_id,
    nic_based_multicast,
    run_scheme,
)
from repro.mcast.reliability import McastRecord
from repro.mcast.schemes import (
    BoundScheme,
    SchemeSpec,
    available_schemes,
    create_scheme,
    get_scheme,
    register_scheme,
    resolve_scheme,
)

__all__ = [
    # engine and NIC-resident state
    "CreateGroupCommand",
    "GroupState",
    "GroupTable",
    "McastEngine",
    "McastRecord",
    "McastSendCommand",
    # host-side group management and one-shot drivers
    "demand_install_group",
    "install_group",
    "multicast",
    "next_group_id",
    "nic_based_multicast",
    "run_scheme",
    # baselines
    "host_based_multicast",
    # the scheme registry
    "BoundScheme",
    "SchemeSpec",
    "available_schemes",
    "create_scheme",
    "get_scheme",
    "register_scheme",
    "resolve_scheme",
]
