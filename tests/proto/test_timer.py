"""RetransmitTimer regression tests: cancellation storms stay O(1).

The serving workload arms and defuses retransmission timers once per
window round-trip — thousands of times per run, with almost no real
timeouts.  These tests pin the Kernel v3 contract for that regime: a
window that is always acked before its deadline produces *zero* stale
fires (the wheel cancellation removes the pop before it reaches the
event loop) and bounded counter growth (one scheduled timer and one
cancellation per burst, regardless of how many records each burst
arms).
"""

from repro.perf import KERNEL_COUNTERS
from repro.proto.timer import RetransmitTimer
from repro.proto.window import NEVER, SendWindow
from repro.sim import Simulator


class _Record:
    __slots__ = ("seq", "deadline")

    def __init__(self, seq: int):
        self.seq = seq
        self.deadline = NEVER


def test_cancellation_storm_zero_stale_fires_and_bounded_counters():
    """200 bursts of 4 records, all acked before the 400 µs deadline."""
    sim = Simulator()
    window = SendWindow()
    expired = []
    timer = RetransmitTimer(sim, 400.0, window, expired.append)
    bursts, burst_size = 200, 4

    def driver():
        seq = 0
        for _ in range(bursts):
            records = [_Record(seq + i) for i in range(burst_size)]
            seq += burst_size
            for record in records:
                window.add(record)
                timer.arm(record)
            # The cumulative ack lands well before the deadline.
            yield sim.timeout(100.0)
            for record in records:
                window.pop(record.seq)
            timer.defuse()

    KERNEL_COUNTERS.reset()
    sim.process(driver())
    sim.run()
    snap = KERNEL_COUNTERS.snapshot()

    assert expired == []
    assert timer.idle
    # Zero stale pops: every would-be fire was cancelled in the wheel.
    assert snap["timer_fires"] == 0
    assert snap["timer_stale_fires"] == 0
    # Bounded heap traffic: one schedule + one cancel per burst, however
    # many records the burst armed (the lazy per-window design), and
    # every cancelled timer died inside the wheel.
    assert snap["timers_armed"] == bursts * burst_size
    assert snap["timers_scheduled"] == bursts
    assert snap["timers_cancelled"] == bursts
    assert snap["wheel_cancelled"] >= bursts


def test_real_timeout_still_fires_after_storm():
    """Defusing never disarms a window that still has unacked records."""
    sim = Simulator()
    window = SendWindow()
    expired = []
    timer = RetransmitTimer(sim, 400.0, window, expired.append)

    def driver():
        # A churn of acked records first...
        for seq in range(50):
            record = _Record(seq)
            window.add(record)
            timer.arm(record)
            yield sim.timeout(10.0)
            window.pop(record.seq)
            timer.defuse()
        # ...then one record nobody acks.
        lost = _Record(1000)
        window.add(lost)
        timer.arm(lost)
        yield sim.timeout(1000.0)

    KERNEL_COUNTERS.reset()
    sim.process(driver())
    sim.run()

    assert [record.seq for record in expired] == [1000]
    assert expired[0].deadline == NEVER  # swept until explicitly re-armed
    assert KERNEL_COUNTERS.timer_stale_fires == 0


def test_defuse_after_wheel_flush_counts_skip_not_double_cancel():
    """Rearm-after-cancel when the ack lands inside the final wheel slot.

    With a 400 µs timeout the deadline's level-0 slot (width 64 µs)
    flushes at 384 µs — an ack at 399 µs defuses a handle that is
    already live in the heap.  The defuse is still one
    ``timers_cancelled`` and zero stale fires, but the handle's disposal
    must land in ``wheel_skipped`` (discarded at pop), not be
    double-booked as both ``wheel_flushed`` *and* an invisible cancel:
    ``timers_cancelled == wheel_cancelled + wheel_skipped`` holds once
    the queue drains.
    """
    sim = Simulator()
    window = SendWindow()
    expired = []
    timer = RetransmitTimer(sim, 400.0, window, expired.append)

    def driver():
        first = _Record(1)
        window.add(first)
        timer.arm(first)  # deadline 400, slot flushes at 384
        yield sim.timeout(399.0)
        window.pop(first.seq)
        timer.defuse()  # handle already flushed to the heap
        # Rearm-after-cancel: a fresh record straight away, acked well
        # before its deadline so this cancel dies inside the wheel.
        second = _Record(2)
        window.add(second)
        timer.arm(second)
        yield sim.timeout(10.0)
        window.pop(second.seq)
        timer.defuse()

    KERNEL_COUNTERS.reset()
    sim.process(driver())
    sim.run()
    snap = KERNEL_COUNTERS.snapshot()

    assert expired == []
    assert snap["timer_fires"] == 0
    assert snap["timer_stale_fires"] == 0
    assert snap["timers_cancelled"] == 2
    # First defuse: slot had flushed, the pop is skipped without
    # dispatch.  Second defuse: dropped inside the wheel at flush.
    assert snap["wheel_skipped"] == 1
    assert snap["wheel_cancelled"] == 1
    assert snap["timers_cancelled"] == (
        snap["wheel_cancelled"] + snap["wheel_skipped"]
    )
    # Every wheel entry is accounted for exactly once.
    assert snap["wheel_armed"] == (
        snap["wheel_flushed"] + snap["wheel_cancelled"]
    )


def test_defuse_is_a_noop_with_records_outstanding():
    sim = Simulator()
    window = SendWindow()
    timer = RetransmitTimer(sim, 400.0, window, lambda record: None)

    def driver():
        record = _Record(0)
        window.add(record)
        timer.arm(record)
        yield sim.timeout(1.0)
        timer.defuse()  # records remain: must not cancel
        assert not timer.idle

    sim.process(driver())
    sim.run(until=2.0)
