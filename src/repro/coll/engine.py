"""NIC-resident tree aggregation: barrier and allreduce on the LANai.

Protocol (per multicast group, per *epoch* — one epoch per collective
call):

* every host posts its contribution to its NIC (a host command);
* a NIC that has its host's contribution **and** an UP message from each
  child combines them (``nic_reduce_combine`` per combine) and sends one
  UP to its parent;
* the root, once complete, starts the DOWN wave carrying the result;
  each NIC delivers the result to its host (completion event) and
  forwards DOWN to its children;
* reliability: UP is resent while no DOWN for that epoch has arrived;
  DOWN is resent to children that have not DOWN_ACKed.  All messages are
  idempotent per epoch, so duplicates are harmless.

A barrier is an allreduce whose values are ``None`` and whose combine is
a no-op — it completes when everyone has arrived, exactly like the
NIC-level barrier of the paper's reference [6].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import GroupError, ReproError
from repro.net.packet import Packet, PacketType, make_packet
from repro.nic.descriptor import PacketDescriptor
from repro.nic.lanai import HostCommand, TX_PRIO_ACK
from repro.sim.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.node import Node
    from repro.mcast.group import GroupState

__all__ = ["CollectiveEngine", "CollContributeCommand", "REDUCE_OPS"]

#: Supported reduction operators.
REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
    "prod": lambda a, b: a * b,
    "barrier": lambda a, b: None,
}


@dataclass
class CollContributeCommand(HostCommand):
    """Host → NIC: this host's contribution to (group, epoch)."""

    group_id: int = -1
    epoch: int = 0
    value: Any = None
    op: str = "barrier"


@dataclass
class _EpochState:
    op: str
    host_value: Any = None
    host_arrived: bool = False
    child_values: dict[int, Any] = field(default_factory=dict)
    up_last_sent: float = -1.0
    up_generation: int = 0
    result: Any = None
    down_started: bool = False
    down_acked: set[int] = field(default_factory=set)
    down_generation: int = 0
    delivered: bool = False


class _GroupColl:
    """Per-group collective state on one NIC."""

    def __init__(self, group: "GroupState"):
        self.group = group
        self.epochs: dict[int, _EpochState] = {}
        #: epochs fully completed (result delivered + children acked)
        self.completed: int = 0
        #: results of recently completed epochs, kept so a duplicate UP
        #: from a child whose DOWN crossed our ack can be answered
        #: without resurrecting state
        self.finished_results: dict[int, Any] = {}

    def epoch(self, epoch: int, op: str) -> _EpochState:
        state = self.epochs.get(epoch)
        if state is None:
            state = _EpochState(op=op)
            self.epochs[epoch] = state
        return state


class CollectiveEngine:
    """One node's NIC-based collective support."""

    def __init__(self, node: "Node"):
        self.node = node
        self.nic = node.nic
        self.sim = node.sim
        self.cost = node.cost
        self.mcast = node.mcast
        self._state: dict[int, _GroupColl] = {}
        #: (group, epoch) -> host wait event, fired with the result
        self._waiters: dict[tuple[int, int], SimEvent] = {}
        #: host-side epoch counters per group
        self._next_epoch: dict[int, int] = {}
        self.up_resends = 0
        self.down_resends = 0
        self.unknown_group_dropped = 0

        self.nic.command_handlers[CollContributeCommand] = self._handle_contribute
        self.nic.packet_handlers[PacketType.CONTROL] = self._handle_control

    # -- host API -----------------------------------------------------------
    def allreduce(
        self, port, group_id: int, value: Any, op: str = "sum", caller: Any = None
    ) -> Generator[Any, Any, Any]:
        """Blocking NIC-based allreduce over the group's tree.

        Host program usage: ``result = yield from
        node.coll.allreduce(port, gid, value)``.
        """
        port._check_owner(caller)
        if op not in REDUCE_OPS:
            raise ReproError(f"unknown reduce op {op!r}")
        epoch = self._next_epoch.get(group_id, 0) + 1
        self._next_epoch[group_id] = epoch
        done = self.sim.event(name=f"coll[{self.nic.id}]:{group_id}@{epoch}")
        self._waiters[(group_id, epoch)] = done
        yield self.sim.timeout(self.cost.host_send_post)
        self.nic.post_command(
            CollContributeCommand(
                port=port.port_num, group_id=group_id, epoch=epoch,
                value=value, op=op,
            )
        )
        result = yield done
        yield self.sim.timeout(self.cost.host_event_dispatch)
        return result

    def barrier(self, port, group_id: int, caller: Any = None) -> Generator:
        """Blocking NIC-based barrier (degenerate allreduce)."""
        yield from self.allreduce(port, group_id, None, op="barrier",
                                  caller=caller)

    # -- NIC-side state machine -------------------------------------------------
    def _group_coll(self, group_id: int) -> _GroupColl:
        state = self._state.get(group_id)
        if state is None:
            group = self.mcast.table.get(group_id)
            if group is None:
                raise GroupError(
                    f"collective on unknown group {group_id} "
                    f"(NIC {self.nic.id})"
                )
            state = _GroupColl(group)
            self._state[group_id] = state
        return state

    def _handle_contribute(self, cmd: CollContributeCommand) -> Generator:
        yield from self.nic.processing(self.cost.nic_group_lookup)
        coll = self._group_coll(cmd.group_id)
        state = coll.epoch(cmd.epoch, cmd.op)
        state.host_arrived = True
        state.host_value = cmd.value
        yield from self._advance(cmd.group_id, coll, cmd.epoch)

    def _handle_control(self, pkt: Packet, _buf: Any) -> Generator:
        h = pkt.header
        info = h.info
        if "coll" not in info:
            return  # not ours (other CONTROL users may exist)
        yield from self.nic.processing(self.cost.nic_recv_processing)
        group_id = h.group
        if self.mcast.table.get(group_id) is None:
            # The group's membership has not reached this NIC yet (a
            # fast peer raced the demand-driven install); drop — the
            # sender's idempotent resend recovers.
            self.unknown_group_dropped += 1
            return
        coll = self._group_coll(group_id)
        kind = info["coll"]
        epoch = info["epoch"]
        if kind == "up":
            if epoch <= coll.completed:
                # Our DOWN crossed this child's resent UP: answer from
                # the finished-results cache, never resurrect state.
                if epoch in coll.finished_results:
                    yield from self._send_control(
                        h.src, group_id,
                        {"coll": "down", "epoch": epoch, "op": info["op"],
                         "value": coll.finished_results[epoch]},
                    )
                return
            state = coll.epoch(epoch, info["op"])
            if h.src not in state.child_values:
                state.child_values[h.src] = info.get("value")
            yield from self._advance(group_id, coll, epoch)
        elif kind == "down":
            # Ack the parent (idempotent) so it stops resending.
            yield from self._send_control(
                coll.group.parent, group_id,
                {"coll": "down_ack", "epoch": epoch},
            )
            if epoch <= coll.completed:
                return  # duplicate of an already-finished epoch
            state = coll.epoch(epoch, info["op"])
            if not state.down_started:
                state.result = info.get("value")
                state.down_started = True
                yield from self._deliver_and_descend(group_id, coll, epoch)
        elif kind == "down_ack":
            state = coll.epochs.get(epoch)
            if state is not None:
                state.down_acked.add(h.src)
                self._maybe_complete_epoch(coll, epoch)

    def _advance(self, group_id: int, coll: _GroupColl, epoch: int) -> Generator:
        """Combine and move the UP wave if (host + all children) arrived."""
        state = coll.epochs[epoch]
        group = coll.group
        if not state.host_arrived:
            return
        if set(state.child_values) != set(group.children):
            return
        combine = REDUCE_OPS[state.op]
        value = state.host_value
        for child in group.children:
            yield from self.nic.processing(self.cost.nic_reduce_combine)
            value = combine(value, state.child_values[child])
        if group.is_root:
            state.result = value
            state.down_started = True
            yield from self._deliver_and_descend(group_id, coll, epoch)
        else:
            yield from self._send_up(group_id, coll, epoch, value)

    def _send_up(self, group_id: int, coll: _GroupColl, epoch: int,
                 value: Any) -> Generator:
        state = coll.epochs[epoch]
        state.up_last_sent = self.sim.now
        state.up_generation += 1
        generation = state.up_generation
        yield from self._send_control(
            coll.group.parent, group_id,
            {"coll": "up", "epoch": epoch, "op": state.op, "value": value},
        )
        # Resend until the DOWN wave for this epoch arrives.
        self.sim.call_at(
            self.sim.now + self.cost.ack_timeout,
            lambda: self._up_timeout(group_id, epoch, generation, value),
        )

    def _up_timeout(self, group_id: int, epoch: int, generation: int,
                    value: Any) -> None:
        coll = self._state.get(group_id)
        state = coll.epochs.get(epoch) if coll else None
        if state is None or state.down_started:
            return
        if state.up_generation != generation:
            return
        self.up_resends += 1
        self.sim.process(
            self._send_up(group_id, coll, epoch, value),
            name=f"{self.nic.name}.coll_up_resend",
        )

    def _deliver_and_descend(self, group_id: int, coll: _GroupColl,
                             epoch: int) -> Generator:
        state = coll.epochs[epoch]
        group = coll.group
        if not state.delivered:
            state.delivered = True
            yield from self.nic.processing(self.cost.nic_event_post)
            waiter = self._waiters.pop((group_id, epoch), None)
            if waiter is not None:
                waiter.succeed(state.result)
        if group.children:
            yield from self._send_down(group_id, coll, epoch)
        self._maybe_complete_epoch(coll, epoch)

    def _send_down(self, group_id: int, coll: _GroupColl,
                   epoch: int) -> Generator:
        state = coll.epochs[epoch]
        state.down_generation += 1
        generation = state.down_generation
        for child in coll.group.children:
            if child in state.down_acked:
                continue
            yield from self._send_control(
                child, group_id,
                {"coll": "down", "epoch": epoch, "op": state.op,
                 "value": state.result},
            )
        self.sim.call_at(
            self.sim.now + self.cost.ack_timeout,
            lambda: self._down_timeout(group_id, epoch, generation),
        )

    def _down_timeout(self, group_id: int, epoch: int, generation: int) -> None:
        coll = self._state.get(group_id)
        state = coll.epochs.get(epoch) if coll else None
        if state is None or state.down_generation != generation:
            return
        if set(state.down_acked) >= set(coll.group.children):
            return
        self.down_resends += 1
        self.sim.process(
            self._send_down(group_id, coll, epoch),
            name=f"{self.nic.name}.coll_down_resend",
        )

    def _maybe_complete_epoch(self, coll: _GroupColl, epoch: int) -> None:
        state = coll.epochs.get(epoch)
        if state is None or not state.delivered:
            return
        if set(state.down_acked) >= set(coll.group.children):
            state.down_generation += 1  # defuse timers
            del coll.epochs[epoch]
            coll.completed = max(coll.completed, epoch)
            coll.finished_results[epoch] = state.result
            # Bound the cache: anything older than a few epochs can no
            # longer be asked about (children completed it to finish us).
            for old in [e for e in coll.finished_results if e < epoch - 32]:
                del coll.finished_results[old]

    def _send_control(self, dst: int | None, group_id: int,
                      info: dict) -> Generator:
        assert dst is not None
        yield from self.nic.processing(self.cost.nic_ack_generation)
        pkt = make_packet(
            PacketType.CONTROL, self.nic.id, dst, self.nic.id,
            group=group_id,
            payload=8,
            info=dict(info),
        )
        self.nic.queue_tx(PacketDescriptor(pkt), TX_PRIO_ACK)
