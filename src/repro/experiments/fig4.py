"""Figure 4: MPI-level broadcast, NIC-based vs host-based MPICH-GM.

Paper headlines: improvement up to 2.02× for 8 KB messages over 16
nodes; similar trend to the GM level; a dip at 16,287 bytes (the
largest eager message) from the final-copy cost.
"""

from __future__ import annotations

from repro.experiments.parallel import SweepCell, run_cells
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import MPI_SIZES, measure_mpi_bcast
from repro.gm.params import GMCostModel

__all__ = ["run", "NODE_COUNTS"]

NODE_COUNTS = (4, 8, 16)


def _cell(
    n: int, size: int, iterations: int, cost: GMCostModel
) -> tuple[float, float]:
    """One (rank count, message size) point: hb and nb bcast latency."""
    hb = measure_mpi_bcast(n, size, nic=False, iterations=iterations, cost=cost)
    nb = measure_mpi_bcast(n, size, nic=True, iterations=iterations, cost=cost)
    return hb, nb


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    sizes: list[int] | None = None,
    node_counts: tuple[int, ...] = NODE_COUNTS,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    sizes = sizes or ([4, 512, 8192, 16287] if quick else MPI_SIZES)
    iterations = 6 if quick else 20
    result = FigureResult(
        figure_id="fig4",
        title="MPI-level broadcast latency (µs) and improvement factor",
    )
    lat = {
        (scheme, n): Series(label=f"{scheme}-{n}")
        for scheme in ("HB", "NB")
        for n in node_counts
    }
    imp = {n: Series(label=f"factor-{n}") for n in node_counts}
    grid = [(size, n) for size in sizes for n in node_counts]
    cells = [
        SweepCell(
            figure="fig4",
            fn=_cell,
            args=(n, size, iterations, cost),
            label=f"fig4[n={n},size={size}]",
        )
        for size, n in grid
    ]
    for (size, n), (hb, nb) in zip(grid, run_cells(cells, jobs=jobs)):
        lat[("HB", n)].add(size, hb)
        lat[("NB", n)].add(size, nb)
        imp[n].add(size, hb / nb)
    result.series = [lat[("HB", n)] for n in node_counts]
    result.series += [lat[("NB", n)] for n in node_counts]
    result.series += [imp[n] for n in node_counts]
    if 16 in node_counts and 8192 in sizes:
        result.headlines["factor, 16 ranks, 8KB (paper: 2.02)"] = imp[
            16
        ].y_at(8192)
    if 16 in node_counts:
        small = [s for s in sizes if s <= 512]
        result.headlines["max factor, 16 ranks, <=512B (paper: 1.78)"] = max(
            imp[16].y_at(s) for s in small
        )
        if 16287 in sizes and 8192 in sizes:
            result.headlines[
                "factor drop 8KB -> 16287B (paper: dip present)"
            ] = imp[16].y_at(8192) - imp[16].y_at(16287)
    result.notes.append(
        "one iteration = barrier, then root bcast entry to last rank "
        "exit + measured 0-byte ack; first (group-creating) broadcast "
        "excluded as warmup, as in the paper's demand-driven design"
    )
    return result
