"""Named, deterministic random streams.

Every source of randomness in the stack (process skew, packet loss,
iteration jitter) draws from its own named stream so that adding a new
random consumer never perturbs existing experiments, and a master seed
reproduces everything bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master: int, name: str) -> int:
    """A stable 64-bit seed derived from ``(master, name)``."""
    digest = hashlib.sha256(f"{master}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Lazily creates one ``random.Random`` per stream name."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def names(self) -> list[str]:
        return sorted(self._streams)
