"""Partitioned scenario execution: spec-driven sharded runs.

Glue between the declarative layer and the conservative-parallel kernel
(:mod:`repro.sim.parallel`): build a :class:`PartitionPlan` from a
scenario's cluster config, construct one shard-local
:class:`~repro.cluster.Cluster` per shard, spawn each measurement
program on the shard owning its node, and drive everything through the
safe-window conductor — in-process, or one OS process per shard when
the spec says ``processes: true``.

The measurement programs here are line-for-line the serial harness
templates (:class:`repro.scenario.harness.Harness`): partitioned points
must reproduce serial values exactly, so the only differences are
*where* a program is spawned and that the multicast group id is pinned
(every shard must stamp the same id into packets, so the id cannot come
from the process-global allocator mid-run).
"""

from __future__ import annotations

from statistics import mean
from typing import TYPE_CHECKING, Any, Generator

from repro.cluster import Cluster, build_topology
from repro.mcast.schemes import create_scheme, get_scheme, resolve_scheme
from repro.scenario.harness import BroadcastResult
from repro.scenario.spec import ScenarioSpec
from repro.sim.engine import Simulator
from repro.sim.parallel import (
    PartitionPlan,
    ShardSet,
    run_sharded_processes,
)
from repro.trees import build_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.harness import Harness

__all__ = [
    "PINNED_GROUP_ID",
    "build_shard",
    "make_plan",
    "run_point_partitioned",
]

#: The group id partitioned single-group workloads install everywhere.
#: Shards allocate ids independently, so a pinned value is the only way
#: every shard's group table agrees with the ids stamped into packets.
PINNED_GROUP_ID = 1


def make_plan(spec: ScenarioSpec) -> PartitionPlan:
    """The spec's partition plan, from a scratch topology replica."""
    if spec.partition is None:
        raise ValueError("scenario spec has no partition section")
    topo = build_topology(Simulator(), spec.cluster)
    p = spec.partition
    return PartitionPlan.from_topology(
        topo, p.shards, partitioner=p.partitioner, seed=p.seed
    )


def build_shard(
    spec: ScenarioSpec,
    plan: PartitionPlan,
    shard_id: int,
    registry: Any = None,
    flight: Any = None,
) -> Cluster:
    """Shard *shard_id*'s cluster: local nodes only, links ownership-stamped.

    ``flight`` is a shard-private flight recorder (duck-typed; normally
    one ``FlightRecorder.fork()`` per shard — recorders must not be
    shared across shards, or conductor interleaving would scramble the
    append order the merge relies on).
    """
    cluster = Cluster(spec.cluster, local_nodes=plan.shard_nodes(shard_id))
    plan.bind(cluster.topology)
    if registry is not None:
        cluster.sim.metrics = registry
    if flight is not None:
        cluster.sim.flight = flight
    return cluster


class _PointShard:
    """One shard of a unicast/multisend measurement point.

    Doubles as the process-mode shard object: ``sim``/``network`` feed
    the conductor, ``result()`` returns the picklable per-shard lists.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        plan: PartitionPlan,
        shard_id: int,
        size: int,
        registry: Any = None,
        flight: Any = None,
    ):
        cluster = build_shard(spec, plan, shard_id, registry, flight=flight)
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.starts: list[float] = []
        self.deliveries: list[float] = []
        self.durations: list[float] = []
        #: broadcast kind: local member -> absolute host-delivery time
        self.delivery_map: dict[int, float] = {}
        kind = spec.workload.kind
        if kind == "unicast":
            self._setup_unicast(spec, size)
        elif kind == "multisend":
            self._setup_multisend(spec, size)
        elif kind == "broadcast":
            self._setup_broadcast(spec, size)
        else:  # pragma: no cover - guarded by PartitionSpec validation
            raise ValueError(f"kind {kind!r} has no partitioned point runner")

    # The program bodies below mirror Harness._run_unicast /
    # Harness._run_multisend exactly; see the module docstring.
    def _setup_unicast(self, spec: ScenarioSpec, size: int) -> None:
        cluster = self.cluster
        iterations = spec.measurement.iterations
        src = spec.workload.root
        dst = spec.destinations()[0]

        def receiver() -> Generator:
            port = cluster.port(dst)
            for _ in range(iterations):
                yield from port.receive()
                self.deliveries.append(cluster.now)
                yield from port.provide_receive_buffer()

        def sender() -> Generator:
            port = cluster.port(src)
            for _ in range(iterations):
                self.starts.append(cluster.now)
                handle = yield from port.send(dst, size)
                yield handle.done

        if cluster.is_local(src):
            cluster.spawn(sender())
        if cluster.is_local(dst):
            cluster.spawn(receiver())

    def _setup_multisend(self, spec: ScenarioSpec, size: int) -> None:
        cluster = self.cluster
        dests = spec.destinations()
        tree = build_tree(
            spec.workload.root, dests,
            shape=spec.workload.tree_shape or "flat",
        )
        warmup = spec.measurement.warmup
        total = warmup + spec.measurement.iterations

        # Every shard installs the same pinned group id into its local
        # members' tables (install_group skips remote nodes); only the
        # root's shard drives sends through the bound scheme.
        bound = create_scheme(
            resolve_scheme(spec.workload.scheme, context="multisend"),
            cluster, tree,
        )
        bound.group_id = PINNED_GROUP_ID
        bound.install()

        def root() -> Generator:
            for it in range(total):
                start = cluster.now
                yield from bound.send(size)
                if it >= warmup:
                    self.durations.append(cluster.now - start)

        def receiver(i: int) -> Generator:
            port = cluster.port(i)
            for _ in range(total):
                yield from port.receive()
                yield from port.provide_receive_buffer()

        if cluster.is_local(spec.workload.root):
            cluster.spawn(root())
        for i in dests:
            if cluster.is_local(i):
                cluster.spawn(receiver(i))

    def _setup_broadcast(self, spec: ScenarioSpec, size: int) -> None:
        """One-shot broadcast shard (mirrors Harness._run_broadcast).

        Every shard builds the same tree (deterministic from the spec)
        and binds the scheme with the pinned group id; self-healing
        schemes also construct identical TreeManager/RecoveryManager
        replicas per shard, each applying updates to local nodes only.
        There is no round barrier, so the conductor just runs every
        shard to quiescence.
        """
        cluster = self.cluster
        dests = spec.destinations()
        scheme_spec = get_scheme(
            resolve_scheme(spec.workload.scheme, context="multicast")
        )
        shape = spec.workload.tree_shape or scheme_spec.default_tree
        if scheme_spec.tree_uses_cost:
            tree = build_tree(
                spec.workload.root, dests, shape=shape,
                cost=spec.cluster.cost, size=size,
            )
        else:
            tree = build_tree(spec.workload.root, dests, shape=shape)
        bound = scheme_spec.cls(scheme_spec, cluster, tree)
        bound.group_id = PINNED_GROUP_ID
        bound.reliability = spec.reliability
        bound.install()

        def root() -> Generator:
            self.starts.append(cluster.now)
            yield from bound.post(size)

        def member(i: int) -> Generator:
            port = cluster.port(i)
            yield from port.receive()
            self.delivery_map[i] = cluster.now
            yield from port.provide_receive_buffer()
            yield from bound.relay(i, size)

        if cluster.is_local(spec.workload.root):
            cluster.spawn(root())
        for i in dests:
            if cluster.is_local(i):
                cluster.spawn(member(i))

    def result(self) -> dict[str, Any]:
        return {
            "starts": self.starts,
            "deliveries": self.deliveries,
            "durations": self.durations,
            "delivery_map": self.delivery_map,
        }


def _point_factory(shard_id: int, spec_json: str, size: int) -> _PointShard:
    """Process-mode shard builder (module-level: must pickle)."""
    spec = ScenarioSpec.from_json(spec_json)
    return _PointShard(spec, make_plan(spec), shard_id, size)


def _merge_point(kind: str, results: list[dict[str, Any]]) -> Any:
    """The point's serial-identical value from the per-shard lists."""
    if kind == "unicast":
        starts = sorted(t for r in results for t in r["starts"])
        deliveries = sorted(t for r in results for t in r["deliveries"])
        return mean(d - t0 for d, t0 in zip(deliveries, starts))
    if kind == "broadcast":
        start = min(t for r in results for t in r["starts"])
        deliveries: dict[int, float] = {}
        for r in results:
            deliveries.update(r["delivery_map"])
        return BroadcastResult(
            completion_us=max(deliveries.values(), default=start) - start,
            start_us=start,
            deliveries=deliveries,
        )
    durations = [d for r in results for d in r["durations"]]
    return mean(durations)


def run_point_partitioned(harness: "Harness", size: int) -> Any:
    """One partitioned unicast/multisend/broadcast point.

    Unicast/multisend values are serial-identical by construction.
    Broadcast points are self-deterministic per shard count (same spec
    and seed replay byte-identically at a given shard count); failure
    detection falls inside different conductor safe windows at
    different shard counts, so exact serial equality is only promised
    for failure-free runs.
    """
    spec = harness.spec
    plan = make_plan(spec)
    kind = spec.workload.kind
    if spec.partition.processes:
        # Process mode runs flight-detached: per-worker recorders would
        # need their events piped back; in-process mode is the traced
        # reference (identical schedules, so nothing is lost).
        results = run_sharded_processes(
            _point_factory, (spec.to_json(), size), plan
        )
        return _merge_point(kind, results)
    flight = getattr(harness, "flight", None)
    shards = [
        _PointShard(
            spec, plan, sid, size, registry=harness.registry,
            flight=flight.fork() if flight is not None else None,
        )
        for sid in range(plan.n_shards)
    ]
    ShardSet(
        plan,
        [s.sim for s in shards],
        [s.network for s in shards],
    ).run()
    if flight is not None:
        from repro.sim.parallel import merge_flight_events

        flight.absorb(merge_flight_events([s.sim for s in shards]))
    return _merge_point(kind, [s.result() for s in shards])
