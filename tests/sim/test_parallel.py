"""Unit tests for the conservative-parallel kernel pieces.

The end-to-end determinism proofs (golden trace, fig-3 table) live in
``test_parallel_golden.py``; this file covers the mechanisms — partition
plans, ownership, lookahead, the cut-scan cache, ``run_window``,
``PartitionSpec`` validation, and the partitioned serving path across
both conductor modes.
"""

import math

import pytest

from repro.errors import ConfigError
from repro.net import clos, line, single_switch
from repro.sim import Simulator
from repro.sim.parallel import PARTITIONERS, PartitionPlan, ShardSet

BW = 250.0
LINK_LAT = 0.1
HOP_LAT = 0.3


def make_topo(kind, n, **kw):
    sim = Simulator()
    builder = {"single": single_switch, "clos": clos, "line": line}[kind]
    return sim, builder(sim, n, BW, LINK_LAT, HOP_LAT, **kw)


class TestPartitionPlan:
    def test_contiguous_balance(self):
        _, topo = make_topo("single", 10)
        plan = PartitionPlan.from_topology(topo, 3, partitioner="contiguous")
        sizes = plan.shard_sizes()
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        # Contiguous means monotone shard ids over node ids.
        assert list(plan.node_to_shard) == sorted(plan.node_to_shard)

    @pytest.mark.parametrize("n_shards", [2, 3, 4, 7])
    def test_switch_affine_balance_and_nonempty(self, n_shards):
        _, topo = make_topo("clos", 64, radix=16)
        plan = PartitionPlan.from_topology(
            topo, n_shards, partitioner="switch_affine"
        )
        sizes = plan.shard_sizes()
        assert sum(sizes) == 64
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= 1

    def test_switch_affine_leaf_locality(self):
        """At most n_shards - 1 leaves straddle a shard boundary."""
        _, topo = make_topo("clos", 64, radix=16)
        n_shards = 4
        plan = PartitionPlan.from_topology(
            topo, n_shards, partitioner="switch_affine"
        )
        straddling = 0
        for sw in topo.switches:
            nics = [
                nbr[1]
                for nbr in topo.graph.neighbors(("switch", sw.switch_id))
                if nbr[0] == "nic"
            ]
            if nics and len({plan.node_to_shard[i] for i in nics}) > 1:
                straddling += 1
        assert straddling <= n_shards - 1

    def test_switch_affine_on_single_switch_fabric(self):
        """One leaf, many shards: the split must still balance."""
        _, topo = make_topo("single", 8)
        plan = PartitionPlan.from_topology(
            topo, 4, partitioner="switch_affine"
        )
        assert sorted(plan.shard_sizes()) == [2, 2, 2, 2]

    def test_seed_rotates_switch_affine(self):
        _, topo = make_topo("clos", 64, radix=16)
        a = PartitionPlan.from_topology(topo, 2, seed=0)
        b = PartitionPlan.from_topology(topo, 2, seed=1)
        assert a.node_to_shard != b.node_to_shard
        assert sorted(a.shard_sizes()) == sorted(b.shard_sizes())

    def test_plan_is_deterministic(self):
        _, topo1 = make_topo("clos", 64, radix=16)
        _, topo2 = make_topo("clos", 64, radix=16)
        p1 = PartitionPlan.from_topology(topo1, 4)
        p2 = PartitionPlan.from_topology(topo2, 4)
        assert p1.node_to_shard == p2.node_to_shard
        assert p1.switch_owner == p2.switch_owner
        assert p1.lookahead == p2.lookahead

    def test_nic_links_follow_nic(self):
        _, topo = make_topo("single", 8)
        plan = PartitionPlan.from_topology(topo, 2, partitioner="contiguous")
        for (u, v), _link in topo._links.items():
            if u[0] == "nic":
                assert plan.link_owner((u, v)) == plan.node_to_shard[u[1]]
            elif v[0] == "nic":
                assert plan.link_owner((u, v)) == plan.node_to_shard[v[1]]

    def test_switch_links_follow_source_switch(self):
        _, topo = make_topo("clos", 64, radix=16)
        plan = PartitionPlan.from_topology(topo, 4)
        for (u, v), _link in topo._links.items():
            if u[0] == "switch" and v[0] == "switch":
                assert plan.link_owner((u, v)) == plan.switch_owner[u[1]]

    def test_leaf_switch_follows_nic_majority(self):
        _, topo = make_topo("single", 8)
        plan = PartitionPlan.from_topology(topo, 2, partitioner="contiguous")
        # 4 NICs per shard attached to the one switch: tie resolves to
        # the lowest shard id.
        assert plan.switch_owner == (0,)

    def test_lookahead_single_switch(self):
        """All cut feeders on a single switch are NIC→switch links,
        which carry the link latency plus the crossbar hop latency."""
        _, topo = make_topo("single", 8)
        plan = PartitionPlan.from_topology(topo, 2, partitioner="contiguous")
        assert plan.n_cut_links > 0
        assert plan.lookahead == pytest.approx(LINK_LAT + HOP_LAT)

    def test_one_shard_has_no_cut(self):
        _, topo = make_topo("single", 8)
        plan = PartitionPlan.from_topology(topo, 1)
        assert plan.n_cut_links == 0
        assert plan.lookahead == math.inf

    def test_bind_stamps_owners(self):
        _, topo = make_topo("single", 4)
        plan = PartitionPlan.from_topology(topo, 2, partitioner="contiguous")
        plan.bind(topo)
        for key, link in topo._links.items():
            assert link.owner == plan.link_owner(key)

    def test_zero_latency_cut_rejected(self):
        sim = Simulator()
        topo = single_switch(sim, 4, BW, 0.0, 0.0)
        with pytest.raises(ConfigError, match="zero-latency"):
            PartitionPlan.from_topology(topo, 2, partitioner="contiguous")

    def test_unknown_partitioner_rejected(self):
        _, topo = make_topo("single", 4)
        with pytest.raises(ConfigError, match="unknown partitioner"):
            PartitionPlan.from_topology(topo, 2, partitioner="round_robin")

    def test_more_shards_than_nodes_rejected(self):
        _, topo = make_topo("single", 4)
        with pytest.raises(ConfigError):
            PartitionPlan.from_topology(topo, 5)

    def test_partitioner_registry_matches(self):
        assert set(PARTITIONERS) == {"contiguous", "switch_affine"}


class TestCutScanCache:
    def test_cut_scan_memoized(self):
        _, topo = make_topo("clos", 64, radix=16)
        plan = PartitionPlan.from_topology(topo, 4)
        cache = topo._partition_cut_cache
        assert len(cache) == 1
        # Same wiring, same partition: a rebuilt plan hits the cache.
        again = PartitionPlan.from_topology(topo, 4)
        assert topo._partition_cut_cache is cache
        assert len(cache) == 1
        assert again.lookahead == plan.lookahead

    def test_cable_invalidates_cut_scan(self):
        _, topo = make_topo("line", 6, nodes_per_switch=2)
        version = topo.version
        plan = PartitionPlan.from_topology(topo, 2, partitioner="contiguous")
        old_key = next(iter(topo._partition_cut_cache))
        topo.cable(("switch", 0), ("switch", 2))
        assert topo.version > version
        rebuilt = PartitionPlan.from_topology(
            topo, 2, partitioner="contiguous"
        )
        new_key = next(iter(topo._partition_cut_cache))
        assert new_key != old_key
        assert len(topo._partition_cut_cache) == 1
        assert rebuilt.n_cut_links != plan.n_cut_links or (
            rebuilt.lookahead == plan.lookahead
        )

    def test_cable_invalidates_route_cache(self):
        _, topo = make_topo("line", 6, nodes_per_switch=2)
        before = topo.route(0, 5)
        hops_before = len(before)
        topo.cable(("switch", 0), ("switch", 2))
        after = topo.route(0, 5)
        assert after is not before
        assert len(after) < hops_before  # the shortcut is used

    def test_network_route_cache_follows_version(self):
        from repro.net import Network

        sim, topo = make_topo("line", 6, nodes_per_switch=2)
        net = Network(sim, topo)
        assert net._topo_version == topo.version
        topo.cable(("switch", 0), ("switch", 2))
        assert net._topo_version != topo.version  # resyncs on next lookup


class TestRunWindow:
    def test_processes_strictly_before_horizon(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_callback(t, lambda t=t: seen.append(t))
        sim.run_window(3.0)
        assert seen == [1.0, 2.0]
        assert sim.now == 2.0  # clock rests on the last processed event
        sim.run_window(3.5)
        assert seen == [1.0, 2.0, 3.0]

    def test_clock_not_bumped_to_horizon(self):
        """Cross-shard messages due >= horizon stay schedulable."""
        sim = Simulator()
        sim.schedule_callback(1.0, lambda: None)
        sim.run_window(5.0)
        assert sim.now == 1.0
        sim.schedule_callback(5.0, lambda: None)  # must not raise

    def test_empty_window_is_noop(self):
        sim = Simulator()
        hits = []
        sim.schedule_callback(10.0, lambda: hits.append(1))
        sim.run_window(5.0)
        assert hits == [] and sim.now == 0.0

    def test_past_horizon_rejected(self):
        sim = Simulator()
        sim.schedule_callback(1.0, lambda: None)
        sim.run(until=2.0)
        with pytest.raises(ValueError):
            sim.run_window(1.0)

    def test_window_vs_run_until_boundary(self):
        """run(until=t) is inclusive at t; run_window(t) is exclusive."""
        a, b = Simulator(), Simulator()
        hits_a, hits_b = [], []
        a.schedule_callback(2.0, lambda: hits_a.append(1))
        b.schedule_callback(2.0, lambda: hits_b.append(1))
        a.run(until=2.0)
        b.run_window(2.0)
        assert hits_a == [1] and hits_b == []


class TestShardSet:
    def test_shape_mismatch_rejected(self):
        _, topo = make_topo("single", 4)
        plan = PartitionPlan.from_topology(topo, 2, partitioner="contiguous")
        with pytest.raises(ConfigError):
            ShardSet(plan, [Simulator()], [])


class TestPartitionSpec:
    def test_round_trip(self):
        from repro.scenario.spec import PartitionSpec

        spec = PartitionSpec(
            shards=4, partitioner="contiguous", seed=3, processes=True
        )
        assert PartitionSpec.from_dict(spec.to_dict()) == spec

    def test_defaults(self):
        from repro.scenario.spec import PartitionSpec

        spec = PartitionSpec()
        assert spec.shards == 2
        assert spec.partitioner == "switch_affine"
        assert spec.processes is False

    def test_bad_partitioner_rejected(self):
        from repro.scenario.spec import PartitionSpec

        with pytest.raises(ConfigError):
            PartitionSpec(partitioner="hash")

    def test_non_partitionable_kind_rejected(self):
        from dataclasses import replace

        from repro.scenario.spec import PartitionSpec, multicast_point

        spec = multicast_point(n_nodes=8, size=1024, scheme="nb")
        with pytest.raises(ConfigError):
            replace(spec, partition=PartitionSpec(shards=2))

    def test_serving_churn_with_partition_rejected(self):
        from dataclasses import replace

        from repro.scenario.spec import (
            PartitionSpec,
            TrafficSpec,
            serving_point,
        )

        spec = serving_point(
            n_nodes=16, traffic=TrafficSpec(churn_interval_us=1000.0)
        )
        with pytest.raises(ConfigError):
            replace(spec, partition=PartitionSpec(shards=2))

    def test_more_shards_than_nodes_rejected(self):
        from dataclasses import replace

        from repro.scenario.spec import PartitionSpec, unicast_point

        spec = unicast_point()
        with pytest.raises(ConfigError):
            replace(spec, partition=PartitionSpec(shards=64))


class TestPartitionedServing:
    """Smoke-scale serving: serial, inline shards, and worker processes
    must all land on one snapshot (tie-free at this scale)."""

    @staticmethod
    def _spec(processes, shards=2):
        from dataclasses import replace

        from repro.scenario.spec import (
            PartitionSpec,
            TrafficSpec,
            serving_point,
        )

        spec = serving_point(
            n_nodes=16,
            traffic=TrafficSpec(
                duration_us=3_000.0,
                n_groups=4,
                group_size=5,
                rate_per_group=1 / 1_000.0,
                sizes=(4_096,),
                schemes=("nic_based", "host_based"),
                warmup_us=500.0,
            ),
            seed=5,
        )
        if shards is None:
            return spec
        return replace(
            spec,
            partition=PartitionSpec(shards=shards, processes=processes),
        )

    def test_inline_and_processes_match_serial(self):
        import repro.workload  # noqa: F401
        from repro.scenario import Harness

        serial = Harness(self._spec(None, shards=None)).run().values[0]
        inline = Harness(self._spec(False)).run().values[0]
        procs = Harness(self._spec(True)).run().values[0]
        assert serial.msgs_delivered > 0
        assert inline.snapshot() == serial.snapshot()
        assert procs.snapshot() == serial.snapshot()

    def test_four_shards_match_serial(self):
        import repro.workload  # noqa: F401
        from repro.scenario import Harness

        serial = Harness(self._spec(None, shards=None)).run().values[0]
        four = Harness(self._spec(False, shards=4)).run().values[0]
        assert four.snapshot() == serial.snapshot()

    def test_metrics_registry_merge_matches_inline(self):
        """Process-mode registries merge to the in-process totals."""
        import repro.workload  # noqa: F401
        from repro.obs.registry import MetricsRegistry
        from repro.workload.partitioned import run_serving_partitioned

        inline_reg = MetricsRegistry()
        run_serving_partitioned(self._spec(False), registry=inline_reg)
        proc_reg = MetricsRegistry()
        run_serving_partitioned(self._spec(True), registry=proc_reg)
        inline_counters = {
            name: inline_reg.value(name)
            for name in inline_reg.names()
            if type(inline_reg.get(name)).__name__ == "Counter"
        }
        proc_counters = {
            name: proc_reg.value(name)
            for name in proc_reg.names()
            if type(proc_reg.get(name)).__name__ == "Counter"
        }
        assert inline_counters == proc_counters
        assert inline_counters  # the run actually observed something


class TestRegistryMerge:
    def test_counter_gauge_histogram_merge(self):
        from repro.obs.registry import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x.count", 3)
        b.inc("x.count", 4)
        a.set_gauge("x.gauge", 7.0)
        b.set_gauge("x.gauge", 5.0)
        a.observe("x.hist", 10.0)
        b.observe("x.hist", 20.0)
        a.merge(b)
        assert a.value("x.count") == 7
        assert a.value("x.gauge") == 7.0
        hist = a.get("x.hist")
        assert hist.count == 2
        assert hist.total == 30.0

    def test_mismatched_histogram_bounds_rejected(self):
        from repro.obs.registry import MetricsError, MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0))
        b.histogram("h", buckets=(1.0, 3.0))
        b.observe("h", 1.5, buckets=(1.0, 3.0))
        with pytest.raises(MetricsError):
            a.merge(b)
