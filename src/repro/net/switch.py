"""Crossbar switch model.

Myrinet switches are wormhole-routed crossbars: a packet head is routed to
an output port after a small fixed delay, and the body streams behind it.
We model the switch structurally — it owns ports and contributes its
``hop_latency`` to every traversal — while channel contention lives on the
:class:`~repro.net.link.Link` occupancy of its attached cables (DESIGN.md
§3.2 explains why this packet-granularity cut-through model preserves the
behaviour the paper's protocols can observe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["CrossbarSwitch", "PortRef"]


@dataclass(frozen=True, slots=True)
class PortRef:
    """A (device, port-index) endpoint for a cable."""

    device: Union["CrossbarSwitch", int]  # switch object or NIC network id
    port: int


class CrossbarSwitch:
    """A radix-``radix`` crossbar switch.

    Ports are attached via :meth:`attach`; traversal timing uses
    ``hop_latency``.  The class tracks per-port peers so topology builders
    can validate wiring and experiments can introspect the fabric.
    """

    __slots__ = ("switch_id", "radix", "hop_latency", "_peers")

    def __init__(self, switch_id: int, radix: int, hop_latency: float):
        if radix < 2:
            raise ValueError(f"switch radix must be >= 2, got {radix}")
        if hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        self.switch_id = switch_id
        self.radix = radix
        self.hop_latency = hop_latency
        self._peers: dict[int, PortRef] = {}

    @property
    def ports_used(self) -> int:
        return len(self._peers)

    @property
    def free_ports(self) -> list[int]:
        return [p for p in range(self.radix) if p not in self._peers]

    def attach(self, port: int, peer: PortRef) -> None:
        """Wire *port* to *peer* (a NIC id or another switch's port)."""
        if not 0 <= port < self.radix:
            raise ValueError(
                f"port {port} out of range for radix-{self.radix} switch"
            )
        if port in self._peers:
            raise ValueError(f"port {port} already wired on switch {self.switch_id}")
        self._peers[port] = peer

    def peer(self, port: int) -> PortRef:
        return self._peers[port]

    def peers(self) -> dict[int, PortRef]:
        return dict(self._peers)

    def __repr__(self) -> str:
        return (
            f"<CrossbarSwitch {self.switch_id} radix={self.radix} "
            f"used={self.ports_used}>"
        )
