"""The network fabric: moves packets between attached NICs.

``Network.inject(packet)`` starts a cut-through traversal along the
source route: the packet head claims each link in order (FIFO contention),
pays the hop latency, and leaves the link occupied for the serialization
time behind it; the destination receives the packet one serialization time
after the head arrives.  Loss injection happens at delivery (a corrupted
packet is one the receiving NIC's CRC check throws away).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import RoutingError
from repro.net.fault import LossModel, NoLoss
from repro.net.packet import Packet
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.events import SimEvent

__all__ = ["Network"]


class Network:
    """Delivers packets over a :class:`~repro.net.topology.Topology`.

    NICs attach with a sink callable; ``inject`` is fire-and-forget (the
    NIC's transmit engine has already accounted for injection
    serialization by waiting on the first link through this traversal).
    """

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        loss: LossModel | None = None,
    ):
        self.sim = sim
        self.topology = topology
        self.loss = loss or NoLoss()
        self.loss.bind(sim)
        self._sinks: dict[int, Callable[[Packet], None]] = {}
        self.delivered = 0
        self.dropped = 0
        # Per-packet fast path: routes are static, so hold direct
        # references here (one dict probe per traversal) and fold the
        # bandwidth division into a multiply.
        self._routes: dict[tuple[int, int], list] = {}
        self._inv_bandwidth = 1.0 / topology.bandwidth

    def attach(self, nic_id: int, sink: Callable[[Packet], None]) -> None:
        """Register NIC *nic_id*'s receive handler."""
        if nic_id in self._sinks:
            raise ValueError(f"NIC {nic_id} already attached")
        if not 0 <= nic_id < self.topology.n_nodes:
            raise RoutingError(f"NIC id {nic_id} outside topology")
        self._sinks[nic_id] = sink

    def inject(
        self,
        packet: Packet,
        on_injected: Callable[[Packet], None] | None = None,
    ) -> "SimEvent":
        """Send *packet* from its header.src to header.dst.

        ``on_injected`` fires when the packet's tail has left the source
        NIC (the transmit DMA engine is done) — the moment a GM-2
        descriptor callback runs.  Returns the traversal process (an event
        triggering at delivery or drop).
        """
        if packet.dst not in self._sinks:
            raise RoutingError(f"no NIC attached at {packet.dst}")
        return self.sim.process(
            self._traverse(packet, on_injected), name=f"wire:{packet.uid}"
        )

    def _traverse(
        self,
        packet: Packet,
        on_injected: Callable[[Packet], None] | None = None,
    ) -> Generator[Any, Any, None]:
        key = (packet.src, packet.dst)
        links = self._routes.get(key)
        if links is None:
            links = self._routes[key] = self.topology.route(*key)
        ser = packet.wire_size * self._inv_bandwidth
        m = self.sim.metrics
        for hop, link in enumerate(links):
            # Uncontended links (the dominant case in every sweep) are
            # claimed inline — no Request, no grant event; only a busy
            # channel suspends the traversal on a claim event.
            if not link.claim_fast():
                blocked_at = self.sim.now
                yield link.claim_head()
                if m is not None:
                    m.observe("net.queue_wait_us", self.sim.now - blocked_at)
            link.account(packet)
            if m is not None:
                m.inc("net.link_bytes", packet.wire_size)
            # The channel is occupied for the serialization time (the tail
            # streams behind the head); propagation pipelines, so release
            # is scheduled now and the head crosses concurrently.
            link.hold_for(ser)
            if hop == 0 and on_injected is not None:
                self.sim.schedule_callback(
                    self.sim.now + ser, lambda: on_injected(packet)
                )
            yield self.sim.timeout(link.latency)
        # The destination has the full packet one serialization after the
        # head arrives.
        yield self.sim.timeout(ser)
        if self.loss.should_drop(packet, self.sim.now):
            self.dropped += 1
            if m is not None:
                m.inc("net.fault_drops")
            if self.sim.trace.enabled:
                self.sim.record(
                    "network",
                    "pkt_drop",
                    uid=packet.uid,
                    src=packet.src,
                    dst=packet.dst,
                    seq=packet.header.seq,
                    ptype=packet.header.ptype.value,
                )
            return
        self.delivered += 1
        if m is not None:
            m.inc("net.packets_delivered")
        if self.sim.trace.enabled:
            self.sim.record(
                "network",
                "pkt_deliver",
                uid=packet.uid,
                src=packet.src,
                dst=packet.dst,
                seq=packet.header.seq,
                ptype=packet.header.ptype.value,
            )
        self._sinks[packet.dst](packet)

    def min_latency(self, src: int, dst: int, wire_size: int) -> float:
        """Uncontended wire time for a packet of *wire_size* bytes."""
        return (
            self.topology.route_latency(src, dst)
            + wire_size * self._inv_bandwidth
        )
