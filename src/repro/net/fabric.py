"""The network fabric: moves packets between attached NICs.

``Network.inject(packet)`` starts a cut-through traversal along the
source route: the packet head claims each link in order (FIFO contention),
pays the hop latency, and leaves the link occupied for the serialization
time behind it; the destination receives the packet one serialization time
after the head arrives.  Loss injection happens at delivery (a corrupted
packet is one the receiving NIC's CRC check throws away).
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Callable

from repro.errors import RoutingError
from repro.net.fault import LossModel, NoLoss
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.sim.engine import _Callback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Network"]


class _Traversal:
    """One packet's cut-through walk, driven as a callback chain.

    The walk used to be a generator run as a :class:`Process`; at tens of
    thousands of packets per run the process boot/finish events and the
    generator resume machinery were a measurable slice of the kernel's
    serving-rate budget.  The chain keeps the *exact* event schedule of
    the generator version — the kick-off is an URGENT callback scheduled
    where the process boot event used to sit, and each hop arrival is a
    callback cell at precisely the ``(when, priority, seq)`` the hop's
    ``Timeout`` would have occupied — while paying one bare function call
    per event instead of a generator resume (and no finish event at all).
    """

    __slots__ = (
        "net", "sim", "packet", "links", "ser", "on_injected", "hop",
        "_blocked_at", "_claim_cb", "_tail_cb", "_deliver_cb",
        "_injected_cb",
    )

    def __init__(
        self,
        net: "Network",
        packet: Packet,
        links: list,
        on_injected: Callable[[Packet], None] | None,
    ):
        self.net = net
        self.sim = net.sim
        self.packet = packet
        self.links = links
        self.ser = packet.wire_size * net._inv_bandwidth
        self.on_injected = on_injected
        self.hop = 0
        self._blocked_at = 0.0
        self._claim_cb = self._claim
        self._tail_cb = self._tail
        self._deliver_cb = self._deliver
        self._injected_cb = self._injected

    def _claim(self) -> None:
        # Uncontended links (the dominant case in every sweep) are
        # claimed inline — no Request, no grant event; only a busy
        # channel parks the walk on a claim event.
        link = self.links[self.hop]
        if not link.up:
            # The cable (or an attached switch) died after this packet's
            # route was stamped: cut-through flits hit the dead port and
            # are discarded by the fabric, exactly like a Myrinet drain.
            self._drop_dead(link)
            return
        if link.claim_fast():
            self._cross(link)
        else:
            self._blocked_at = self.sim._now
            link.claim_head().callbacks.append(self._granted)

    def _granted(self, _ev) -> None:
        sim = self.sim
        m = sim.metrics
        if m is not None:
            m.observe("net.queue_wait_us", sim._now - self._blocked_at)
        fr = sim.flight
        if fr is not None:
            packet = self.packet
            tid = packet.header.trace_id
            if tid >= 0:
                fr.record(
                    sim._now, tid, "queue", packet.header.src, packet.uid,
                    packet.header.chunk,
                    {"wait": sim._now - self._blocked_at},
                )
        self._cross(self.links[self.hop])

    def _injected(self) -> None:
        self.on_injected(self.packet)

    def _drop_dead(self, link) -> None:
        net = self.net
        sim = self.sim
        packet = self.packet
        net.failure_dropped += 1
        m = sim.metrics
        if m is not None:
            m.inc("net.failure_drops")
        if sim.trace.enabled:
            sim.record(
                "network",
                "pkt_failure_drop",
                uid=packet.uid,
                src=packet.src,
                dst=packet.dst,
                seq=packet.header.seq,
                ptype=packet.header.ptype.value,
                link=link.name,
            )
        fr = sim.flight
        if fr is not None and packet.header.trace_id >= 0:
            fr.record(
                sim._now, packet.header.trace_id, "failure_drop",
                packet.dst, packet.uid, packet.header.chunk,
                {"link": link.name},
            )
        if self.hop == 0 and self.on_injected is not None:
            # The transmit DMA still serializes the frame into the dead
            # cable; the descriptor callback must fire at tail-out or
            # the NIC's transmit engine would wait on it forever.
            sim.schedule_callback(sim._now + self.ser, self._injected_cb)

    def _cross(self, link) -> None:
        sim = self.sim
        packet = self.packet
        ser = self.ser
        ws = packet.wire_size
        link.bytes_carried += ws
        link.packets_carried += 1
        m = sim.metrics
        if m is not None:
            m.inc("net.link_bytes", ws)
        # The channel is occupied for the serialization time (the tail
        # streams behind the head); propagation pipelines, so release
        # is scheduled now and the head crosses concurrently.  The
        # timers below inline ``schedule_callback`` — at several calls
        # per packet-hop the wrapper frames were a measurable slice of
        # the serving-rate budget.  Push order (release, injected, hop)
        # keeps the exact seq order the wrapped calls produced.
        now = sim._now
        heap = sim._heap
        freelist = sim._cb_freelist
        sseq = sim._seq
        if freelist:
            cell = freelist.pop()
            cell.fn = link._release_cb
        else:
            cell = _Callback(link._release_cb)
        _heappush(heap, (now + ser, 1, next(sseq), cell))
        if self.hop == 0 and self.on_injected is not None:
            if freelist:
                cell = freelist.pop()
                cell.fn = self._injected_cb
            else:
                cell = _Callback(self._injected_cb)
            _heappush(heap, (now + ser, 1, next(sseq), cell))
        self.hop += 1
        if self.hop < len(self.links):
            net = self.net
            if net._shard_id is not None:
                # Partitioned run: if the next link lives on another
                # shard, the hop becomes a timestamped inter-shard
                # message due exactly when this claim callback would
                # have run.  The feeder link just crossed terminates at
                # a switch, so ``link.latency`` ≥ the partition
                # lookahead — the message is always announced at least
                # one safe window ahead of its due time.
                owner = self.links[self.hop].owner
                if owner != net._shard_id:
                    net._post(owner, now + link.latency, packet, self.hop)
                    return
            fn = self._claim_cb
        else:
            fn = self._tail_cb
        when = now + link.latency
        if when > now:
            if freelist:
                cell = freelist.pop()
                cell.fn = fn
            else:
                cell = _Callback(fn)
            _heappush(heap, (when, 1, next(sseq), cell))
        else:
            # Zero-latency hop: same-instant NORMAL order must match
            # what schedule_callback would have produced (now-queue).
            sim.schedule_callback(when, fn)

    def _tail(self) -> None:
        # The destination has the full packet one serialization after the
        # head arrives.
        sim = self.sim
        freelist = sim._cb_freelist
        if freelist:
            cell = freelist.pop()
            cell.fn = self._deliver_cb
        else:
            cell = _Callback(self._deliver_cb)
        _heappush(sim._heap, (sim._now + self.ser, 1, next(sim._seq), cell))

    def _deliver(self) -> None:
        net = self.net
        sim = self.sim
        packet = self.packet
        m = sim.metrics
        if net.loss.should_drop(packet, sim._now):
            net.dropped += 1
            if m is not None:
                m.inc("net.fault_drops")
            if sim.trace.enabled:
                sim.record(
                    "network",
                    "pkt_drop",
                    uid=packet.uid,
                    src=packet.src,
                    dst=packet.dst,
                    seq=packet.header.seq,
                    ptype=packet.header.ptype.value,
                )
            fr = sim.flight
            if fr is not None and packet.header.trace_id >= 0:
                fr.record(
                    sim._now, packet.header.trace_id, "drop",
                    packet.dst, packet.uid, packet.header.chunk,
                )
            return
        net.delivered += 1
        if m is not None:
            m.inc("net.packets_delivered")
        if sim.trace.enabled:
            sim.record(
                "network",
                "pkt_deliver",
                uid=packet.uid,
                src=packet.src,
                dst=packet.dst,
                seq=packet.header.seq,
                ptype=packet.header.ptype.value,
            )
        fr = sim.flight
        if fr is not None and packet.header.trace_id >= 0:
            fr.record(
                sim._now, packet.header.trace_id, "deliver",
                packet.dst, packet.uid, packet.header.chunk,
                {"src": packet.src},
            )
        net._sinks[packet.dst](packet)


class Network:
    """Delivers packets over a :class:`~repro.net.topology.Topology`.

    NICs attach with a sink callable; ``inject`` is fire-and-forget (the
    NIC's transmit engine has already accounted for injection
    serialization by waiting on the first link through this traversal).
    """

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        loss: LossModel | None = None,
    ):
        self.sim = sim
        self.topology = topology
        self.loss = loss or NoLoss()
        self.loss.bind(sim)
        self._sinks: dict[int, Callable[[Packet], None]] = {}
        self.delivered = 0
        self.dropped = 0
        #: Packets discarded because a link/switch on their path was
        #: down (distinct from ``dropped``, the loss-model CRC drops).
        self.failure_dropped = 0
        # Per-packet fast path: routes are static, so hold direct
        # references here (one dict probe per traversal) and fold the
        # bandwidth division into a multiply.
        self._routes: dict[tuple[int, int], list] = {}
        self._topo_version = topology.version
        self._inv_bandwidth = 1.0 / topology.bandwidth
        # Partitioned execution (repro.sim.parallel): this network's
        # shard id and the conductor's message-post callable.  ``None``
        # when unpartitioned — the per-hop cost of partition awareness
        # in serial runs is a single None check in ``_Traversal._cross``.
        self._shard_id: int | None = None
        self._post: Callable[[int, float, Packet, int], None] | None = None

    def attach(self, nic_id: int, sink: Callable[[Packet], None]) -> None:
        """Register NIC *nic_id*'s receive handler."""
        if nic_id in self._sinks:
            raise ValueError(f"NIC {nic_id} already attached")
        if not 0 <= nic_id < self.topology.n_nodes:
            raise RoutingError(f"NIC id {nic_id} outside topology")
        self._sinks[nic_id] = sink

    def inject(
        self,
        packet: Packet,
        on_injected: Callable[[Packet], None] | None = None,
    ) -> None:
        """Send *packet* from its header.src to header.dst.

        ``on_injected`` fires when the packet's tail has left the source
        NIC (the transmit DMA engine is done) — the moment a GM-2
        descriptor callback runs.  The traversal itself is a callback
        chain (:class:`_Traversal`) kicked off by an URGENT callback in
        the heap slot the old traversal process's boot event occupied.
        """
        if packet.dst not in self._sinks and self._shard_id is None:
            # Partitioned shards hold sinks only for their local NICs;
            # remote destinations are legal (delivery happens on the
            # shard owning the final link, which is shard(dst)).
            raise RoutingError(f"no NIC attached at {packet.dst}")
        key = (packet.src, packet.dst)
        links = self._routes.get(key)
        if links is None or self._topo_version != self.topology.version:
            if self._topo_version != self.topology.version:
                # cable() rewired the fabric (or a failure transition
                # flipped link state) since these routes were cached;
                # shortest paths may have changed.
                self._routes.clear()
                self._topo_version = self.topology.version
            try:
                links = self._routes[key] = self.topology.route(*key)
            except RoutingError:
                topo = self.topology
                if not topo._down_edges and not topo._down_switches:
                    raise  # genuine misconfiguration, not a failure
                self._drop_unroutable(packet, on_injected)
                return
        walk = _Traversal(self, packet, links, on_injected)
        sim = self.sim
        fr = sim.flight
        if fr is not None and packet.header.trace_id >= 0:
            fr.record(
                sim._now, packet.header.trace_id, "inject",
                packet.src, packet.uid, packet.header.chunk,
                {"dst": packet.dst},
            )
        freelist = sim._cb_freelist
        if freelist:
            cell = freelist.pop()
            cell.fn = walk._claim_cb
        else:
            cell = _Callback(walk._claim_cb)
        sim._now_uq.append(cell)

    def bind_partition(
        self,
        shard_id: int,
        post: Callable[[int, float, Packet, int], None],
    ) -> None:
        """Make this network shard-aware (see :mod:`repro.sim.parallel`).

        *post* is the conductor's outbox: ``post(dest_shard, when,
        packet, hop)`` records a timestamped handoff for delivery via
        :meth:`accept_handoff` on the destination shard at the next
        safe-window boundary.
        """
        self._shard_id = shard_id
        self._post = post

    def accept_handoff(self, when: float, packet: Packet, hop: int) -> None:
        """Resume an inbound cross-shard traversal at link index *hop*.

        Rebuilds the callback-chain walk against this shard's link
        replicas (routes are deterministic, so every shard derives the
        identical link list) and schedules its claim at exactly the
        instant the sending shard's local claim callback would have run.
        """
        key = (packet.src, packet.dst)
        links = self._routes.get(key)
        if links is None or self._topo_version != self.topology.version:
            if self._topo_version != self.topology.version:
                self._routes.clear()
                self._topo_version = self.topology.version
            try:
                links = self._routes[key] = self.topology.route(*key)
            except RoutingError:
                self._drop_unroutable(packet, None)
                return
        if hop >= len(links):
            # A failure transition re-dispersed this pair's route onto a
            # shorter path while the packet was mid-handoff; the stale
            # hop index has nowhere to resume.  Physical analogue: the
            # in-flight flits drained at the rewired port.
            self._drop_unroutable(packet, None)
            return
        walk = _Traversal(self, packet, links, None)
        walk.hop = hop
        self.sim.schedule_callback(when, walk._claim_cb)

    def _drop_unroutable(
        self,
        packet: Packet,
        on_injected: Callable[[Packet], None] | None,
    ) -> None:
        """Discard a packet with no live route (source-link death etc.).

        Fires ``on_injected`` after the injection serialization time so
        the sending NIC's transmit engine never wedges on a descriptor
        callback that would otherwise never come.
        """
        sim = self.sim
        self.failure_dropped += 1
        m = sim.metrics
        if m is not None:
            m.inc("net.failure_drops")
        if sim.trace.enabled:
            sim.record(
                "network",
                "pkt_failure_drop",
                uid=packet.uid,
                src=packet.src,
                dst=packet.dst,
                seq=packet.header.seq,
                ptype=packet.header.ptype.value,
                link="unroutable",
            )
        fr = sim.flight
        if fr is not None and packet.header.trace_id >= 0:
            fr.record(
                sim._now, packet.header.trace_id, "failure_drop",
                packet.dst, packet.uid, packet.header.chunk,
                {"link": "unroutable"},
            )
        if on_injected is not None:
            ser = packet.wire_size * self._inv_bandwidth
            sim.schedule_callback(
                sim._now + ser, lambda: on_injected(packet)
            )

    def min_latency(self, src: int, dst: int, wire_size: int) -> float:
        """Uncontended wire time for a packet of *wire_size* bytes."""
        return (
            self.topology.route_latency(src, dst)
            + wire_size * self._inv_bandwidth
        )
