"""Figure 2: the timing diagrams, extracted from simulation traces.

The paper's Fig. 2 contrasts (a) host-based multiple unicasts — the NIC
repeats request processing per destination — with (b) the NIC-based
multisend — one request, replicas separated only by header rewrites —
and (c) NIC-based forwarding.  We reproduce the *numbers behind the
diagram*: per-destination transmit start times at the source NIC, and
the forwarding timeline at an intermediate NIC.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.mcast.manager import install_group, next_group_id
from repro.trees import build_tree

__all__ = ["run"]


def _transmit_starts(scheme: str, size: int, n_dest: int,
                     cost: GMCostModel) -> list[float]:
    """tx_start times at the source NIC for one send to n_dest nodes."""
    n = n_dest + 1
    cluster = Cluster(ClusterConfig(n_nodes=n, cost=cost, trace=True))
    tree = build_tree(0, range(1, n), shape="flat")

    if scheme == "nb":
        gid = next_group_id()
        install_group(cluster, gid, tree)

        def root():
            handle = yield from cluster.node(0).mcast.multicast_send(
                cluster.port(0), gid, size
            )
            yield handle.done
    else:

        def root():
            port = cluster.port(0)
            handles = []
            for dest in range(1, n):
                handle = yield from port.send(dest, size)
                handles.append(handle.done)
            yield cluster.sim.all_of(handles)

    def rx(i):
        port = cluster.port(i)
        yield from port.receive()

    procs = [cluster.spawn(root())] + [cluster.spawn(rx(i)) for i in range(1, n)]
    cluster.run(until=cluster.sim.all_of(procs))
    starts = [
        rec.time
        for rec in cluster.sim.trace.filter(
            component="nic[0]", category="tx_start"
        )
        if rec.get("ptype") in ("data", "mcast_data")
    ]
    return starts


def _forwarding_timeline(size: int, cost: GMCostModel) -> dict[str, float]:
    """Chain 0->1->2: when does NIC 1 receive, forward, and deliver?"""
    cluster = Cluster(ClusterConfig(n_nodes=3, cost=cost, trace=True))
    tree = build_tree(0, [1, 2], shape="chain")
    gid = next_group_id()
    install_group(cluster, gid, tree)
    delivered = {}

    def root():
        handle = yield from cluster.node(0).mcast.multicast_send(
            cluster.port(0), gid, size
        )
        yield handle.done

    def rx(i):
        port = cluster.port(i)
        yield from port.receive()
        delivered[i] = cluster.now

    procs = [cluster.spawn(root())] + [cluster.spawn(rx(i)) for i in (1, 2)]
    cluster.run(until=cluster.sim.all_of(procs))
    trace = cluster.sim.trace
    recv_at_1 = trace.filter(
        component="network", category="pkt_deliver",
        predicate=lambda r: r["dst"] == 1 and r["ptype"] == "mcast_data",
    )
    fwd_at_1 = trace.filter(component="nic[1]", category="forward")
    return {
        "first_pkt_at_nic1": recv_at_1[0].time,
        "first_forward_queued": fwd_at_1[0].time,
        "host1_delivery": delivered[1],
        "host2_delivery": delivered[2],
    }


def run(quick: bool = False, cost: GMCostModel | None = None) -> FigureResult:
    del quick
    cost = cost or GMCostModel()
    # Small messages: transmission is negligible so the inter-replica
    # gap exposes the *processing* difference the diagram illustrates.
    size, n_dest = 64, 4
    result = FigureResult(
        figure_id="fig2",
        title="Timing-diagram reproduction: per-destination transmit "
        "starts and the forwarding timeline (µs)",
    )
    hb = _transmit_starts("hb", size, n_dest, cost)
    nb = _transmit_starts("nb", size, n_dest, cost)
    s_hb = Series(label="HB tx_start")
    s_nb = Series(label="NB tx_start")
    for i, t in enumerate(hb, start=1):
        s_hb.add(i, t)
    for i, t in enumerate(nb, start=1):
        s_nb.add(i, t)
    result.series = [s_hb, s_nb]
    hb_gaps = [b - a for a, b in zip(hb, hb[1:])]
    nb_gaps = [b - a for a, b in zip(nb, nb[1:])]
    result.headlines["HB mean inter-replica gap (request processing)"] = (
        sum(hb_gaps) / len(hb_gaps)
    )
    result.headlines["NB mean inter-replica gap (header rewrite)"] = (
        sum(nb_gaps) / len(nb_gaps)
    )
    # Forwarding pipelining (Fig 2c) shows best on a multi-packet message.
    timeline = _forwarding_timeline(8192, cost)
    result.extra["forwarding_timeline"] = timeline
    result.headlines["NIC-1 forward lead over its own host delivery"] = (
        timeline["host1_delivery"] - timeline["first_forward_queued"]
    )
    result.notes.append(
        "Fig 2c claim: the intermediate NIC queues the forwarded packet "
        "before (independently of) its own host's delivery — the lead "
        "headline must be positive"
    )
    return result
