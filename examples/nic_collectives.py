#!/usr/bin/env python3
"""The paper's future work, running: NIC-based barrier, allreduce, and
RDMA broadcast.

§7 of the paper: "we intend to expand the NIC-based support to other
collective operations, for example, Allreduce" and "to study the
NIC-based multicast using remote DMA operations".  Both are implemented
as extensions in ``repro.coll`` — contributions combine *on the LANais*
up the multicast tree, results ride the forwarding machinery down, and
large broadcasts go zero-copy through a rendezvous.

Run:  python examples/nic_collectives.py
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mpi import Communicator


def allreduce_demo() -> None:
    n = 16
    print(f"== allreduce over {n} ranks (sum of rank ids) ==")
    for nic in (False, True):
        cluster = Cluster(ClusterConfig(n_nodes=n))
        comm = Communicator(cluster)
        times = {}
        outs = {}

        def program(ctx):
            yield from ctx.allreduce(0, nic=True)  # group-creation warmup
            yield from ctx.barrier()
            t0 = ctx.sim.now
            outs[ctx.rank] = yield from ctx.allreduce(ctx.rank, nic=nic)
            times[ctx.rank] = ctx.sim.now - t0

        comm.run(program)
        label = "NIC-based " if nic else "host-based"
        ok = all(v == n * (n - 1) // 2 for v in outs.values())
        print(f"  {label}: result correct={ok}, "
              f"latency {max(times.values()):.1f} us")


def barrier_demo() -> None:
    print("\n== barrier: dissemination vs NIC tree sweep ==")
    for n in (8, 32):
        cluster = Cluster(ClusterConfig(n_nodes=n))
        comm = Communicator(cluster)
        out = {}

        def program(ctx):
            yield from ctx.barrier(nic=True)  # warmup
            t0 = ctx.sim.now
            yield from ctx.barrier(nic=False)
            t_host = ctx.sim.now - t0
            t0 = ctx.sim.now
            yield from ctx.barrier(nic=True)
            out[ctx.rank] = (t_host, ctx.sim.now - t0)

        comm.run(program)
        host = max(t for t, _ in out.values())
        nic = max(t for _, t in out.values())
        print(f"  {n:2d} ranks: dissemination {host:6.1f} us, "
              f"NIC barrier {nic:6.1f} us ({host / nic:.2f}x)")


def rdma_bcast_demo() -> None:
    print("\n== 64 KB broadcast (beyond the eager limit) ==")
    for rdma in (False, True):
        cluster = Cluster(ClusterConfig(n_nodes=16))
        comm = Communicator(cluster, nic_bcast_rdma=rdma)
        times = {}

        def program(ctx):
            yield from ctx.bcast(root=0, size=65536)  # warmup
            yield from ctx.barrier()
            t0 = ctx.sim.now
            yield from ctx.bcast(root=0, size=65536)
            times[ctx.rank] = ctx.sim.now - t0

        comm.run(program)
        label = "NIC rdma multicast" if rdma else "host rendezvous   "
        print(f"  {label}: {max(times.values()):8.1f} us")


def allgather_demo() -> None:
    print("\n== all-to-all broadcast (allgather), 12 ranks, 1 KB blocks ==")
    for nic in (False, True):
        cluster = Cluster(ClusterConfig(n_nodes=12))
        comm = Communicator(cluster)
        times = {}
        outs = {}

        def program(ctx):
            yield from ctx.allgather(1024, value=0, nic=nic)  # warmup
            yield from ctx.barrier()
            t0 = ctx.sim.now
            outs[ctx.rank] = yield from ctx.allgather(
                1024, value=ctx.rank * 11, nic=nic
            )
            times[ctx.rank] = ctx.sim.now - t0

        comm.run(program)
        label = "NIC multicasts" if nic else "ring          "
        ok = all(v == [r * 11 for r in range(12)] for v in outs.values())
        print(f"  {label}: correct={ok}, latency {max(times.values()):.1f} us")


if __name__ == "__main__":
    allreduce_demo()
    barrier_demo()
    rdma_bcast_demo()
    allgather_demo()
