"""``python -m repro.obs``: health reports, traces, critical paths.

With no subcommand, runs any registered multicast scheme once under
full observation and prints a protocol-health report; optional flags
write the machine-readable report JSON and a Chrome trace-event
timeline (open it in https://ui.perfetto.dev) for the first scheme run
— gauge samples from the flight recorder ride along as counter tracks.

Subcommands drive scenario specs instead of single schemes:

``critical-path SPEC.json``
    Run the spec with a flight recorder attached and print each traced
    message's per-destination latency decomposition (host / nic / wire /
    queue / retransmit-wait / recovery-gap), reconciled against the
    harness's measured delivery times.

``timeseries SPEC.json``
    Run a serving spec with a windowed time-series sampler attached and
    print the per-window throughput/quantile table.

Examples::

    python -m repro.obs                              # all schemes, report
    python -m repro.obs --scheme nic_based --nodes 8 \
        --chrome-trace out.json                      # Fig. 2, interactive
    python -m repro.obs --smoke                      # CI artifacts
    python -m repro.obs --validate out.json          # schema check only
    python -m repro.obs critical-path \
        examples/scenarios/clos_failures_selfheal.json --json cp.json
    python -m repro.obs timeseries \
        examples/scenarios/serving_churn.json --json ts.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.mcast.schemes import available_schemes
from repro.net.fault import BernoulliLoss, LossModel, ScriptedLoss
from repro.net.packet import PacketType
from repro.obs.flight import FlightRecorder, gauge_series
from repro.obs.health import (
    build_health_report,
    render_health_report,
    run_observed,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import validate_chrome_trace, write_chrome_trace

SMOKE_TRACE = "obs_smoke_trace.json"
SMOKE_REPORT = "obs_smoke_report.json"


def _first_data_drop() -> ScriptedLoss:
    """Deterministically drop the first data packet of a run.

    One forced loss puts the retransmission timer, the resend, and the
    duplicate-filter paths on the wire, so the report's retransmit and
    drop sections carry real numbers even on a loss-free fabric.
    """
    return ScriptedLoss(
        lambda pkt: pkt.header.ptype in (PacketType.DATA, PacketType.MCAST_DATA)
        and pkt.header.seq == 1,
        times=1,
    )


def _loss_for(args: argparse.Namespace) -> LossModel | None:
    if args.loss is not None:
        return BernoulliLoss(args.loss, seed=args.seed)
    if args.drop_first:
        return _first_data_drop()
    return None


def _validate_file(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    errors = validate_chrome_trace(payload)
    if errors:
        for err in errors[:20]:
            print(f"INVALID {path}: {err}", file=sys.stderr)
        return 2
    n = len(payload["traceEvents"])
    print(f"OK {path}: {n} trace events")
    return 0


# -- scenario-spec subcommands ---------------------------------------------

def _load_spec(path: str):
    from repro.scenario.spec import ScenarioSpec

    with open(path, encoding="utf-8") as fh:
        return ScenarioSpec.from_dict(json.load(fh))


def _telemetry(spec):
    """The spec's telemetry request, or the default one."""
    from repro.scenario.spec import TelemetrySpec

    tel = getattr(spec.measurement, "telemetry", None)
    return tel if tel is not None else TelemetrySpec()


def run_critical_path(argv: list[str]) -> int:
    """The ``critical-path`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs critical-path",
        description="Run a scenario spec with a flight recorder attached "
        "and print per-destination critical-path decompositions.",
    )
    parser.add_argument("spec", help="scenario spec JSON path")
    parser.add_argument("--json", metavar="PATH",
                        help="write the decomposition + reconciliation JSON")
    args = parser.parse_args(argv)

    import repro.workload  # noqa: F401  (registers the serving runner)
    from repro.obs.critical import (
        critical_path_to_dict,
        critical_paths,
        render_critical_path,
    )
    from repro.scenario.harness import Harness

    spec = _load_spec(args.spec)
    tel = _telemetry(spec)
    flight = FlightRecorder(sample=tel.sample, cap=tel.cap)
    registry = MetricsRegistry()
    result = Harness(spec, registry=registry, flight=flight).run()

    paths = critical_paths(flight.events)
    if not paths:
        print(f"no traced messages recorded for {spec.name} "
              f"(sample={tel.sample})", file=sys.stderr)
        return 1

    print(f"# critical paths: {spec.name} "
          f"({len(flight)} flight events, {len(paths)} trace(s), "
          f"{flight.dropped} ring-dropped)")
    for cp in paths:
        print()
        print(render_critical_path(cp))

    # Reconcile against the harness's measured per-destination deliveries
    # (broadcast points expose them); the segment sums telescope, so the
    # flight decomposition must agree with the measurement to < 1us.
    recon = []
    for size, value in result.values.items():
        deliveries = getattr(value, "deliveries", None)
        start = getattr(value, "start_us", None)
        if not deliveries or start is None:
            continue
        for cp in paths:
            for dest, p in sorted(cp.destinations.items()):
                measured = deliveries.get(dest)
                if measured is None:
                    continue
                diff = (measured - start) - p.segment_sum
                recon.append({
                    "size": size, "trace_id": cp.trace_id, "dest": dest,
                    "measured_us": measured - start,
                    "segment_sum_us": p.segment_sum,
                    "diff_us": diff,
                })
    if recon:
        worst = max(abs(r["diff_us"]) for r in recon)
        print(f"\nreconciliation: {len(recon)} destinations, "
              f"max |measured - segments| = {worst:.3f}us")

    if args.json:
        payload = {
            "spec": spec.name,
            "flight_events": len(flight),
            "ring_dropped": flight.dropped,
            "traces": [critical_path_to_dict(cp) for cp in paths],
            "reconciliation": recon,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def run_timeseries(argv: list[str]) -> int:
    """The ``timeseries`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs timeseries",
        description="Run a serving scenario spec with a windowed "
        "time-series sampler attached and print the per-window table.",
    )
    parser.add_argument("spec", help="scenario spec JSON path")
    parser.add_argument("--json", metavar="PATH",
                        help="write the windowed snapshots JSON")
    args = parser.parse_args(argv)

    import repro.workload  # noqa: F401  (registers the serving runner)
    from repro.obs.timeseries import TimeSeriesRecorder, render_timeseries
    from repro.scenario.harness import Harness

    spec = _load_spec(args.spec)
    if spec.workload.kind != "serving":
        print(f"timeseries needs a serving spec; {args.spec} is "
              f"{spec.workload.kind!r}", file=sys.stderr)
        return 2
    tel = _telemetry(spec)
    registry = MetricsRegistry()
    ts = TimeSeriesRecorder(registry, interval_us=tel.interval_us)
    result = Harness(spec, registry=registry, timeseries=ts).run()

    stats = result.values[0]
    print(f"# time series: {spec.name} "
          f"({stats.msgs_delivered} delivered over "
          f"{spec.traffic.duration_us:g}us)")
    print()
    print(render_timeseries(ts))
    totals = ts.totals()
    print(f"\ntotals: posted={totals.get('serving.msgs_posted', 0.0):g} "
          f"delivered={totals.get('serving.msgs_delivered', 0.0):g} "
          f"over {len(ts.snapshots)} windows")

    if args.json:
        payload = ts.to_dict()
        payload["spec"] = spec.name
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "critical-path":
        return run_critical_path(argv[1:])
    if argv and argv[0] == "timeseries":
        return run_timeseries(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scheme", action="append", choices=available_schemes(),
        help="scheme(s) to run (repeatable; default: all registered)",
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--size", type=int, default=4096,
                        help="message size in bytes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--loss", type=float, default=None, metavar="RATE",
        help="Bernoulli per-packet loss rate (overrides --drop-first)",
    )
    parser.add_argument(
        "--no-drop-first", dest="drop_first", action="store_false",
        help="don't force-drop the first data packet of each run",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH",
        help="write the first scheme's timeline as Chrome trace-event JSON",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the health report as JSON",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI mode: 4 nodes, 1 KiB, write {SMOKE_TRACE} + {SMOKE_REPORT}",
    )
    parser.add_argument(
        "--validate", metavar="PATH",
        help="validate an existing trace-event JSON file and exit",
    )
    args = parser.parse_args(argv)

    if args.validate:
        return _validate_file(args.validate)

    if args.smoke:
        args.nodes = 4
        args.size = 1024
        args.chrome_trace = args.chrome_trace or SMOKE_TRACE
        args.json = args.json or SMOKE_REPORT

    schemes = args.scheme or list(available_schemes())
    # The first run feeds the Chrome trace; prefer the paper's scheme so
    # the default export is the Fig. 2 NIC-based timeline.
    if "nic_based" in schemes:
        schemes = ["nic_based"] + [s for s in schemes if s != "nic_based"]

    runs = []
    for i, scheme in enumerate(schemes):
        want_trace = bool(args.chrome_trace) and i == 0
        runs.append(run_observed(
            scheme,
            nodes=args.nodes,
            size=args.size,
            seed=args.seed,
            loss=_loss_for(args),  # fresh model per run
            trace=want_trace,
            flight=want_trace,  # gauge samples -> counter tracks
        ))

    print(render_health_report(runs))

    if args.chrome_trace:
        counters = (
            gauge_series(runs[0].flight.events)
            if runs[0].flight is not None else None
        )
        payload = write_chrome_trace(
            args.chrome_trace, runs[0].tracer, counters=counters
        )
        print(f"\nwrote {args.chrome_trace} "
              f"({len(payload['traceEvents'])} trace events, "
              f"scheme {runs[0].scheme})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(build_health_report(runs), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
