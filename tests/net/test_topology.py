"""Unit tests for topologies, routing, and the fabric timing model."""

import pytest

from repro.errors import ConfigError, RoutingError
from repro.net import (
    Network,
    Packet,
    PacketHeader,
    PacketType,
    clos,
    from_graph,
    line,
    single_switch,
)
from repro.sim import Simulator

BW = 250.0  # B/us
LINK_LAT = 0.1
HOP_LAT = 0.2


def make_topo(kind, n, **kw):
    sim = Simulator()
    builder = {"single": single_switch, "clos": clos, "line": line}[kind]
    return sim, builder(sim, n, BW, LINK_LAT, HOP_LAT, **kw)


def data_packet(src, dst, payload=100):
    return Packet(
        header=PacketHeader(
            ptype=PacketType.DATA, src=src, dst=dst, origin=src, payload=payload
        )
    )


class TestSingleSwitch:
    def test_every_pair_routable(self):
        _, topo = make_topo("single", 8)
        topo.validate()

    def test_two_links_per_route(self):
        _, topo = make_topo("single", 4)
        assert topo.hops(0, 3) == 2

    def test_route_to_self_rejected(self):
        _, topo = make_topo("single", 4)
        with pytest.raises(RoutingError):
            topo.route(2, 2)

    def test_unknown_nic_rejected(self):
        _, topo = make_topo("single", 4)
        with pytest.raises(RoutingError):
            topo.route(0, 10)

    def test_route_cached_identity(self):
        _, topo = make_topo("single", 4)
        assert topo.route(0, 1) is topo.route(0, 1)

    def test_single_node_topology(self):
        _, topo = make_topo("single", 1)
        assert topo.n_nodes == 1


class TestClos:
    def test_small_collapses_to_single_switch(self):
        _, topo = make_topo("clos", 16)
        assert topo.switch_count() == 1
        assert topo.name == "single-switch"

    def test_32_nodes_two_level(self):
        _, topo = make_topo("clos", 32)
        # 4 leaves (8 hosts each) + 8 spines.
        assert topo.switch_count() == 12
        topo.validate()

    def test_same_leaf_is_two_hops(self):
        _, topo = make_topo("clos", 32)
        assert topo.hops(0, 1) == 2

    def test_cross_leaf_is_four_hops(self):
        _, topo = make_topo("clos", 32)
        assert topo.hops(0, 31) == 4

    def test_odd_radix_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            clos(sim, 32, BW, LINK_LAT, HOP_LAT, radix=15)

    def test_64_nodes_routable(self):
        _, topo = make_topo("clos", 64)
        topo.validate()


class TestLine:
    def test_diameter_grows(self):
        _, topo = make_topo("line", 16, nodes_per_switch=4)
        assert topo.hops(0, 15) > topo.hops(0, 3)

    def test_all_routable(self):
        _, topo = make_topo("line", 12, nodes_per_switch=4)
        topo.validate()


class TestFromGraph:
    def test_custom_fabric(self):
        sim = Simulator()
        topo = from_graph(
            sim,
            nic_to_switch={0: 0, 1: 0, 2: 1, 3: 1},
            switch_edges=[(0, 1)],
            bandwidth=BW,
            link_latency=LINK_LAT,
            hop_latency=HOP_LAT,
        )
        topo.validate()
        assert topo.hops(0, 1) == 2
        assert topo.hops(0, 3) == 3

    def test_bad_nic_ids_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            from_graph(sim, {1: 0, 2: 0}, [], BW, LINK_LAT, HOP_LAT)


class TestNetworkTiming:
    def delivery_time(self, n_nodes, payload, src=0, dst=1, kind="single"):
        sim, topo = make_topo(kind, n_nodes)
        net = Network(sim, topo)
        arrivals = []
        for i in range(n_nodes):
            net.attach(i, (lambda p, _i=i: arrivals.append((sim.now, _i, p))))
        net.inject(data_packet(src, dst, payload))
        sim.run()
        assert len(arrivals) == 1
        return arrivals[0][0]

    def test_min_latency_formula_single_switch(self):
        # 2 links: each pays link latency; switch-entering link pays
        # hop latency too; serialization paid once (cut-through).
        payload = 1000
        wire = payload + 16
        expected = (LINK_LAT + HOP_LAT) + LINK_LAT + wire / BW
        assert self.delivery_time(4, payload) == pytest.approx(expected)

    def test_min_latency_helper_agrees_with_traversal(self):
        sim, topo = make_topo("single", 4)
        net = Network(sim, topo)
        arrivals = []
        for i in range(4):
            net.attach(i, lambda p: arrivals.append(sim.now))
        pkt = data_packet(0, 2, 500)
        net.inject(pkt)
        sim.run()
        assert arrivals[0] == pytest.approx(net.min_latency(0, 2, pkt.wire_size))

    def test_larger_packets_take_longer(self):
        t_small = self.delivery_time(4, 1)
        t_big = self.delivery_time(4, 4096)
        assert t_big > t_small
        assert t_big - t_small == pytest.approx(4095 / BW)

    def test_contention_serializes_on_shared_link(self):
        # Two packets from the same source to the same destination share
        # the source's injection link: second is delayed by one
        # serialization time.
        sim, topo = make_topo("single", 4)
        net = Network(sim, topo)
        arrivals = []
        for i in range(4):
            net.attach(i, lambda p: arrivals.append(sim.now))
        p1 = data_packet(0, 1, 4096)
        p2 = data_packet(0, 1, 4096)
        net.inject(p1)
        net.inject(p2)
        sim.run()
        ser = p1.wire_size / BW
        assert arrivals[1] - arrivals[0] == pytest.approx(ser)

    def test_disjoint_paths_parallel(self):
        # 0->1 and 2->3 share no link: both arrive at min latency.
        sim, topo = make_topo("single", 4)
        net = Network(sim, topo)
        arrivals = {}
        for i in range(4):
            net.attach(i, lambda p, _i=i: arrivals.setdefault(_i, sim.now))
        net.inject(data_packet(0, 1, 4096))
        net.inject(data_packet(2, 3, 4096))
        sim.run()
        assert arrivals[1] == pytest.approx(arrivals[3])

    def test_cross_leaf_slower_than_same_leaf(self):
        t_near = self.delivery_time(32, 100, src=0, dst=1, kind="clos")
        t_far = self.delivery_time(32, 100, src=0, dst=31, kind="clos")
        assert t_far > t_near

    def test_inject_to_unattached_nic_raises(self):
        sim, topo = make_topo("single", 4)
        net = Network(sim, topo)
        net.attach(0, lambda p: None)
        with pytest.raises(RoutingError):
            net.inject(data_packet(0, 1))

    def test_double_attach_rejected(self):
        sim, topo = make_topo("single", 4)
        net = Network(sim, topo)
        net.attach(0, lambda p: None)
        with pytest.raises(ValueError):
            net.attach(0, lambda p: None)

    def test_link_accounting(self):
        sim, topo = make_topo("single", 2)
        net = Network(sim, topo)
        net.attach(0, lambda p: None)
        net.attach(1, lambda p: None)
        pkt = data_packet(0, 1, 1000)
        net.inject(pkt)
        sim.run()
        carried = [l for l in topo.all_links() if l.packets_carried]
        assert len(carried) == 2  # nic->switch, switch->nic
        assert all(l.bytes_carried == pkt.wire_size for l in carried)


class TestDispersiveRouting:
    def test_clos_routes_spread_across_spines(self):
        # Myrinet-style static dispersion: different pairs crossing
        # leaves should not all share one spine uplink.
        sim = Simulator()
        topo = clos(sim, 32, BW, LINK_LAT, HOP_LAT)
        # All 8 hosts of leaf 0 to the corresponding hosts of leaf 3.
        middle_links = set()
        for src in range(8):
            dst = 24 + src
            links = topo.route(src, dst)
            assert len(links) == 4
            middle_links.add(links[1].name)  # leaf -> spine uplink
        assert len(middle_links) >= 4  # spread, not funneled

    def test_routes_still_deterministic(self):
        def route_names(seed_unused):
            sim = Simulator()
            topo = clos(sim, 32, BW, LINK_LAT, HOP_LAT)
            return [l.name for l in topo.route(0, 31)]

        assert route_names(0) == route_names(1)
