"""Unit tests for Resource / Store primitives."""

import pytest

from repro.sim import PriorityStore, Resource, Simulator, Store


class TestResource:
    def test_immediate_grant_when_free(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        req = res.request()
        assert req.triggered
        assert res.in_use == 1

    def test_capacity_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_fifo_granting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(tag, hold):
            yield from res.use(hold)
            order.append((sim.now, tag))

        sim.process(user("a", 5.0))
        sim.process(user("b", 3.0))
        sim.process(user("c", 1.0))
        sim.run()
        assert order == [(5.0, "a"), (8.0, "b"), (9.0, "c")]

    def test_priority_granting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(tag, prio):
            req = res.request(priority=prio)
            yield req
            yield sim.timeout(1.0)
            res.release(req)
            order.append(tag)

        def starter():
            hold = res.request()
            yield hold
            yield sim.timeout(1.0)
            # By now low/high priority requests are queued.
            res.release(hold)

        sim.process(starter())

        def late_spawner():
            yield sim.timeout(0.5)
            sim.process(user("low", 5))
            sim.process(user("high", 1))

        sim.process(late_spawner())
        sim.run()
        assert order == ["high", "low"]

    def test_capacity_two_parallel(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        done = []

        def user(tag):
            yield from res.use(10.0)
            done.append((sim.now, tag))

        for t in "abc":
            sim.process(user(t))
        sim.run()
        assert done == [(10.0, "a"), (10.0, "b"), (20.0, "c")]

    def test_double_release_raises(self):
        sim = Simulator()
        res = Resource(sim)
        req = res.request()
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_release_wrong_resource_raises(self):
        sim = Simulator()
        r1, r2 = Resource(sim), Resource(sim)
        req = r1.request()
        with pytest.raises(ValueError):
            r2.release(req)

    def test_cancel_pending_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        assert not second.triggered
        res.release(second)  # cancel before grant
        assert res.queue_length == 0
        res.release(first)
        assert res.in_use == 0

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim)
        res.request()
        res.request()
        res.request()
        assert res.in_use == 1
        assert res.queue_length == 2

    def test_use_releases_on_completion(self):
        sim = Simulator()
        res = Resource(sim)

        def user():
            yield from res.use(2.0)

        sim.run(until=sim.process(user()))
        assert res.in_use == 0


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        got = store.get()
        assert got.triggered and got.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def consumer():
            item = yield store.get()
            out.append((sim.now, item))

        def producer():
            yield sim.timeout(4.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert out == [(4.0, "late")]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        out = []

        def consumer():
            for _ in range(5):
                out.append((yield store.get()))

        sim.run(until=sim.process(consumer()))
        assert out == [0, 1, 2, 3, 4]

    def test_multiple_getters_fifo(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def consumer(tag):
            item = yield store.get()
            out.append((tag, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield sim.timeout(1.0)
            store.put("a")
            store.put("b")

        sim.process(producer())
        sim.run()
        assert out == [("first", "a"), ("second", "b")]

    def test_len_and_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == (1, 2)


class TestPriorityStore:
    def test_lowest_priority_first(self):
        sim = Simulator()
        store = PriorityStore(sim)
        store.put_priority(5, "low")
        store.put_priority(1, "high")
        store.put_priority(3, "mid")
        out = []

        def consumer():
            for _ in range(3):
                out.append((yield store.get()))

        sim.run(until=sim.process(consumer()))
        assert out == ["high", "mid", "low"]

    def test_plain_put_is_priority_zero(self):
        sim = Simulator()
        store = PriorityStore(sim)
        store.put_priority(1, "later")
        store.put("urgent")
        out = []

        def consumer():
            for _ in range(2):
                out.append((yield store.get()))

        sim.run(until=sim.process(consumer()))
        assert out == ["urgent", "later"]

    def test_fifo_within_priority(self):
        sim = Simulator()
        store = PriorityStore(sim)
        for tag in ("a", "b", "c"):
            store.put_priority(2, tag)
        out = []

        def consumer():
            for _ in range(3):
                out.append((yield store.get()))

        sim.run(until=sim.process(consumer()))
        assert out == ["a", "b", "c"]
