"""Figure 3: NIC-based multisend vs host-based multiple unicasts.

"(a) Latency and (b) the performance improvement of using the NIC-based
multisend operation to transmit messages to 3, 4 and 8 destinations,
compared to the same tests conducted using host-based multiple
unicasts."  Paper headline: up to 2.05× for ≤128-byte messages to 4
destinations; the factor decays with size and levels off around/below 1
at 16 KB.
"""

from __future__ import annotations

from repro.experiments.parallel import SweepCell, run_cells
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import PAPER_SIZES, measure_multisend
from repro.gm.params import GMCostModel

__all__ = ["run", "DEST_COUNTS"]

DEST_COUNTS = (3, 4, 8)


def _cell(
    k: int, size: int, iterations: int, cost: GMCostModel
) -> tuple[float, float]:
    """One (destination count, message size) point: hb and nb latency."""
    hb = measure_multisend(k, size, "hb", iterations=iterations, cost=cost)
    nb = measure_multisend(k, size, "nb", iterations=iterations, cost=cost)
    return hb, nb


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    sizes: list[int] | None = None,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    sizes = sizes or (
        [1, 64, 512, 4096, 16384] if quick else PAPER_SIZES
    )
    iterations = 10 if quick else 30
    result = FigureResult(
        figure_id="fig3",
        title="NIC-based multisend vs host-based multiple unicasts "
        "(latency to last ack, µs, and improvement factor)",
    )
    lat = {
        (scheme, k): Series(label=f"{scheme.upper()}-{k}")
        for scheme in ("hb", "nb")
        for k in DEST_COUNTS
    }
    imp = {k: Series(label=f"factor-{k}dest") for k in DEST_COUNTS}
    grid = [(size, k) for size in sizes for k in DEST_COUNTS]
    cells = [
        SweepCell(
            figure="fig3",
            fn=_cell,
            args=(k, size, iterations, cost),
            label=f"fig3[k={k},size={size}]",
        )
        for size, k in grid
    ]
    for (size, k), (hb, nb) in zip(grid, run_cells(cells, jobs=jobs)):
        lat[("hb", k)].add(size, hb)
        lat[("nb", k)].add(size, nb)
        imp[k].add(size, hb / nb)
    result.series = [lat[("hb", k)] for k in DEST_COUNTS]
    result.series += [lat[("nb", k)] for k in DEST_COUNTS]
    result.series += [imp[k] for k in DEST_COUNTS]
    small = [x for x in sizes if x <= 128]
    result.headlines["max factor, 4 dests, <=128B (paper: 2.05)"] = max(
        imp[4].y_at(s) for s in small
    )
    result.headlines["factor, 4 dests, 16KB (paper: ~1, slightly below)"] = (
        imp[4].y_at(16384) if 16384 in sizes else float("nan")
    )
    result.notes.append(
        "latency = root's post until the GM acknowledgment from the last "
        "destination returns (the paper's loop condition)"
    )
    return result
