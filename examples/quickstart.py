#!/usr/bin/env python3
"""Quickstart: NIC-based vs host-based multicast on a simulated cluster.

Builds an 8-node Myrinet/GM-2 cluster, runs one multicast with each
scheme, and prints per-destination delivery times — the paper's core
claim in thirty lines.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mcast import host_based_multicast, multicast
from repro.trees import build_tree, tree_stats


def main() -> None:
    n_nodes, size = 8, 1024
    print(f"{n_nodes}-node simulated Myrinet/GM-2 cluster, {size}-byte multicast\n")

    # --- NIC-based: optimal (postal-model) tree + NIC forwarding -------
    cluster = Cluster(ClusterConfig(n_nodes=n_nodes))
    tree = build_tree(
        0, range(1, n_nodes), shape="optimal", cost=cluster.cost, size=size
    )
    stats = tree_stats(tree)
    nb = multicast(cluster, tree, size)
    print(f"NIC-based  (optimal tree: depth {stats.depth}, "
          f"root fan-out {stats.root_fanout})")
    for node, t in sorted(nb["delivered"].items()):
        print(f"  node {node}: delivered at {t:7.2f} us")
    nb_latency = max(nb["delivered"].values())

    # --- host-based: binomial tree, every hop through the host ---------
    cluster = Cluster(ClusterConfig(n_nodes=n_nodes))
    btree = build_tree(0, range(1, n_nodes), shape="binomial")
    hb = host_based_multicast(cluster, btree, size)
    print("\nhost-based (binomial tree, store-and-forward at each host)")
    for node, t in sorted(hb["delivered"].items()):
        print(f"  node {node}: delivered at {t:7.2f} us")
    hb_latency = max(hb["delivered"].values())

    print(f"\nlast-destination latency: NIC-based {nb_latency:.2f} us, "
          f"host-based {hb_latency:.2f} us")
    print(f"improvement factor: {hb_latency / nb_latency:.2f}x")


if __name__ == "__main__":
    main()
