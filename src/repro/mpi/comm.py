"""Communicators and per-rank MPI context."""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import MPIError
from repro.gm.api import RecvCompletion
from repro.mpi import barrier as _barrier
from repro.mpi import bcast as _bcast
from repro.mpi import p2p as _p2p

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import Cluster
    from repro.sim.process import Process

__all__ = ["Communicator", "RankContext", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1

_comm_ids = count(1)


class Communicator:
    """A set of ranks mapped onto cluster nodes.

    >>> comm = Communicator(cluster)            # all nodes, rank == node
    >>> comm.run(program)                        # program(ctx) per rank
    """

    def __init__(
        self,
        cluster: "Cluster",
        node_of_rank: list[int] | None = None,
        nic_bcast: bool = True,
        nic_bcast_rdma: bool = False,
    ):
        self.cluster = cluster
        self.node_of_rank = (
            list(node_of_rank)
            if node_of_rank is not None
            else list(range(cluster.n_nodes))
        )
        if len(set(self.node_of_rank)) != len(self.node_of_rank):
            raise MPIError("a node may host at most one rank per communicator")
        for node in self.node_of_rank:
            if not 0 <= node < cluster.n_nodes:
                raise MPIError(f"unknown node {node}")
        self.comm_id = next(_comm_ids)
        #: use the NIC-based broadcast for eager-sized messages
        self.nic_bcast = nic_bcast
        #: extension: use the rendezvous NIC-based broadcast beyond the
        #: eager limit too (the paper's "remote DMA" future work)
        self.nic_bcast_rdma = nic_bcast_rdma
        self.size = len(self.node_of_rank)
        self.rank_of_node = {n: r for r, n in enumerate(self.node_of_rank)}
        self.ranks = [RankContext(self, r) for r in range(self.size)]
        #: demand-created broadcast groups (root rank -> group id), as
        #: known by the root — introspection only; each rank tracks its
        #: own knowledge in ``RankContext.bcast_groups`` (a rank must
        #: not act on a group before its membership message arrives).
        self.bcast_groups: dict[int, int] = {}

    def context(self, rank: int) -> "RankContext":
        return self.ranks[rank]

    def run(
        self,
        program: Callable[["RankContext"], Generator],
        ranks: list[int] | None = None,
    ) -> list["Process"]:
        """Spawn ``program(ctx)`` on every rank (or the given subset) and
        run the simulation until all of them finish."""
        targets = ranks if ranks is not None else range(self.size)
        procs = [
            self.cluster.spawn(
                program(self.ranks[r]), name=f"mpi[{r}]"
            )
            for r in targets
        ]
        self.cluster.run(until=self.cluster.sim.all_of(procs))
        return procs

    def spawn(
        self, rank: int, generator: Generator
    ) -> "Process":
        return self.cluster.spawn(generator, name=f"mpi[{rank}]")


class RankContext:
    """One rank's MPI world: p2p, collectives, and time accounting."""

    def __init__(self, comm: Communicator, rank: int):
        self.comm = comm
        self.rank = rank
        self.node = comm.cluster.node(comm.node_of_rank[rank])
        self.port = comm.cluster.port(comm.node_of_rank[rank])
        self.sim = comm.cluster.sim
        self.cost = comm.cluster.cost
        #: eager messages that arrived before their recv was posted
        self.unexpected: list[dict] = []
        #: multicast completions not yet claimed, by group id
        self.group_pending: dict[int, list[RecvCompletion]] = {}
        #: broadcast groups this rank has joined: root rank -> group id
        self.bcast_groups: dict[int, int] = {}
        #: cumulative wall time spent blocked inside MPI_Bcast, µs —
        #: the paper's "host CPU time" metric for the skew experiments.
        self.bcast_cpu_time = 0.0
        self.bcast_calls = 0
        self._barrier_epoch = 0

    # -- plumbing ---------------------------------------------------------
    def _pump(self) -> Generator[Any, Any, RecvCompletion]:
        """Take the next completion off the GM port (host cost paid).

        MPICH-GM recycles its internal receive buffers: every consumed
        message is immediately replaced by a fresh preposted buffer, so
        the NIC never starves for receive tokens in steady state.
        """
        completion = yield from self.port.receive()
        yield from self.port.provide_receive_buffer()
        return completion

    def _stash(self, completion: RecvCompletion) -> None:
        if completion.group is not None:
            self.group_pending.setdefault(completion.group, []).append(
                completion
            )
        else:
            self.unexpected.append(
                {"completion": completion, **completion.info.get("mpi", {})}
            )

    # -- application-facing API --------------------------------------------------
    def compute(self, duration: float) -> Generator:
        """Application compute time on the host CPU."""
        yield from self.node.host.compute(duration)

    def send(self, dest: int, size: int, tag: int = 0,
             payload: Any = None) -> Generator:
        """Blocking standard-mode send (eager or rendezvous by size)."""
        yield from _p2p.send(self, dest, size, tag, payload)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Any, Any, dict]:
        """Blocking receive; returns the message envelope dict."""
        result = yield from _p2p.recv(self, source, tag)
        return result

    def barrier(self, nic: bool = False) -> Generator:
        """Blocking barrier: dissemination (default) or NIC-based."""
        if nic:
            from repro.mpi import reduce as _reduce

            yield from _reduce.nic_barrier(self)
            return
        self._barrier_epoch += 1
        yield from _barrier.barrier(self, self._barrier_epoch)

    def allreduce(
        self, value: Any, op: str = "sum", nic: bool = False
    ) -> Generator[Any, Any, Any]:
        """Blocking allreduce; ``nic=True`` combines on the LANais."""
        from repro.mpi import reduce as _reduce

        if nic:
            result = yield from _reduce.nic_allreduce(self, value, op)
        else:
            result = yield from _reduce.host_allreduce(self, value, op)
        return result

    def allgather(
        self, size: int, value: Any = None, nic: bool = False
    ) -> Generator[Any, Any, list]:
        """Blocking all-to-all broadcast; returns per-rank values.

        ``nic=True`` runs n concurrent NIC-based multicasts (the paper's
        future-work "Alltoall broadcast"); default is a ring.
        """
        from repro.mpi import allgather as _allgather

        if nic:
            result = yield from _allgather.nic_allgather(self, size, value)
        else:
            result = yield from _allgather.host_allgather(self, size, value)
        return result

    def bcast(self, root: int, size: int, payload: Any = None) -> Generator:
        """Blocking broadcast; accounts blocked time (host CPU time)."""
        entered = self.sim.now
        self.bcast_calls += 1
        nic_eligible = size <= self.cost.mpi_eager_max or self.comm.nic_bcast_rdma
        if self.comm.nic_bcast and nic_eligible:
            result = yield from _bcast.nic_based_bcast(
                self, root, size, payload
            )
        else:
            result = yield from _bcast.host_based_bcast(
                self, root, size, payload
            )
        elapsed = self.sim.now - entered
        self.bcast_cpu_time += elapsed
        self.node.host.charge_blocked(elapsed)
        return result

    def reset_accounting(self) -> None:
        self.bcast_cpu_time = 0.0
        self.bcast_calls = 0

    def __repr__(self) -> str:
        return f"<rank {self.rank}/{self.comm.size} on node {self.node.id}>"
