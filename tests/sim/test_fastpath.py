"""Regression tests for the kernel fast-path changes.

Covers the ``call_at`` priority fix, Condition loser-callback detachment,
trace-disabled recording, and the processed-event counter.
"""

import pytest

from repro.sim import Simulator
from repro.sim.engine import NORMAL, URGENT


def test_call_at_priority_ordered_at_same_instant():
    """URGENT beats NORMAL at the same instant, regardless of insertion."""
    sim = Simulator()
    order = []
    sim.call_at(5.0, lambda: order.append("normal"), priority=NORMAL)
    sim.call_at(5.0, lambda: order.append("urgent"), priority=URGENT)
    sim.run()
    assert order == ["urgent", "normal"]
    assert sim.now == 5.0


def test_call_at_priority_kwarg_not_silently_dropped():
    """The historical bug: the kwarg was accepted but always scheduled
    at NORMAL, so two same-instant callbacks ran in insertion order."""
    sim = Simulator()
    order = []
    sim.call_at(1.0, lambda: order.append("first-normal"))
    sim.call_at(1.0, lambda: order.append("late-urgent"), priority=URGENT)
    sim.call_at(1.0, lambda: order.append("second-normal"))
    sim.run()
    assert order == ["late-urgent", "first-normal", "second-normal"]


def test_call_at_exact_absolute_time():
    sim = Simulator()
    sim.run(until=0.3)
    seen = []
    # now + (when - now) float round-trips are gone: the callback fires
    # at exactly the requested instant.
    sim.call_at(0.7, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.7]


def test_call_at_past_still_raises():
    sim = Simulator()
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.call_at(5.0, lambda: None)


def test_anyof_detaches_loser_callbacks():
    sim = Simulator()
    winner = sim.timeout(1.0)
    loser = sim.event()
    cond = sim.any_of([winner, loser])
    sim.run(until=cond)
    # The long-lived loser no longer holds a reference to the decided
    # condition via a dead _check callback.
    assert loser.callbacks == []


def test_condition_detaches_on_failure():
    sim = Simulator()
    bystander = sim.event()
    failing = sim.event()
    cond = sim.all_of([failing, bystander])
    cond.add_callback(lambda ev: None)  # consume the failure
    failing.fail(RuntimeError("boom"))
    sim.run()
    assert not cond.ok
    assert bystander.callbacks == []


def test_anyof_late_loser_trigger_is_harmless():
    sim = Simulator()
    fast = sim.timeout(1.0)
    slow = sim.timeout(5.0)
    cond = sim.any_of([fast, slow])
    assert sim.run(until=cond) == {fast: None}
    sim.run()  # the loser still fires without touching the condition
    assert cond.value == {fast: None}


def test_record_is_noop_when_trace_disabled():
    sim = Simulator(trace=False)
    sim.record("nic[0]", "tx_start", uid=1)
    assert len(sim.trace) == 0
    sim.trace.enabled = True
    sim.record("nic[0]", "tx_start", uid=2)
    assert len(sim.trace) == 1


def test_events_processed_counter():
    sim = Simulator()
    assert sim.events_processed == 0
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    assert sim.events_processed == 2
