"""Bench: Figure 5 — GM-level multicast, 4/8/16 nodes.

Paper shape to hold: the NIC-based scheme wins at every size and system
size; the improvement factor on 16 nodes dips for single-packet 2-4 KB
messages relative to small messages; 16 KB recovers via per-packet
pipelined forwarding; larger systems see larger factors.
"""

from repro.experiments import fig5


def test_fig5_gm_multicast(once):
    result = once(
        lambda: fig5.run(quick=False, sizes=[1, 512, 2048, 4096, 16384])
    )
    print()
    print(result.render())

    f16 = result.get("factor-16")
    # NB wins everywhere on 16 nodes.
    assert all(y > 1.2 for y in f16.ys())
    # Paper: ~1.48 for small messages (we land 1.6-1.9).
    assert 1.4 < f16.y_at(512) < 2.1
    # The 2-4 KB dip: single-packet messages benefit least.
    assert f16.y_at(4096) < f16.y_at(1)
    assert f16.y_at(2048) < f16.y_at(1)
    # 16 KB recovers from the dip (pipelined forwarding).
    assert f16.y_at(16384) >= f16.y_at(4096) - 0.05

    # Factor grows with system size for small messages.
    assert (
        result.get("factor-4").y_at(1)
        < result.get("factor-8").y_at(1)
        < f16.y_at(1)
    )

    # Absolute regime check: HB 16 nodes 16 KB landed near the paper's
    # ~650 us on comparable hardware constants.
    assert 450 < result.get("HB-16").y_at(16384) < 850
