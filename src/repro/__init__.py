"""repro — reproduction of NIC-based multicast over Myrinet/GM-2 (ICPP 2003).

The package simulates the complete stack the paper builds on — a
Myrinet-like network, LANai-class NICs, the GM user-level protocol — and
implements the paper's NIC-based multisend/forwarding multicast scheme plus
the baselines it compares against, all driven by a deterministic
discrete-event simulator.

Public API highlights
---------------------
- :class:`repro.cluster.Cluster` / :class:`repro.config.ClusterConfig` —
  build a simulated system and run operations on it.
- :class:`repro.gm.params.GMCostModel` — all timing constants.
- :mod:`repro.mcast` — the paper's scheme and its baselines.
- :mod:`repro.trees` — binomial and postal-model optimal spanning trees.
- :mod:`repro.mpi` — the MPICH-GM layer (bcast/barrier/allreduce/allgather).
- :mod:`repro.coll` — NIC-based collective extensions (§7 future work).
- :mod:`repro.experiments` — regenerate every figure in the paper.
"""

from repro._version import __version__
from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel

__all__ = ["Cluster", "ClusterConfig", "GMCostModel", "__version__"]
