"""The host-based multicast baseline.

"With a host-based mechanism, the intermediate host initiates another set
of unicasts after receiving the message.  A message just received by the
NIC must be copied into the host memory and then back to the NIC for
forwarding.  This leads to a large overhead" (paper §3).

The baseline is exactly what MPICH-GM's broadcast does: unicasts along a
binomial tree, every hop passing through the intermediate *host*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import Cluster
    from repro.trees.base import SpanningTree

__all__ = ["host_based_multicast", "host_forwarding_program", "host_root_program"]


def host_root_program(
    cluster: "Cluster", tree: "SpanningTree", size: int, info: Any = None
) -> Generator:
    """Root host: post one unicast per child (the NIC pipelines them)."""
    port = cluster.port(tree.root)
    handles = []
    for child in tree.children_of(tree.root):
        handle = yield from port.send(child, size, info=info)
        handles.append(handle.done)
    yield cluster.sim.all_of(handles)


def host_forwarding_program(
    cluster: "Cluster",
    tree: "SpanningTree",
    node_id: int,
    size: int,
    delivered: dict[int, float],
    completions: dict[int, Any] | None = None,
) -> Generator:
    """Non-root host: blocking receive, then unicast to own children."""
    port = cluster.port(node_id)
    completion = yield from port.receive()
    delivered[node_id] = cluster.sim.now
    if completions is not None:
        completions[node_id] = completion
    handles = []
    for child in tree.children_of(node_id):
        handle = yield from port.send(
            child, size, info=completion.info or None
        )
        handles.append(handle.done)
    if handles:
        yield cluster.sim.all_of(handles)


def host_based_multicast(
    cluster: "Cluster", tree: "SpanningTree", size: int, info: Any = None
) -> dict[str, Any]:
    """One-shot host-based multicast along *tree*; mirrors
    :func:`repro.mcast.manager.multicast` for comparison runs."""
    delivered: dict[int, float] = {}
    completions: dict[int, Any] = {}
    procs = [
        cluster.spawn(
            host_root_program(cluster, tree, size, info=info), name="hb_root"
        )
    ]
    for node_id in tree.nodes:
        if node_id == tree.root:
            continue
        procs.append(
            cluster.spawn(
                host_forwarding_program(
                    cluster, tree, node_id, size, delivered, completions
                ),
                name=f"hb_fwd[{node_id}]",
            )
        )
    cluster.run(until=cluster.sim.all_of(procs))
    return {"delivered": delivered, "completions": completions}
