"""The LFC baseline: NIC-level hop-by-hop credit flow control.

"LFC provides link-level point-to-point flow control with NIC-level
credits.  But it is deadlock prone since a multicast packet may be
injected into the network by the root, while an intermediate NIC is
running out of credits to forward the message" (paper §2).

This module is a *minimal faithful* model of the failure mode, not a
full LFC reimplementation.  A credit is a reservation of a buffer in the
receiving NIC's shared pool; a forwarding NIC keeps its buffer occupied
until it has obtained credits for (and sent to) all of its children.
Two concurrent multicasts whose trees forward in opposite directions
between a pair of saturated nodes then hold their last buffers while
each waits for the other's — a circular wait.

The paper's scheme avoids this two ways, both demonstrable here: it
uses no credits at all (ack/timeout instead), and its ID-ordered trees
make every buffer wait point from a smaller to a larger node ID, which
cannot cycle (see ``test_id_ordered_trees_never_deadlock_lfc``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.errors import CreditError, DeadlockDetected
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.trees.base import SpanningTree

__all__ = ["LFCNode", "LFCFabric", "run_lfc_multicasts"]


@dataclass
class _Wait:
    mcast_id: int
    on_node: int


class LFCNode:
    """One NIC with a shared receive-buffer pool."""

    def __init__(self, fabric: "LFCFabric", node_id: int, n_buffers: int):
        self.fabric = fabric
        self.sim = fabric.sim
        self.id = node_id
        #: free buffer slots; a sender takes one (a "credit") per packet
        self.pool = Store(self.sim, name=f"lfc[{node_id}].pool")
        for i in range(n_buffers):
            self.pool.put(i)
        self.delivered: list[int] = []
        #: mcast_id -> node whose pool this node is currently waiting on
        self.waiting: dict[int, int] = {}


class LFCFabric:
    """Nodes + credit-gated hop-by-hop multicast forwarding."""

    def __init__(self, sim: "Simulator", n_nodes: int, n_buffers: int = 1,
                 hop_time: float = 5.0):
        if n_buffers < 1:
            raise CreditError("need at least one buffer per node")
        self.sim = sim
        self.hop_time = hop_time
        self.nodes = [LFCNode(self, i, n_buffers) for i in range(n_nodes)]

    def multicast(self, mcast_id: int, tree: "SpanningTree") -> Generator:
        """Root-side injection process for one multicast.

        The root sends from its own send queue (no receive buffer held),
        exactly why "the root node in a broadcast operation ... will not
        be in such a cycle" (paper §5).
        """
        yield from self._forward(mcast_id, tree, tree.root, holds_buffer=False)

    def _forward(
        self, mcast_id: int, tree: "SpanningTree", at: int, holds_buffer: bool
    ) -> Generator:
        node = self.nodes[at]
        for child in tree.children_of(at):
            node.waiting[mcast_id] = child
            slot = yield self.nodes[child].pool.get()
            node.waiting.pop(mcast_id, None)
            yield self.sim.timeout(self.hop_time)
            self.sim.process(
                self._receive(mcast_id, tree, child, slot),
                name=f"lfc_rx[{child}]#{mcast_id}",
            )

    def _receive(
        self, mcast_id: int, tree: "SpanningTree", at: int, slot
    ) -> Generator:
        node = self.nodes[at]
        node.delivered.append(mcast_id)
        # Forward while occupying the pool slot the sender reserved:
        # LFC keeps the packet in the buffer it arrived in until every
        # child copy has left (obtained ITS downstream reservations).
        yield from self._forward(mcast_id, tree, at, holds_buffer=True)
        node.pool.put(slot)

    # -- analysis -------------------------------------------------------------
    def wait_graph(self) -> dict[int, set[int]]:
        """node -> set of nodes whose pool it is currently waiting on."""
        graph: dict[int, set[int]] = {}
        for node in self.nodes:
            for _mcast, target in node.waiting.items():
                graph.setdefault(node.id, set()).add(target)
        return graph

    def has_cyclic_wait(self) -> bool:
        """True if the buffer-wait graph contains a cycle.

        Note the wait edge node→child is a proxy for "holder of a slot
        at *node* waits for a slot at *child*"; with ID-ordered trees
        all such edges (from non-roots) go small→large and cannot cycle.
        """
        graph = self.wait_graph()

        def reaches_self(start: int) -> bool:
            seen: set[int] = set()
            stack = list(graph.get(start, ()))
            while stack:
                cur = stack.pop()
                if cur == start:
                    return True
                if cur in seen:
                    continue
                seen.add(cur)
                stack.extend(graph.get(cur, ()))
            return False

        return any(reaches_self(node) for node in graph)


def run_lfc_multicasts(
    sim: "Simulator",
    n_nodes: int,
    trees: list["SpanningTree"],
    n_buffers: int = 1,
    horizon: float = 10_000.0,
) -> LFCFabric:
    """Run concurrent LFC multicasts; raise on credit deadlock.

    Returns the fabric for inspection.  Raises
    :class:`DeadlockDetected` if the simulation quiesces with multicasts
    incomplete — the scenario the paper's scheme is immune to.
    """
    fabric = LFCFabric(sim, n_nodes, n_buffers=n_buffers)
    procs = [
        sim.process(fabric.multicast(i, tree), name=f"lfc_mcast#{i}")
        for i, tree in enumerate(trees)
    ]
    sim.run(until=horizon)
    stuck = [p for p in procs if p.is_alive]
    blocked = {n.id: dict(n.waiting) for n in fabric.nodes if n.waiting}
    if stuck or blocked:
        if fabric.has_cyclic_wait():
            raise DeadlockDetected(
                f"LFC credit deadlock: circular wait {fabric.wait_graph()}"
            )
        raise DeadlockDetected(
            f"LFC multicasts stalled without completing (blocked: {blocked})"
        )
    return fabric
