"""Sustained-traffic workloads on top of the scenario layer.

The paper measures one-shot broadcasts; this package runs the *serving*
regime those measurements argue for — many concurrent multicast groups,
continuous seeded arrivals, membership churn — declared through
:class:`~repro.scenario.spec.TrafficSpec` on a scenario and executed by
:class:`~repro.workload.serving.TrafficEngine`.

Layering: ``repro.workload`` sits above the engines and the scenario
layer (it may import ``repro.sim``/``repro.net``/``repro.mcast``/
``repro.scenario`` and friends, never ``repro.experiments`` or
``repro.obs``).  The scenario harness cannot import *us*, so importing
this package registers the serving runner with the harness's workload
registry — entry points that run serving scenarios (`python -m
repro.experiments --scenario`, ``repro.perf``) just import
``repro.workload`` first.
"""

from repro.scenario.harness import register_workload_runner
from repro.workload.serving import (
    GroupStats,
    ServingStats,
    TrafficEngine,
    run_serving,
)

__all__ = ["GroupStats", "ServingStats", "TrafficEngine", "run_serving"]

register_workload_runner("serving", run_serving)
