"""GM-2 myrinet packet descriptors.

"Recent alpha releases of GM-2.0 provide a myrinet packet descriptor for
every network packet and also a callback handler to each descriptor.  A
packet descriptor and its callback handler provide a way to take necessary
actions on this packet when appropriate ... to send a replica to another
destination, a callback handler can change the packet header and queue it
for transmission again" (paper §4).

A descriptor couples a packet, the SRAM buffer holding its bytes, and a
completion callback run on the NIC once the transmit DMA engine has
finished putting the packet on the wire.  Callbacks may be plain callables
(cheap bookkeeping) or generators (NIC work: they will typically hold the
NIC CPU to rewrite the header and then re-queue the same descriptor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.packet import Packet
    from repro.nic.sram import SRAMBuffer

__all__ = ["PacketDescriptor"]

_desc_ids = count()

#: A callback receives the descriptor; returning a generator makes the NIC
#: run it as simulated work.
DescriptorCallback = Callable[
    ["PacketDescriptor"], Optional[Generator[Any, Any, None]]
]


@dataclass
class PacketDescriptor:
    """Describes one queued network packet.

    Attributes
    ----------
    packet:
        The packet to transmit.
    buffer:
        SRAM buffer holding the packet bytes; ``None`` for header-only
        control packets (ACKs) generated in scratch space.
    on_transmit:
        Callback invoked after the transmit DMA engine completes.  When
        ``None``, the NIC's default completion frees the buffer.
    context:
        Free-form protocol state riding with the descriptor (e.g. the
        remaining destination list of a multisend).
    """

    packet: "Packet"
    buffer: Optional["SRAMBuffer"] = None
    on_transmit: DescriptorCallback | None = None
    context: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_desc_ids))

    def retarget(self, **header_overrides: Any) -> None:
        """Rewrite the packet header in place for the next replica.

        This models the callback-handler header change: the *same* SRAM
        bytes go out again under a new header, so only a fresh packet
        identity (clone) is created — no data movement.
        """
        self.packet = self.packet.clone(**header_overrides)

    def __repr__(self) -> str:
        return f"<desc#{self.uid} {self.packet.describe()}>"
