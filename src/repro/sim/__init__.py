"""Deterministic discrete-event simulation kernel.

A small, from-scratch, SimPy-like kernel: processes are Python generators
that ``yield`` :class:`SimEvent` instances (timeouts, resource requests,
store gets, composite conditions) and are resumed when those events trigger.

The kernel is fully deterministic: the event heap is ordered by
``(time, priority, sequence)`` and all randomness must flow through named,
seeded streams obtained from :meth:`Simulator.rng`.
"""

from repro.sim.engine import Simulator
from repro.sim.events import (
    AllOf,
    AnyOf,
    Interrupt,
    SimEvent,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "SimEvent",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
