"""Event primitives for the simulation kernel.

Every coordination point in the simulator is a :class:`SimEvent`.  Processes
yield events; components trigger them.  An event carries a value (delivered
to every waiter) or a failure exception (raised in every waiter).
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["SimEvent", "Timeout", "Condition", "AnyOf", "AllOf", "Interrupt"]


class _Pending:
    """Sentinel for 'no value yet'."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING = _Pending()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt *cause* (an arbitrary object) is available as
    ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot event.

    An event goes through three states: *pending* (just created),
    *triggered* (``succeed``/``fail`` called, now sitting in the event
    queue), and *processed* (callbacks have run).  Triggering twice is a
    programming error and raises :class:`RuntimeError`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name")

    def __init__(self, sim: "Simulator", name: str | None = None):
        self.sim = sim
        #: Callables invoked with this event when it is processed.  Set to
        #: ``None`` once processed (late adds then run immediately).
        self.callbacks: list[Callable[[SimEvent], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool | None = None
        self.name = name

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, *, priority: int = 1) -> "SimEvent":
        """Mark the event successful and schedule its callbacks *now*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined Simulator._schedule (succeed is the kernel's single
        # hottest trigger): each priority rides its own now-queue.
        sim = self.sim
        if priority == 1:
            sim._now_q.append(self)
        else:
            sim._now_uq.append(self)
        return self

    def fail(self, exception: BaseException, *, priority: int = 1) -> "SimEvent":
        """Mark the event failed; waiters will have *exception* raised."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        if priority == 1:
            sim._now_q.append(self)
        else:
            sim._now_uq.append(self)
        return self

    # -- waiting ---------------------------------------------------------
    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Attach *callback*; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Detach *callback* if still pending (no-op when absent)."""
        if self.callbacks is not None:
            try:
                self.callbacks.remove(callback)
            except ValueError:
                pass

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"

    # Composition sugar: ``ev_a | ev_b`` and ``ev_a & ev_b``.
    def __or__(self, other: "SimEvent") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "SimEvent") -> "AllOf":
        return AllOf(self.sim, [self, other])


class Timeout(SimEvent):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        name: str | None = None,
    ):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Flattened hot path (one Timeout per modelled wait): assign the
        # slots directly and push straight onto the heap rather than
        # chaining through SimEvent.__init__ and Simulator._schedule.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self.name = name
        self.delay = delay
        if delay == 0.0:
            # Zero-delay timeouts ride the kernel's now-queue (Kernel
            # v3): FIFO append order equals heap (when, priority, seq)
            # order for same-instant NORMAL work, minus the heap ops.
            sim._now_q.append(self)
        else:
            _heappush(
                sim._heap, (sim._now + delay, 1, next(sim._seq), self)
            )


class Condition(SimEvent):
    """Base for composite events over a fixed set of sub-events.

    The condition's value is a dict mapping each *triggered* sub-event to
    its value, in trigger order.  If any sub-event fails before the
    condition triggers, the condition fails with that exception.
    """

    __slots__ = ("events", "_results", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim)
        self.events: tuple[SimEvent, ...] = tuple(events)
        self._results: dict[SimEvent, Any] = {}
        self._count = 0
        if not self.events:
            self.succeed(self._results)
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
            ev.add_callback(self._check)

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            self._detach()
            return
        self._count += 1
        self._results[event] = event.value
        if self._satisfied(self._count, len(self.events)):
            self.succeed(dict(self._results))
            self._detach()

    def _detach(self) -> None:
        """Drop ``_check`` from still-pending sub-events once decided.

        Without this, an ``AnyOf`` over a long-lived event (a watchdog
        timer, a port's close event) leaves a dead callback — and a
        reference to this condition — on every loser for the rest of the
        loser's life.
        """
        for ev in self.events:
            ev.remove_callback(self._check)


class AnyOf(Condition):
    """Triggers as soon as *any* sub-event triggers."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1


class AllOf(Condition):
    """Triggers once *all* sub-events have triggered."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total
