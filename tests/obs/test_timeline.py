"""Unit tests for the Chrome trace-event exporter."""

from repro.obs.timeline import (
    chrome_trace,
    chrome_trace_events,
    spans_from_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.trace import TraceRecord, Tracer


def _rec(t, comp, cat, **fields):
    return TraceRecord(t, comp, cat, fields)


def test_span_pairing_makes_x_events():
    events = chrome_trace_events([
        _rec(1.0, "nic[0]", "tx_start", uid=7, dst=1),
        _rec(4.0, "nic[0]", "tx_done", uid=7),
    ])
    x = [e for e in events if e["ph"] == "X"]
    assert len(x) == 1
    assert x[0]["name"] == "tx"
    assert x[0]["ts"] == 1.0 and x[0]["dur"] == 3.0
    assert x[0]["pid"] == 0
    assert x[0]["args"]["dst"] == 1


def test_reentrant_uid_pairs_as_stack():
    # A retransmission reuses the uid: two spans, not a swallowed start.
    events = chrome_trace_events([
        _rec(1.0, "nic[0]", "tx_start", uid=7),
        _rec(2.0, "nic[0]", "tx_done", uid=7),
        _rec(9.0, "nic[0]", "tx_start", uid=7),
        _rec(11.0, "nic[0]", "tx_done", uid=7),
    ])
    x = sorted((e["ts"], e["dur"]) for e in events if e["ph"] == "X")
    assert x == [(1.0, 1.0), (9.0, 2.0)]


def test_unmatched_end_becomes_instant():
    events = chrome_trace_events([_rec(3.0, "nic[0]", "tx_done", uid=9)])
    assert [e["ph"] for e in events if e["ph"] not in "M"] == ["i"]


def test_pid_per_node_tid_per_engine():
    events = chrome_trace_events([
        _rec(1.0, "nic[2]", "rx", uid=1),
        _rec(2.0, "host[2]", "copy", uid=1),
        _rec(3.0, "nic[5]", "rx", uid=1),
        _rec(4.0, "network", "hop", uid=1),
    ])
    by_name = {}
    for e in events:
        if e["ph"] == "i":
            by_name[e["name"]] = e
    assert by_name["rx"]["pid"] in (2, 5)
    assert by_name["copy"]["pid"] == 2
    # nic and host on node 2 get distinct tids.
    nic2 = [e for e in events
            if e["ph"] == "i" and e["pid"] == 2 and e["name"] == "rx"]
    host2 = [e for e in events
             if e["ph"] == "i" and e["pid"] == 2 and e["name"] == "copy"]
    assert nic2[0]["tid"] != host2[0]["tid"]
    # "network" has no node index: synthetic pid past the last node (5).
    assert by_name["hop"]["pid"] == 6
    # Metadata names the rails.
    proc_names = {e["pid"]: e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "process_name"}
    thread_names = {e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    assert proc_names[2] == "node[2]"
    assert proc_names[6] == "network"
    assert {"nic", "host"} <= thread_names


def test_payload_shape_and_validator_accepts():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "nic[0]", "tx_start", {"uid": 1})
    tracer.record(2.0, "nic[0]", "tx_done", {"uid": 1})
    payload = chrome_trace(tracer)
    assert payload["otherData"]["time_unit"] == "us"
    assert validate_chrome_trace(payload) == []


def test_validator_rejects_malformed():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": 3}) != []
    bad_ph = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0}]}
    assert any("bad ph" in e for e in validate_chrome_trace(bad_ph))
    no_ts = {"traceEvents": [{"ph": "i", "name": "x", "pid": 0, "tid": 0}]}
    assert any("ts" in e for e in validate_chrome_trace(no_ts))
    bool_ts = {"traceEvents": [
        {"ph": "i", "name": "x", "pid": 0, "tid": 0, "ts": True}]}
    assert any("ts" in e for e in validate_chrome_trace(bool_ts))
    no_dur = {"traceEvents": [
        {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1.0}]}
    assert any("dur" in e for e in validate_chrome_trace(no_dur))


def test_json_safe_coerces_exotic_fields(tmp_path):
    class Opaque:
        def __repr__(self):
            return "<opaque>"

    tracer = Tracer(enabled=True)
    tracer.record(0.0, "nic[0]", "evt", {
        "obj": Opaque(), "seq": {3, 1}, "pair": (1, 2), "sub": {"k": Opaque()},
    })
    path = tmp_path / "t.json"
    payload = write_chrome_trace(str(path), tracer)
    assert path.exists()
    inst = [e for e in payload["traceEvents"] if e["ph"] == "i"][0]
    assert inst["args"]["obj"] == "<opaque>"
    assert inst["args"]["seq"] == [1, 3]
    assert inst["args"]["pair"] == [1, 2]
    assert inst["args"]["sub"] == {"k": "<opaque>"}


def test_spans_from_chrome_trace_roundtrip():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "nic[3]", "tx_start", {"uid": 4})
    tracer.record(2.5, "nic[3]", "tx_done", {"uid": 4})
    payload = chrome_trace(tracer)
    assert spans_from_chrome_trace(payload, "tx") == [(3, 1.0, 2.5)]
    assert spans_from_chrome_trace(payload, "nope") == []


def test_events_sorted_by_time():
    events = chrome_trace_events([
        _rec(5.0, "nic[1]", "b", uid=1),
        _rec(1.0, "nic[0]", "a", uid=2),
    ])
    ts = [e["ts"] for e in events if e["ph"] != "M"]
    assert ts == sorted(ts)


def test_counter_events_from_gauge_series():
    from repro.obs.timeline import counter_events

    series = {
        "nic.send_buffers_in_use": [(2.0, 1, 5), (1.0, 0, 3)],
        "proto.send_window_depth": [(1.5, -1, 2.0)],
    }
    events = counter_events(series)
    assert all(e["ph"] == "C" for e in events)
    assert [(e["ts"], e["pid"], e["name"], e["args"]["value"])
            for e in events] == [
        (1.0, 0, "nic.send_buffers_in_use", 3),
        (1.5, 0, "proto.send_window_depth", 2.0),  # node -1 -> pid 0
        (2.0, 1, "nic.send_buffers_in_use", 5),
    ]
    payload = chrome_trace([], counters=series)
    assert validate_chrome_trace(payload) == []


def test_validator_rejects_malformed_counters():
    def with_args(args):
        return {"traceEvents": [
            {"ph": "C", "name": "c", "pid": 0, "tid": 0, "ts": 1.0,
             "args": args}]}

    assert any("args" in e for e in validate_chrome_trace(with_args({})))
    assert any(
        "numeric" in e
        for e in validate_chrome_trace(with_args({"value": "high"}))
    )
    assert any(
        "numeric" in e
        for e in validate_chrome_trace(with_args({"value": True}))
    )
    assert validate_chrome_trace(with_args({"value": 4})) == []
