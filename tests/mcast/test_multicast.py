"""Integration tests: NIC-based multicast end to end."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast import host_based_multicast, install_group, multicast
from repro.trees import build_tree


def make_cluster(n=8, **kw):
    return Cluster(ClusterConfig(n_nodes=n, **kw))


def nb_run(cluster, size, shape="optimal", root=0):
    tree = build_tree(
        root,
        [i for i in range(cluster.n_nodes) if i != root],
        shape=shape,
        cost=cluster.cost,
        size=size,
    )
    return tree, multicast(cluster, tree, size)


class TestDelivery:
    def test_all_destinations_receive(self):
        cluster = make_cluster(8)
        _tree, result = nb_run(cluster, 1024)
        assert sorted(result["delivered"]) == list(range(1, 8))

    def test_flat_tree_multisend_only(self):
        cluster = make_cluster(5)
        tree = build_tree(0, [1, 2, 3, 4], shape="flat")
        result = multicast(cluster, tree, 256)
        assert sorted(result["delivered"]) == [1, 2, 3, 4]

    def test_chain_tree_forwarding(self):
        cluster = make_cluster(5)
        tree = build_tree(0, [1, 2, 3, 4], shape="chain")
        result = multicast(cluster, tree, 256)
        assert sorted(result["delivered"]) == [1, 2, 3, 4]
        # Chain order: each node after its predecessor.
        d = result["delivered"]
        assert d[1] < d[2] < d[3] < d[4]

    def test_multipacket_message(self):
        cluster = make_cluster(4)
        _tree, result = nb_run(cluster, 16384)
        assert sorted(result["delivered"]) == [1, 2, 3]

    def test_zero_byte_multicast(self):
        cluster = make_cluster(4)
        _tree, result = nb_run(cluster, 0)
        assert sorted(result["delivered"]) == [1, 2, 3]

    def test_send_completes_after_all_acks(self):
        cluster = make_cluster(8)
        _tree, result = nb_run(cluster, 512)
        assert "send_complete" in result

    def test_app_info_propagates_through_forwarding(self):
        cluster = make_cluster(6)
        tree = build_tree(0, range(1, 6), shape="chain")
        result = multicast(cluster, tree, 64, info={"op": "bcast", "v": 42})
        for node, completion in result["completions"].items():
            assert completion.info["v"] == 42, node

    def test_group_ids_isolated(self):
        # Two groups on the same nodes do not interfere.
        cluster = make_cluster(4)
        t1 = build_tree(0, [1, 2, 3], shape="chain")
        r1 = multicast(cluster, t1, 128, group_id=101)
        t2 = build_tree(0, [1, 2, 3], shape="flat")
        r2 = multicast(cluster, t2, 128, group_id=102)
        assert sorted(r1["delivered"]) == sorted(r2["delivered"]) == [1, 2, 3]

    def test_non_member_never_receives(self):
        cluster = make_cluster(6)
        tree = build_tree(0, [1, 2, 3], shape="flat")
        multicast(cluster, tree, 128)
        assert cluster.port(4).messages_received == 0
        assert cluster.port(5).messages_received == 0

    def test_arbitrary_root(self):
        cluster = make_cluster(8)
        _tree, result = nb_run(cluster, 256, root=5)
        assert sorted(result["delivered"]) == [0, 1, 2, 3, 4, 6, 7]


class TestHostBasedBaseline:
    def test_all_destinations_receive(self):
        cluster = make_cluster(8)
        tree = build_tree(0, range(1, 8), shape="binomial")
        result = host_based_multicast(cluster, tree, 1024)
        assert sorted(result["delivered"]) == list(range(1, 8))

    def test_multipacket(self):
        cluster = make_cluster(8)
        tree = build_tree(0, range(1, 8), shape="binomial")
        result = host_based_multicast(cluster, tree, 16384)
        assert sorted(result["delivered"]) == list(range(1, 8))

    def test_info_relayed_by_hosts(self):
        cluster = make_cluster(4)
        tree = build_tree(0, [1, 2, 3], shape="binomial")
        result = host_based_multicast(cluster, tree, 64, info={"x": 1})
        assert all(
            c.info.get("x") == 1 for c in result["completions"].values()
        )


class TestPaperComparisons:
    def test_nb_beats_hb_small_messages_16_nodes(self):
        size = 256
        nb_cluster = make_cluster(16)
        _t, nb = nb_run(nb_cluster, size)
        hb_cluster = make_cluster(16)
        tree = build_tree(0, range(1, 16), shape="binomial")
        hb = host_based_multicast(hb_cluster, tree, size)
        nb_lat = max(nb["delivered"].values())
        hb_lat = max(hb["delivered"].values())
        assert nb_lat < hb_lat
        # Paper Fig. 5b: improvement for <=512 B around 1.2-1.6.
        assert 1.1 < hb_lat / nb_lat < 2.2

    def test_nb_beats_hb_16kb_16_nodes(self):
        size = 16384
        nb_cluster = make_cluster(16)
        _t, nb = nb_run(nb_cluster, size)
        hb_cluster = make_cluster(16)
        tree = build_tree(0, range(1, 16), shape="binomial")
        hb = host_based_multicast(hb_cluster, tree, size)
        nb_lat = max(nb["delivered"].values())
        hb_lat = max(hb["delivered"].values())
        # Paper Fig. 5b: ~1.86 improvement at 16 KB (pipelined forwarding
        # vs store-and-forward).
        assert 1.3 < hb_lat / nb_lat < 2.6

    def test_dip_at_single_packet_large_messages(self):
        # Paper: 2-4 KB messages benefit least.
        def factor(size):
            nb_cluster = make_cluster(16)
            _t, nb = nb_run(nb_cluster, size)
            hb_cluster = make_cluster(16)
            tree = build_tree(0, range(1, 16), shape="binomial")
            hb = host_based_multicast(hb_cluster, tree, size)
            return max(hb["delivered"].values()) / max(nb["delivered"].values())

        f_small, f_4k, f_16k = factor(128), factor(4096), factor(16384)
        assert f_4k < f_small
        assert f_4k < f_16k


class TestResourceDiscipline:
    def test_no_forwarding_state_leaks(self):
        cluster = make_cluster(8)
        _tree, _result = nb_run(cluster, 8192)
        cluster.run()  # drain acks and timers
        for node in cluster.nodes:
            assert node.mcast.pending_retransmit_state() == {}
            for state in node.mcast.table._groups.values():
                assert not state.held
            assert node.memory.registered_bytes == 0

    def test_sram_buffers_all_returned(self):
        cluster = make_cluster(8)
        _tree, _result = nb_run(cluster, 16384)
        cluster.run()
        for node in cluster.nodes:
            assert node.nic.send_buffers.free == node.nic.send_buffers.size
            assert node.nic.recv_buffers.free == node.nic.recv_buffers.size

    def test_send_token_recycled_at_root(self):
        cluster = make_cluster(8)
        _tree, _result = nb_run(cluster, 512)
        cluster.run()
        port = cluster.port(0)
        assert port.free_send_tokens == cluster.cost.send_tokens_per_port

    def test_loss_free_run_no_retransmissions(self):
        cluster = make_cluster(16)
        _tree, _result = nb_run(cluster, 16384)
        cluster.run()
        assert all(n.mcast.retransmissions == 0 for n in cluster.nodes)


class TestMultisendTiming:
    def test_multisend_beats_host_unicasts_small(self):
        # Fig. 3: one source, 4 destinations, no forwarding.
        size = 64
        n = 5

        def run_nb():
            cluster = make_cluster(n)
            tree = build_tree(0, range(1, n), shape="flat")
            result = multicast(cluster, tree, size)
            return max(result["delivered"].values())

        def run_hb():
            cluster = make_cluster(n)
            tree = build_tree(0, range(1, n), shape="flat")
            result = host_based_multicast(cluster, tree, size)
            return max(result["delivered"].values())

        nb, hb = run_nb(), run_hb()
        assert nb < hb
        assert 1.3 < hb / nb < 2.6  # paper: up to 2.05 for <=128 B

    def test_multisend_levels_off_below_one_at_16kb(self):
        size = 16384
        n = 5
        cluster = make_cluster(n)
        tree = build_tree(0, range(1, n), shape="flat")
        nb = max(multicast(cluster, tree, size)["delivered"].values())
        cluster2 = make_cluster(n)
        hb = max(
            host_based_multicast(cluster2, tree, size)["delivered"].values()
        )
        # Large messages: both wire-bound; NB pays header rewrites.
        assert 0.8 < hb / nb < 1.1
