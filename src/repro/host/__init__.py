"""Host-side models: the host process/CPU and the node (host + NIC)."""

from repro.host.process import Host
from repro.host.node import Node

__all__ = ["Host", "Node"]
