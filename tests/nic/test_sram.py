"""Unit tests for SRAM buffer pools."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nic.sram import BufferPool
from repro.sim import Simulator


def test_pool_starts_full():
    sim = Simulator()
    pool = BufferPool(sim, 4)
    assert pool.free == 4
    assert pool.in_use == 0


def test_size_validated():
    with pytest.raises(ValueError):
        BufferPool(Simulator(), 0)


def test_try_acquire_and_release():
    sim = Simulator()
    pool = BufferPool(sim, 2)
    a = pool.try_acquire()
    b = pool.try_acquire()
    assert a is not None and b is not None
    assert pool.try_acquire() is None
    assert pool.misses == 1
    a.release()
    assert pool.free == 1


def test_double_release_raises():
    sim = Simulator()
    pool = BufferPool(sim, 1)
    buf = pool.try_acquire()
    buf.release()
    with pytest.raises(RuntimeError):
        buf.release()


def test_cross_pool_release_rejected():
    sim = Simulator()
    p1, p2 = BufferPool(sim, 1), BufferPool(sim, 1)
    buf = p1.try_acquire()
    with pytest.raises(ValueError):
        p2.release(buf)


def test_blocking_acquire_fifo():
    sim = Simulator()
    pool = BufferPool(sim, 1)
    held = pool.try_acquire()
    order = []

    def waiter(tag):
        buf = yield pool.acquire()
        order.append(tag)
        yield sim.timeout(1.0)
        buf.release()

    sim.process(waiter("first"))
    sim.process(waiter("second"))
    sim.call_at(5.0, held.release)
    sim.run()
    assert order == ["first", "second"]


def test_blocking_acquire_immediate_when_free():
    sim = Simulator()
    pool = BufferPool(sim, 2)
    ev = pool.acquire()
    assert ev.triggered


def test_waiters_do_not_jump_queue_via_try_acquire():
    # While waiters are queued, try_acquire on an exhausted pool fails.
    sim = Simulator()
    pool = BufferPool(sim, 1)
    pool.try_acquire()
    pool.acquire()  # queued waiter
    assert pool.try_acquire() is None


def test_release_hands_directly_to_waiter():
    sim = Simulator()
    pool = BufferPool(sim, 1)
    buf = pool.try_acquire()
    got = []
    pool.acquire().add_callback(lambda ev: got.append(ev.value))
    buf.release()
    sim.run()
    assert len(got) == 1
    assert pool.free == 0  # handed over, not returned to the free list


def test_high_water_mark():
    sim = Simulator()
    pool = BufferPool(sim, 3)
    a = pool.try_acquire()
    b = pool.try_acquire()
    a.release()
    b.release()
    assert pool.max_in_use == 2


@given(ops=st.lists(st.booleans(), min_size=1, max_size=60))
def test_property_free_plus_in_use_is_constant(ops):
    sim = Simulator()
    pool = BufferPool(sim, 5)
    held = []
    for acquire in ops:
        if acquire:
            buf = pool.try_acquire()
            if buf is not None:
                held.append(buf)
        elif held:
            held.pop().release()
        assert pool.free + pool.in_use == 5
        assert pool.in_use == len(held)
