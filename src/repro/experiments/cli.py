"""Command line driver: regenerate the paper's figures.

Usage::

    python -m repro.experiments --figure fig3
    python -m repro.experiments --all --quick
    python -m repro.experiments --all -o EXPERIMENTS-results.md
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
import time

from repro.experiments import FIGURES
from repro.experiments.parallel import default_jobs

__all__ = ["main"]


def run_figure(figure_id: str, quick: bool, jobs: int | None = 1):
    module = importlib.import_module(FIGURES[figure_id])
    # Sweep figures fan cells across workers; fig1/fig2 are single probes
    # with no jobs parameter.
    if "jobs" in inspect.signature(module.run).parameters:
        return module.run(quick=quick, jobs=jobs)
    return module.run(quick=quick)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from 'High Performance and "
        "Reliable NIC-Based Multicast over Myrinet/GM-2' (ICPP 2003).",
    )
    parser.add_argument(
        "--figure", choices=sorted(FIGURES), action="append",
        help="figure(s) to run (repeatable)",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweeps/iterations (seconds instead of minutes)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="also append rendered results to this markdown file",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep figures "
        "(default: all CPUs; 1 = serial in-process)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error("--jobs must be >= 1")
    targets = sorted(FIGURES) if args.all else (args.figure or [])
    if not targets:
        parser.error("pick --all or at least one --figure")
    chunks: list[str] = []
    for figure_id in targets:
        started = time.time()
        print(f"=== {figure_id} ===", flush=True)
        result = run_figure(figure_id, quick=args.quick, jobs=jobs)
        text = result.render()
        if "table" in result.extra:
            text += "\n\n" + result.extra["table"]
        if "forwarding_timeline" in result.extra:
            text += "\n\nforwarding timeline: " + ", ".join(
                f"{k}={v:.1f}us"
                for k, v in result.extra["forwarding_timeline"].items()
            )
        print(text)
        print(f"({time.time() - started:.1f}s wall)\n", flush=True)
        chunks.append(text)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n")
        print(f"appended results to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
