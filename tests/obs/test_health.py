"""End-to-end obs tests: observed runs, health reports, the obs CLI,
and the Fig. 2 timeline round-trip acceptance check."""

import json

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast.schemes import available_schemes, get_scheme
from repro.net.fault import ScriptedLoss
from repro.net.packet import PacketType
from repro.obs.health import (
    ACK_LATENCY_METRIC,
    RETRANSMIT_COUNTERS,
    build_health_report,
    render_health_report,
    run_observed,
)
from repro.obs.timeline import (
    chrome_trace,
    spans_from_chrome_trace,
    validate_chrome_trace,
)
from repro.trees import build_tree


def first_data_drop():
    return ScriptedLoss(
        lambda p: p.header.ptype in (PacketType.DATA, PacketType.MCAST_DATA)
        and p.header.seq == 1,
        times=1,
    )


def test_observed_run_populates_registry():
    run = run_observed("nic_based", nodes=8, size=4096,
                       loss=first_data_drop())
    assert len(run.delivered) == 7
    reg = run.registry
    assert reg.value("nic.packets_sent") > 0
    assert reg.value("net.link_bytes") > 8 * 4096  # replicas on the wire
    assert reg.value("net.fault_drops") == 1
    # nic_based recovers via the per-child selective resend.
    assert reg.value("mcast.laggard_resends") >= 1
    assert reg.value(ACK_LATENCY_METRIC) > 0  # acks observed
    assert reg.value("mcast.group_fanout") > 0


def test_health_report_sections_every_scheme():
    """ISSUE acceptance: retransmit, ack-latency histogram, and
    drop-counter sections for every scheme in the registry."""
    runs = [
        run_observed(s, nodes=4, size=1024, loss=first_data_drop())
        for s in available_schemes()
    ]
    report = build_health_report(runs)
    assert report["schemes_available"] == list(available_schemes())
    assert len(report["runs"]) == len(list(available_schemes()))
    for rep in report["runs"]:
        assert set(rep["retransmits"]) == set(RETRANSMIT_COUNTERS)
        ack = rep["ack_latency"]
        assert ack["type"] == "histogram"
        for key in ("count", "mean", "p50", "p99", "buckets"):
            assert key in ack
        assert isinstance(rep["drops"], dict)
        assert rep["delivered"] >= 3  # all members heard the message
        assert rep["sim_time_us"] > 0

    text = render_health_report(runs)
    assert "# Protocol health report" in text
    for scheme in available_schemes():
        assert f"## {scheme}:" in text
    assert "ack latency (us):" in text
    assert "drops:" in text


def test_injected_drop_counted_once():
    # One scripted wire loss == one net.fault_drops tally, same number
    # the fault model reports: a single source of truth.
    run = run_observed("nic_based", nodes=4, size=1024,
                       loss=first_data_drop())
    rep = build_health_report([run])["runs"][0]
    assert rep["drops"].get("net.fault_drops") == 1


def test_fig2_timeline_roundtrip():
    """ISSUE acceptance: the exported Chrome trace's spans round-trip the
    Fig. 2 send/forward timeline recorded by the tracer."""
    run = run_observed("nic_based", nodes=8, size=4096,
                       loss=first_data_drop(), trace=True)
    payload = chrome_trace(run.tracer)
    assert validate_chrome_trace(payload) == []

    # Every tracer tx span must survive the export byte-for-byte (clone()
    # gives forwarded packets fresh uids, so pairing is unambiguous).
    tracer_spans = sorted(
        (start, end)
        for _uid, start, end in run.tracer.spans("tx_start", "tx_done", "uid")
    )
    exported = sorted(
        (start, end)
        for _pid, start, end in spans_from_chrome_trace(payload, "tx")
    )
    assert exported == tracer_spans
    assert len(exported) >= 7  # at least one send per member

    # Forward hops (the NIC-level relay of Fig. 2) appear as instants at
    # the exact times the tracer recorded.
    fwd_records = run.tracer.filter(category="forward")
    assert len(fwd_records) > 0
    fwd_instants = [e for e in payload["traceEvents"]
                    if e["ph"] == "i" and e["name"] == "forward"]
    assert sorted(e["ts"] for e in fwd_instants) == sorted(
        r.time for r in fwd_records
    )
    # Forwarding happens on intermediate nodes, not the root.
    assert all(e["pid"] != 0 for e in fwd_instants)


def test_observation_does_not_perturb_schedule():
    """The golden-trace guarantee, stated on outcomes: an observed run
    delivers the same payloads at the same simulated times as the same
    run with no registry attached."""
    observed = run_observed("nic_based", nodes=8, size=4096, seed=0,
                            loss=first_data_drop())

    spec = get_scheme("nic_based")
    cost = GMCostModel()
    cluster = Cluster(
        ClusterConfig(n_nodes=8, cost=cost, seed=0),
        loss=first_data_drop(),
    )
    assert cluster.sim.metrics is None  # default: unobserved
    dests = list(range(1, 8))
    if spec.tree_uses_cost:
        tree = build_tree(0, dests, shape=spec.default_tree,
                          cost=cost, size=4096)
    else:
        tree = build_tree(0, dests, shape=spec.default_tree)
    bare = spec.cls(spec, cluster, tree).run_once(4096)

    assert observed.delivered == dict(bare["delivered"])
    assert observed.sim_time_us == pytest.approx(cluster.now)


def test_cli_smoke_writes_artifacts(tmp_path, monkeypatch, capsys):
    from repro.obs.__main__ import SMOKE_REPORT, SMOKE_TRACE, main

    monkeypatch.chdir(tmp_path)
    assert main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "# Protocol health report" in out

    trace_path = tmp_path / SMOKE_TRACE
    report_path = tmp_path / SMOKE_REPORT
    assert trace_path.exists() and report_path.exists()

    payload = json.loads(trace_path.read_text())
    assert validate_chrome_trace(payload) == []
    # The default export is the paper's scheme.
    assert any(e.get("ph") == "X" for e in payload["traceEvents"])

    report = json.loads(report_path.read_text())
    assert {r["scheme"] for r in report["runs"]} == set(available_schemes())
    # nic_based runs first so it feeds the Chrome trace.
    assert report["runs"][0]["scheme"] == "nic_based"

    # --validate agrees with the library validator.
    assert main(["--validate", str(trace_path)]) == 0


def test_cli_validate_rejects_malformed(tmp_path, capsys):
    from repro.obs.__main__ import main

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(
        {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0}]}
    ))
    assert main(["--validate", str(bad)]) == 2
    assert "INVALID" in capsys.readouterr().err


def test_cli_single_scheme_chrome_trace(tmp_path, monkeypatch):
    from repro.obs.__main__ import main

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "out.json"
    assert main(["--scheme", "nic_based", "--nodes", "8",
                 "--chrome-trace", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert validate_chrome_trace(payload) == []
    assert spans_from_chrome_trace(payload, "tx")
