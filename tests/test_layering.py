"""The import-layering rules from docs/architecture.md hold."""

import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "tools" / "check_layering.py"


def test_layering_clean():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_checker_sees_through_guards():
    # The checker must ignore TYPE_CHECKING-only imports but catch
    # runtime ones, wherever they hide.
    import ast
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    tree = ast.parse(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.gm import x\n"
        "def f():\n"
        "    import repro.mcast\n"
    )
    modules = [m for _, m in mod.runtime_imports(tree)]
    assert "repro.mcast" in modules
    assert "repro.gm" not in modules
