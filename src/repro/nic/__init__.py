"""LANai-class NIC model.

The NIC is where the paper's contribution lives: a slow programmable
processor (modelled as a capacity-1 resource with per-operation costs from
the :class:`~repro.gm.params.GMCostModel`), DMA engines sharing the PCI
bus, bounded SRAM packet-buffer pools, and — new in GM-2 — *myrinet packet
descriptors* whose completion callbacks let firmware re-queue a packet
with a rewritten header, the mechanism behind NIC-based multisend and
forwarding.
"""

from repro.nic.descriptor import PacketDescriptor
from repro.nic.lanai import NIC, HostCommand
from repro.nic.sram import BufferPool, SRAMBuffer

__all__ = [
    "NIC",
    "BufferPool",
    "HostCommand",
    "PacketDescriptor",
    "SRAMBuffer",
]
