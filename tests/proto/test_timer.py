"""RetransmitTimer regression tests: cancellation storms stay O(1).

The serving workload arms and defuses retransmission timers once per
window round-trip — thousands of times per run, with almost no real
timeouts.  These tests pin the Kernel v3 contract for that regime: a
window that is always acked before its deadline produces *zero* stale
fires (the wheel cancellation removes the pop before it reaches the
event loop) and bounded counter growth (one scheduled timer and one
cancellation per burst, regardless of how many records each burst
arms).
"""

from repro.perf import KERNEL_COUNTERS
from repro.proto.timer import RetransmitTimer
from repro.proto.window import NEVER, SendWindow
from repro.sim import Simulator


class _Record:
    __slots__ = ("seq", "deadline")

    def __init__(self, seq: int):
        self.seq = seq
        self.deadline = NEVER


def test_cancellation_storm_zero_stale_fires_and_bounded_counters():
    """200 bursts of 4 records, all acked before the 400 µs deadline."""
    sim = Simulator()
    window = SendWindow()
    expired = []
    timer = RetransmitTimer(sim, 400.0, window, expired.append)
    bursts, burst_size = 200, 4

    def driver():
        seq = 0
        for _ in range(bursts):
            records = [_Record(seq + i) for i in range(burst_size)]
            seq += burst_size
            for record in records:
                window.add(record)
                timer.arm(record)
            # The cumulative ack lands well before the deadline.
            yield sim.timeout(100.0)
            for record in records:
                window.pop(record.seq)
            timer.defuse()

    KERNEL_COUNTERS.reset()
    sim.process(driver())
    sim.run()
    snap = KERNEL_COUNTERS.snapshot()

    assert expired == []
    assert timer.idle
    # Zero stale pops: every would-be fire was cancelled in the wheel.
    assert snap["timer_fires"] == 0
    assert snap["timer_stale_fires"] == 0
    # Bounded heap traffic: one schedule + one cancel per burst, however
    # many records the burst armed (the lazy per-window design), and
    # every cancelled timer died inside the wheel.
    assert snap["timers_armed"] == bursts * burst_size
    assert snap["timers_scheduled"] == bursts
    assert snap["timers_cancelled"] == bursts
    assert snap["wheel_cancelled"] >= bursts


def test_real_timeout_still_fires_after_storm():
    """Defusing never disarms a window that still has unacked records."""
    sim = Simulator()
    window = SendWindow()
    expired = []
    timer = RetransmitTimer(sim, 400.0, window, expired.append)

    def driver():
        # A churn of acked records first...
        for seq in range(50):
            record = _Record(seq)
            window.add(record)
            timer.arm(record)
            yield sim.timeout(10.0)
            window.pop(record.seq)
            timer.defuse()
        # ...then one record nobody acks.
        lost = _Record(1000)
        window.add(lost)
        timer.arm(lost)
        yield sim.timeout(1000.0)

    KERNEL_COUNTERS.reset()
    sim.process(driver())
    sim.run()

    assert [record.seq for record in expired] == [1000]
    assert expired[0].deadline == NEVER  # swept until explicitly re-armed
    assert KERNEL_COUNTERS.timer_stale_fires == 0


def test_defuse_is_a_noop_with_records_outstanding():
    sim = Simulator()
    window = SendWindow()
    timer = RetransmitTimer(sim, 400.0, window, lambda record: None)

    def driver():
        record = _Record(0)
        window.add(record)
        timer.arm(record)
        yield sim.timeout(1.0)
        timer.defuse()  # records remain: must not cancel
        assert not timer.idle

    sim.process(driver())
    sim.run(until=2.0)
