"""Benchmark harness: kernel events/sec and per-figure sweep timing.

Four measurements back the performance claims in ``docs/performance.md``:

* **Kernel microbenchmark** — a tight timeout-pump process measures raw
  events/sec through ``Simulator.step`` with no protocol stack on top.
* **Serving benchmark** — the pinned sustained-traffic workload
  (:mod:`repro.perf.bench_serving`): full protocol stack, concurrent
  multicast groups, churn — the regime Kernel v3's timer wheel and
  same-instant batch drain target.
* **Timer churn** — a lossy multicast workload counts retransmission
  timer (re)arms, heap callbacks, and stale fires, compared against the
  pre-refactor per-record ``call_at`` numbers measured on the same
  workload.
* **Figure cells** — each sweep figure's ``--quick`` grid is run twice,
  serially (``jobs=1``) and fanned across all CPUs, with wall-clock,
  kernel events, events/sec, and a byte-identity check between the two
  rendered tables.

Results land in ``BENCH_kernel.json`` (at the current directory — run
from the repo root).  Usage::

    python -m repro.perf                 # full quick-grid benchmark
    python -m repro.perf --smoke         # seconds-long harness check
    python -m repro.perf --jobs 8 --figures fig5 fig6
"""

from __future__ import annotations

import argparse
import gc
import importlib
import json
import os
import time
from statistics import median
from typing import Any, Generator, Sequence

from repro.experiments import FIGURES
from repro.experiments.parallel import default_jobs
from repro.perf.counters import KERNEL_COUNTERS

__all__ = [
    "bench_event_loop",
    "bench_timer_churn",
    "bench_figure",
    "run_bench",
    "main",
]

#: Figures with parallelizable sweep grids (fig1/fig2 are single probes).
SWEEP_FIGURES = ("fig3", "fig4", "fig5", "fig6", "fig7")
SMOKE_FIGURES = ("fig3",)
DEFAULT_OUTPUT = "BENCH_kernel.json"

#: Timer churn measured on :func:`bench_timer_churn`'s exact workload
#: under the pre-refactor per-record ``call_at(lambda …)`` scheme (one
#: heap callback per (re)arm, generation-checked at pop).  Recorded as a
#: constant so the report can show before/after without keeping the old
#: implementation alive.
PRE_REFACTOR_TIMER_CHURN = {
    "heap_callbacks": 141,
    "fires": 117,
    "stale_fires": 116,
}


def bench_event_loop(
    n_events: int = 200_000, repeats: int = 3
) -> dict[str, Any]:
    """Raw kernel throughput: a process pumping back-to-back timeouts.

    The pump is repeated *repeats* times (after one untimed warmup pass
    to fault in code objects and allocator arenas) and the **best** run
    is reported — a microbenchmark measures the kernel's achievable
    rate, and the minimum wall time is the standard noise-robust
    estimator for that; single-shot numbers on a busy host swing ±30%.
    ``median_events_per_sec`` is reported too (the CI gate compares
    medians, which a single lucky pass cannot satisfy), and per-repeat
    rates are kept in ``repeat_rates`` so the spread is visible.
    """
    from repro.sim import Simulator

    def one_pass(n: int) -> tuple[int, float]:
        sim = Simulator()

        def pump() -> Generator:
            for _ in range(n):
                yield sim.timeout(1.0)

        sim.process(pump())
        KERNEL_COUNTERS.reset()
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
        return KERNEL_COUNTERS.events, wall

    gc.collect()  # GC-isolate from whatever ran earlier in-process
    one_pass(min(n_events, 20_000))  # warmup, untimed
    passes = [one_pass(n_events) for _ in range(max(1, repeats))]
    rates = [round(ev / wall) for ev, wall in passes if wall > 0]
    events, wall = min(passes, key=lambda p: p[1])
    return {
        "scheduled_timeouts": n_events,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall) if wall > 0 else None,
        # The median rate rides alongside best-of-N: the best run is the
        # achievable-rate estimator, the median is the noise-robust one,
        # and the CI perf gate compares medians.
        "median_events_per_sec": round(median(rates)) if rates else None,
        "repeat_rates": rates,
    }


def bench_timer_churn(rounds: int = 20) -> dict[str, Any]:
    """Retransmission-timer heap pressure on a lossy multicast workload.

    Twenty 4 KiB multicasts over an 8-node optimal tree with one forced
    retransmission — enough acks and replica refreshes that the old
    per-record ``call_at(lambda …)`` pattern spent >95% of its timer
    fires on stale closures.  The ``before`` numbers were measured on
    this exact workload before :class:`repro.proto.timer.RetransmitTimer`
    replaced that pattern (see :data:`PRE_REFACTOR_TIMER_CHURN`);
    ``after`` comes from a :class:`repro.obs.MetricsRegistry` attached to
    the run — the same ``proto.timers_*`` counters the ``python -m
    repro.obs`` health report prints, so the two artifacts cannot drift
    apart (the process-global ``KERNEL_COUNTERS`` delta is cross-checked
    against it).  ``arm_requests`` should match the old heap-callback
    count — the protocol issues the same (re)arms, the per-window timer
    just stops turning each one into heap garbage.
    """
    from repro.cluster import Cluster
    from repro.config import ClusterConfig
    from repro.gm.params import GMCostModel
    from repro.mcast.manager import install_group
    from repro.net.fault import ScriptedLoss
    from repro.net.packet import PacketType
    from repro.obs.registry import MetricsRegistry
    from repro.trees import build_tree

    n, size = 8, 4096
    cost = GMCostModel()
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_DATA
        and p.header.seq == 1,
        times=1,
    )
    cluster = Cluster(
        ClusterConfig(n_nodes=n, cost=cost, seed=0), loss=loss
    )
    registry = MetricsRegistry()
    cluster.sim.metrics = registry
    dests = list(range(1, n))
    tree = build_tree(0, dests, shape="optimal", cost=cost, size=size)
    install_group(cluster, 1, tree)

    def root() -> Generator:
        for _ in range(rounds):
            handle = yield from cluster.node(0).mcast.multicast_send(
                cluster.port(0), 1, size
            )
            yield handle.done

    def member(i: int) -> Generator:
        port = cluster.port(i)
        for _ in range(rounds):
            yield from port.receive()
            yield from port.provide_receive_buffer()

    KERNEL_COUNTERS.reset()
    procs = [cluster.spawn(root())] + [
        cluster.spawn(member(i)) for i in dests
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    snap = KERNEL_COUNTERS.snapshot()

    before = dict(PRE_REFACTOR_TIMER_CHURN)
    # One source of truth with the obs health report: the registry's
    # proto.timers_* counters.  The process-global KERNEL_COUNTERS delta
    # must agree — a mismatch means an instrumentation site lost its
    # registry mirror.
    after = {
        "arm_requests": registry.value("proto.timers_armed"),
        "heap_callbacks": registry.value("proto.timers_scheduled"),
        "fires": registry.value("proto.timer_fires"),
        "stale_fires": registry.value("proto.timer_stale_fires"),
    }
    kernel_view = {
        "arm_requests": snap["timers_armed"],
        "heap_callbacks": snap["timers_scheduled"],
        "fires": snap["timer_fires"],
        "stale_fires": snap["timer_stale_fires"],
    }
    if kernel_view != after:
        raise AssertionError(
            f"timer counters diverged: registry {after} "
            f"vs KERNEL_COUNTERS {kernel_view}"
        )
    return {
        "workload": (
            f"{rounds}x {size}B multicast, {n}-node optimal tree, "
            "one forced retransmission"
        ),
        "before": before,
        "after": after,
        "heap_callbacks_avoided": (
            before["heap_callbacks"] - after["heap_callbacks"]
        ),
        "stale_fires_avoided": (
            before["stale_fires"] - after["stale_fires"]
        ),
    }


def bench_figure(
    figure_id: str, jobs: int, quick: bool = True
) -> dict[str, Any]:
    """Time one figure's sweep serially and across *jobs* workers.

    On a single-CPU host the pool pass still runs (the byte-identity
    check between serial and fanned-out tables is a determinism claim,
    not a speed claim) but the wall-clock comparison is meaningless —
    workers just time-slice one core — so ``speedup`` is nulled and the
    report carries ``"parallel_comparison": "skipped-1cpu"`` instead of
    a noise figure.  On a multi-core host the comparison is real and
    marked ``"measured"``; *jobs* is floored at 2 there, because a
    one-worker "pool" would silently compare serial against itself and
    report 1.0x noise as if it meant something.
    """
    module = importlib.import_module(FIGURES[figure_id])
    cpus = os.cpu_count() or 1
    if cpus > 1 and jobs < 2:
        jobs = 2

    gc.collect()  # GC-isolate from whatever ran earlier in-process
    KERNEL_COUNTERS.reset()
    started = time.perf_counter()
    serial = module.run(quick=quick, jobs=1)
    serial_s = time.perf_counter() - started
    events = KERNEL_COUNTERS.events

    started = time.perf_counter()
    parallel = module.run(quick=quick, jobs=jobs)
    parallel_s = time.perf_counter() - started

    result = {
        "jobs": jobs,
        "cpu_count": cpus,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s > 0 else None,
        "events": events,
        "events_per_sec": round(events / serial_s) if serial_s > 0 else None,
        "outputs_identical": serial.table() == parallel.table(),
    }
    if cpus == 1:
        result["speedup"] = None
        result["parallel_comparison"] = "skipped-1cpu"
    else:
        result["parallel_comparison"] = "measured"
    return result


def run_bench(
    figures: Sequence[str] = SWEEP_FIGURES,
    jobs: int | None = None,
    quick: bool = True,
    loop_events: int = 200_000,
    smoke: bool = False,
) -> dict[str, Any]:
    """Run the full benchmark and return the report dict."""
    from repro.perf.bench_parallel import bench_parallel
    from repro.perf.bench_reliability import bench_reliability
    from repro.perf.bench_resilience import bench_resilience
    from repro.perf.bench_serving import (
        bench_serving,
        bench_telemetry_overhead,
    )

    jobs = jobs if jobs is not None else default_jobs()
    report: dict[str, Any] = {
        "benchmark": "repro.perf.bench_kernel",
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "quick": quick,
        "kernel": bench_event_loop(loop_events),
        "serving": bench_serving(repeats=3, smoke=smoke),
        "parallel": bench_parallel(repeats=3, smoke=smoke),
        "timers": bench_timer_churn(),
        # report-only section (attached recording pays for what it
        # keeps; only the *detached* ratio is asserted, inside the
        # bench itself)
        "telemetry": bench_telemetry_overhead(repeats=3, smoke=smoke),
        # report-only (simulated-time recovery characteristics, no gate)
        "resilience": bench_resilience(),
        # report-only (reliability-family repair costs on a pinned
        # lossy fixture; fig9 carries the gated claims)
        "reliability": bench_reliability(),
        "figures": {},
    }
    for figure_id in figures:
        report["figures"][figure_id] = bench_figure(figure_id, jobs, quick)
    walls = report["figures"].values()
    report["totals"] = {
        "serial_wall_s": round(sum(f["serial_wall_s"] for f in walls), 3),
        "parallel_wall_s": round(
            sum(f["parallel_wall_s"] for f in walls), 3
        ),
        "all_outputs_identical": all(
            f["outputs_identical"] for f in walls
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Benchmark the simulation kernel and figure sweeps.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="minimal run proving the harness works (one figure, "
        "small event loop)",
    )
    parser.add_argument(
        "--figures", nargs="+", choices=SWEEP_FIGURES, default=None,
        help=f"figures to benchmark (default: {' '.join(SWEEP_FIGURES)})",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="parallel worker count (default: all CPUs)",
    )
    parser.add_argument(
        "-o", "--output", default=DEFAULT_OUTPUT,
        help=f"report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    figures = args.figures or (SMOKE_FIGURES if args.smoke else SWEEP_FIGURES)
    loop_events = 20_000 if args.smoke else 200_000
    report = run_bench(
        figures=figures, jobs=args.jobs, loop_events=loop_events,
        smoke=args.smoke,
    )
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    return 0
