"""Structured trace recording.

Traces are how the Fig. 2 timing-diagram reproduction and many integration
tests observe the stack: components call ``sim.record(component, category,
**fields)`` and tests/experiments filter the resulting records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time in µs.
    component:
        Emitting component, e.g. ``"nic[3]"`` or ``"host[0]"``.
    category:
        Event kind, e.g. ``"tx_start"``, ``"pkt_recv"``, ``"retransmit"``.
    fields:
        Free-form event payload.
    """

    time: float
    component: str
    category: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def record(
        self, time: float, component: str, category: str, fields: dict[str, Any]
    ) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, component, category, fields))

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(
        self,
        component: str | None = None,
        category: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
        since: float = 0.0,
    ) -> list[TraceRecord]:
        """Records matching all given criteria, in time order."""
        out = []
        for rec in self.records:
            if rec.time < since:
                continue
            if component is not None and rec.component != component:
                continue
            if category is not None and rec.category != category:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def categories(self) -> set[str]:
        return {rec.category for rec in self.records}

    def spans(
        self, start_category: str, end_category: str, key: str
    ) -> list[tuple[Any, float, float]]:
        """Pair up start/end records by ``fields[key]``.

        Returns ``(key_value, start_time, end_time)`` triples for every
        start that found a matching later end — the building block of the
        Fig. 2 timeline extraction.

        Starts for the same key nest as a stack: an end closes the most
        recent still-open start, so a re-entrant key (a retransmitted
        seq that re-opens its span) yields one span per start/end pair
        instead of silently dropping the later starts.
        """
        open_spans: dict[Any, list[float]] = {}
        out: list[tuple[Any, float, float]] = []
        for rec in self.records:
            if rec.category == start_category and key in rec.fields:
                open_spans.setdefault(rec.fields[key], []).append(rec.time)
            elif rec.category == end_category and key in rec.fields:
                k = rec.fields[key]
                stack = open_spans.get(k)
                if stack:
                    out.append((k, stack.pop(), rec.time))
        return out
