"""TreeManager: backups, incremental repair, deadlock-order feasibility."""

import pytest

from repro.errors import TreeError
from repro.trees import (
    SpanningTree,
    TreeManager,
    build_tree,
    check_feasible,
)


def _manager(n=16, **kw):
    tree = build_tree(0, list(range(1, n)), shape="binomial")
    return TreeManager(tree, **kw)


# -- feasibility -------------------------------------------------------------

def test_check_feasible_accepts_id_ordered_tree():
    tree = build_tree(0, [1, 2, 3, 4, 5, 6, 7], shape="binomial")
    assert check_feasible(tree) is tree


def test_check_feasible_rejects_order_violation():
    # Non-root parent 5 feeds child 3: violates the §5 deadlock ordering.
    bad = SpanningTree(0, {0: (5,), 5: (3,)})
    with pytest.raises(TreeError):
        check_feasible(bad)


def test_check_feasible_rejects_malformed_wiring():
    with pytest.raises(TreeError):
        check_feasible(SpanningTree(0, {0: (1,), 1: (0,)}))  # cycle


# -- backups -----------------------------------------------------------------

def test_backup_exists_only_for_interior_nodes():
    mgr = _manager(16)
    interior = set(mgr.primary.interior()) - {mgr.primary.root}
    for node in mgr.primary.nodes:
        if node == mgr.primary.root:
            continue
        backup = mgr.backup_for(node)
        if node in interior:
            assert backup is not None
            # The victim survives as a root leaf; everyone stays covered.
            assert set(backup.nodes) == set(mgr.primary.nodes)
            assert backup.children_of(node) == ()
            check_feasible(backup)
        else:
            assert backup is None


def test_precomputed_backups_match_lazy():
    lazy = _manager(16)
    eager = _manager(16, precompute_backups=True)
    for node in lazy.primary.interior():
        if node == lazy.primary.root:
            continue
        assert lazy.backup_for(node) == eager.backup_for(node)


def test_switch_to_changes_current_not_primary():
    mgr = _manager(16)
    victim = next(n for n in mgr.primary.interior() if n != 0)
    backup = mgr.backup_for(victim)
    mgr.switch_to(backup)
    assert mgr.current is backup
    assert mgr.primary is not backup


# -- repair ------------------------------------------------------------------

def test_repair_regrafts_orphans_to_smaller_ids():
    mgr = _manager(16)
    result = mgr.repair({8})
    assert result.regrafts, "interior death must rewire someone"
    # The dead node stays in the tree as a leaf (it catches up from the
    # retransmit window once its link heals) but forwards to no one.
    assert set(result.tree.nodes) == set(mgr.primary.nodes)
    assert result.tree.children_of(8) == ()
    for graft in result.regrafts:
        assert graft.old_parent == 8
        new_parent = graft.new_parent
        assert new_parent == 0 or new_parent < graft.orphan
    check_feasible(result.tree)
    assert mgr.current is result.tree


def test_repair_leaf_death_needs_no_regrafts():
    mgr = _manager(16)
    leaf = next(iter(mgr.primary.leaves()))
    result = mgr.repair({leaf})
    assert result.regrafts == ()
    assert result.tree == mgr.primary


def test_repair_stacks_across_failures():
    mgr = _manager(16)
    mgr.repair({8})
    result = mgr.repair({8, 4})
    assert set(result.tree.nodes) == set(range(16))
    assert result.tree.children_of(8) == ()
    assert result.tree.children_of(4) == ()
    check_feasible(result.tree)


def test_repair_root_death_is_fatal():
    mgr = _manager(8)
    with pytest.raises(TreeError):
        mgr.repair({0})
