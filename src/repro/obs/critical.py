"""Critical-path extraction over flight-recorder events.

The paper's Fig. 2 argument is a latency decomposition: a multicast's
delivery time splits into host, LANai/DMA, and wire segments, and
NIC-based forwarding wins because the per-hop host segments disappear.
This module automates that decomposition from a recorded trace: for each
destination of a traced root message it walks the delivering packet
chain *backwards* — host delivery, fabric delivery, injection at the
parent, the parent's own fabric delivery, and so on up to the root post
— and attributes every interval in ``[t_post, t_delivered]`` to one of
six segments:

``host``
    Root-side dwell: post -> first injection (host overhead + DMA +
    serialization of earlier chunks).
``nic``
    Intermediate-NIC dwell (forward processing, SRAM copy, TX service)
    plus the receive-side NIC/RDMA tail at the destination.
``wire``
    Link traversal + switch hop latency (fabric transit minus queueing).
``queue``
    Head-of-line blocking waiting for link claims.
``retransmit_wait``
    Gap between the first transmission of the delivering chunk toward a
    hop and the (re)transmission that actually got through.
``recovery_gap``
    Dwell before a recovery *replay* — the time a failure-affected
    subtree sat dark until the healed tree replayed the message.

The walk is telescoping, so the six segments **sum exactly** to the
measured delivery time (the acceptance tests reconcile against the
harness's per-destination deliveries to < 1µs).  ``recovery_gap`` is
non-zero only for destinations whose delivering chain contains a replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.flight import (
    EV_CHUNK,
    EV_EXTRA,
    EV_NODE,
    EV_STAGE,
    EV_TRACE,
    EV_UID,
    EV_WHEN,
    FlightEvent,
)

__all__ = [
    "SEGMENTS",
    "DestinationPath",
    "TraceCriticalPath",
    "critical_paths",
    "render_critical_path",
    "critical_path_to_dict",
]

#: Segment keys, in render order.
SEGMENTS = ("host", "nic", "wire", "queue", "retransmit_wait",
            "recovery_gap")


@dataclass
class DestinationPath:
    """One destination's delivery, decomposed."""

    dest: int
    delivery_us: float  #: host delivery time relative to the root post
    delivered_at: float  #: absolute host delivery time
    segments: dict[str, float] = field(default_factory=dict)
    hops: int = 0  #: NIC->NIC fabric traversals on the delivering chain
    retransmits: int = 0  #: delivering-chain transmissions with attempt > 0
    replayed: bool = False  #: chain contains a recovery replay
    exact: bool = True  #: False when the chain walk hit a gap (ring loss)

    @property
    def segment_sum(self) -> float:
        return sum(self.segments.values())


@dataclass
class TraceCriticalPath:
    """The per-destination breakdown of one traced root message."""

    trace_id: int
    origin: int
    posted_at: float
    kind: str = "?"
    size: int = 0
    destinations: dict[int, DestinationPath] = field(default_factory=dict)

    @property
    def critical_destination(self) -> int | None:
        """The destination whose delivery completed the broadcast."""
        if not self.destinations:
            return None
        return max(
            self.destinations,
            key=lambda d: self.destinations[d].delivery_us,
        )


def critical_paths(
    events: Iterable[FlightEvent],
    trace_ids: Iterable[int] | None = None,
) -> list[TraceCriticalPath]:
    """Per-destination critical paths for every (or the given) trace."""
    by_trace: dict[int, list[FlightEvent]] = {}
    for ev in events:
        tid = ev[EV_TRACE]
        if tid >= 0:
            by_trace.setdefault(tid, []).append(ev)
    wanted = list(by_trace) if trace_ids is None else [
        t for t in trace_ids if t in by_trace
    ]
    return [_analyze_trace(tid, by_trace[tid]) for tid in wanted]


def _analyze_trace(
    tid: int, events: list[FlightEvent]
) -> TraceCriticalPath:
    post = next((e for e in events if e[EV_STAGE] == "post"), None)
    if post is not None:
        extra = post[EV_EXTRA] or {}
        cp = TraceCriticalPath(
            trace_id=tid,
            origin=post[EV_NODE],
            posted_at=post[EV_WHEN],
            kind=extra.get("kind", "?"),
            size=extra.get("size", 0),
        )
    else:
        # The post fell out of the ring; anchor at the earliest event.
        first = min(events, key=lambda e: e[EV_WHEN])
        cp = TraceCriticalPath(
            trace_id=tid, origin=first[EV_NODE],
            posted_at=first[EV_WHEN],
        )
    t0, origin = cp.posted_at, cp.origin

    # -- indexes -----------------------------------------------------------
    #: node -> [(t, uid, chunk)] fabric deliveries, in time order
    delivers_at: dict[int, list[tuple[float, int, int]]] = {}
    #: uid -> (t, node, chunk)
    deliver_by_uid: dict[int, tuple[float, int, int]] = {}
    #: uid -> (t, src node, chunk, traversal dst)
    inject_by_uid: dict[int, tuple[float, int, int, int]] = {}
    #: uid -> accumulated link-claim wait
    queue_wait: dict[int, float] = {}
    #: uid -> (attempt, replay)
    txmeta: dict[int, tuple[int, bool]] = {}
    #: (node, chunk, dst) -> first injection time
    first_inject: dict[tuple[int, int, int], float] = {}
    #: node -> (t, uid) of the host delivery
    host_deliver: dict[int, tuple[float, int]] = {}

    for ev in events:
        stage = ev[EV_STAGE]
        if stage == "deliver":
            entry = (ev[EV_WHEN], ev[EV_UID], ev[EV_CHUNK])
            delivers_at.setdefault(ev[EV_NODE], []).append(entry)
            deliver_by_uid[ev[EV_UID]] = (
                ev[EV_WHEN], ev[EV_NODE], ev[EV_CHUNK]
            )
        elif stage == "inject":
            extra = ev[EV_EXTRA] or {}
            dst = extra.get("dst", -1)
            inject_by_uid[ev[EV_UID]] = (
                ev[EV_WHEN], ev[EV_NODE], ev[EV_CHUNK], dst
            )
            key = (ev[EV_NODE], ev[EV_CHUNK], dst)
            if key not in first_inject or ev[EV_WHEN] < first_inject[key]:
                first_inject[key] = ev[EV_WHEN]
        elif stage == "queue":
            extra = ev[EV_EXTRA] or {}
            queue_wait[ev[EV_UID]] = (
                queue_wait.get(ev[EV_UID], 0.0) + extra.get("wait", 0.0)
            )
        elif stage == "tx":
            extra = ev[EV_EXTRA] or {}
            txmeta[ev[EV_UID]] = (
                extra.get("attempt", 0), bool(extra.get("replay"))
            )
        elif stage == "host_deliver":
            prev = host_deliver.get(ev[EV_NODE])
            if prev is None or ev[EV_WHEN] > prev[0]:
                host_deliver[ev[EV_NODE]] = (ev[EV_WHEN], ev[EV_UID])

    for lst in delivers_at.values():
        lst.sort()

    def latest_deliver(
        node: int, before: float, chunk: int | None = None
    ) -> tuple[float, int, int] | None:
        best = None
        for entry in delivers_at.get(node, ()):
            if entry[0] > before:
                break
            if chunk is None or entry[2] == chunk:
                best = entry
        return best

    # -- per-destination backward walk -------------------------------------
    for dest, (td, hd_uid) in sorted(host_deliver.items()):
        if dest == origin:
            continue
        path = DestinationPath(
            dest=dest,
            delivery_us=td - t0,
            delivered_at=td,
            segments=dict.fromkeys(SEGMENTS, 0.0),
        )
        seg = path.segments
        dlv = None
        if hd_uid >= 0:
            got = deliver_by_uid.get(hd_uid)
            if got is not None and got[1] == dest and got[0] <= td:
                dlv = (got[0], hd_uid, got[2])
        if dlv is None:
            dlv = latest_deliver(dest, td)
        if dlv is None:
            # No fabric record (ring loss): lump everything into nic.
            seg["nic"] += td - t0
            path.exact = False
            cp.destinations[dest] = path
            continue
        seg["nic"] += td - dlv[0]
        while True:
            t_dlv, uid, chunk = dlv
            inj = inject_by_uid.get(uid)
            if inj is None:
                seg["wire"] += t_dlv - t0
                path.exact = False
                break
            ti, pnode, _ichunk, dst = inj
            w = queue_wait.get(uid, 0.0)
            seg["queue"] += w
            seg["wire"] += t_dlv - ti - w
            path.hops += 1
            attempt, replay = txmeta.get(uid, (0, False))
            if replay:
                path.replayed = True
            if attempt > 0:
                path.retransmits += 1
            if pnode == origin:
                arrival_t, base, arr = t0, "host", None
            else:
                arr = latest_deliver(pnode, ti, chunk)
                if arr is None:
                    arrival_t, base = t0, "nic"
                    path.exact = False
                else:
                    arrival_t, base = arr[0], "nic"
            dwell = ti - arrival_t
            if replay:
                seg["recovery_gap"] += dwell
            elif attempt > 0:
                tfirst = first_inject.get((pnode, chunk, dst), ti)
                tfirst = max(tfirst, arrival_t)
                seg[base] += tfirst - arrival_t
                seg["retransmit_wait"] += ti - tfirst
            else:
                seg[base] += dwell
            if pnode == origin or arr is None:
                break
            dlv = arr
        cp.destinations[dest] = path
    return cp


def render_critical_path(cp: TraceCriticalPath) -> str:
    """The Fig. 2 decomposition table for one traced message."""
    from repro.experiments.report import render_table

    head = [
        f"## critical path: trace {cp.trace_id} "
        f"({cp.kind}, {cp.size}B from node {cp.origin}, "
        f"posted at {cp.posted_at:.2f}us)",
        "",
    ]
    headers = ["dest", "delivery us", "host", "nic", "wire", "queue",
               "rexmit wait", "recovery gap", "hops", "chain"]
    rows = []
    crit = cp.critical_destination
    for dest, p in sorted(cp.destinations.items()):
        chain = []
        if p.retransmits:
            chain.append(f"{p.retransmits}rt")
        if p.replayed:
            chain.append("replay")
        if not p.exact:
            chain.append("~")
        marker = " *" if dest == crit else ""
        rows.append([
            f"{dest}{marker}",
            f"{p.delivery_us:.2f}",
            f"{p.segments['host']:.2f}",
            f"{p.segments['nic']:.2f}",
            f"{p.segments['wire']:.2f}",
            f"{p.segments['queue']:.2f}",
            f"{p.segments['retransmit_wait']:.2f}",
            f"{p.segments['recovery_gap']:.2f}",
            str(p.hops),
            "+".join(chain) or "-",
        ])
    out = head + [render_table(headers, rows)]
    if crit is not None:
        p = cp.destinations[crit]
        shares = ", ".join(
            f"{name}={p.segments[name]:.2f}us"
            for name in SEGMENTS if p.segments[name] > 0.0
        )
        out += ["", f"critical destination {crit}: "
                    f"{p.delivery_us:.2f}us = {shares}"]
    return "\n".join(out)


def critical_path_to_dict(cp: TraceCriticalPath) -> dict[str, Any]:
    """JSON-ready form of one trace's breakdown."""
    return {
        "trace_id": cp.trace_id,
        "origin": cp.origin,
        "posted_at": cp.posted_at,
        "kind": cp.kind,
        "size": cp.size,
        "critical_destination": cp.critical_destination,
        "destinations": {
            str(dest): {
                "delivery_us": p.delivery_us,
                "delivered_at": p.delivered_at,
                "segments": dict(p.segments),
                "segment_sum": p.segment_sum,
                "hops": p.hops,
                "retransmits": p.retransmits,
                "replayed": p.replayed,
                "exact": p.exact,
            }
            for dest, p in sorted(cp.destinations.items())
        },
    }
