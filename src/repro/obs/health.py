"""Protocol-health reports: run a scheme under observation, summarize.

:func:`run_observed` drives any scheme from the
:mod:`repro.mcast.schemes` registry exactly as the experiment harness
does — same cluster construction, same default spanning tree — but with
a :class:`~repro.obs.registry.MetricsRegistry` attached to the
simulator (and optionally the tracer enabled for a Chrome-trace
export).  :func:`build_health_report` and :func:`render_health_report`
then turn one run per scheme into the machine-readable JSON and the
text tables the ``python -m repro.obs`` CLI prints.

Every scheme's report carries the same three protocol sections, zero or
not, so reports diff cleanly across schemes and runs:

``retransmits``
    ``proto.retransmits`` (Go-back-N resends), ``mcast.laggard_resends``
    (per-child selective resends), and the timer counters folded in
    from :mod:`repro.proto.timer` (``proto.timers_*``);
``ack_latency``
    the ``proto.ack_latency_us`` histogram (post → cumulative-ack
    arrival per window record);
``drops``
    every ``*.drops.*`` counter (duplicates, out-of-order,
    unknown-group, no-token) plus ``net.fault_drops`` — injected losses
    tallied where the fault model drops them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast.schemes import available_schemes, get_scheme
from repro.obs.registry import MetricsRegistry
from repro.trees import build_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.fault import LossModel

__all__ = [
    "ObservedRun",
    "run_observed",
    "reliability_section",
    "resilience_section",
    "serving_section",
    "build_health_report",
    "render_health_report",
]

#: Counters summed into each report's ``retransmits`` section.
RETRANSMIT_COUNTERS = (
    "proto.retransmits",
    "mcast.laggard_resends",
    "proto.timers_armed",
    "proto.timer_fires",
    "proto.timer_stale_fires",
)

#: The ack-latency histogram every reliability binding feeds.
ACK_LATENCY_METRIC = "proto.ack_latency_us"

#: Counters folded into the serving section (sustained-traffic runs).
SERVING_COUNTERS = (
    "serving.msgs_posted",
    "serving.msgs_delivered",
    "serving.churn_scheduled",
    "serving.churn_applied",
)

#: Counters folded into the resilience section (failure-injected runs).
RESILIENCE_COUNTERS = (
    "net.failures.link_down",
    "net.failures.link_up",
    "net.failures.switch_down",
    "net.failures.switch_up",
    "net.failure_drops",
    "mcast.recovery.tree_switches",
    "mcast.recovery.repairs",
    "mcast.recovery.regrafts",
    "mcast.recovery.replays",
    "mcast.recovery.replay_kicks",
)


#: Counters folded into the reliability section (NACK/FEC engine runs).
RELIABILITY_COUNTERS = (
    "proto.nack_sent",
    "proto.nack_repairs",
    "proto.nack_suppressed",
    "proto.fec_parity_sent",
    "proto.fec_repairs",
    "proto.fec_insufficient",
    "proto.retransmit_timeouts",
    "mcast.retransmit_packets",
)


def reliability_section(registry: MetricsRegistry) -> dict[str, Any] | None:
    """The reliability-engine section of a health report.

    Built from the ``proto.nack_*`` / ``proto.fec_*`` instruments the
    :mod:`repro.proto.engines` families feed; returns ``None`` when the
    observed run used only the ack-window family and no retransmit
    timer fired, so prior reports keep their exact shape.
    """
    names = registry.names()
    if not any(
        name.startswith(("proto.nack_", "proto.fec_"))
        or name == "proto.retransmit_timeouts"
        for name in names
    ):
        return None
    return {name: registry.value(name) for name in RELIABILITY_COUNTERS}


def resilience_section(registry: MetricsRegistry) -> dict[str, Any] | None:
    """The failure/recovery section of a health report.

    Built from the ``net.failures.*`` instruments the
    :class:`~repro.net.failure.FailureInjector` feeds and the
    ``mcast.recovery.*`` instruments the self-healing schemes feed;
    returns ``None`` when the observed run injected no failures, so
    failure-free reports keep their exact prior shape.
    """
    names = registry.names()
    if not any(
        name.startswith(("net.failures.", "mcast.recovery."))
        for name in names
    ):
        return None
    section: dict[str, Any] = {
        name: registry.value(name) for name in RESILIENCE_COUNTERS
    }
    gap = registry.get("mcast.broadcast.delivery_gap_us")
    if gap is not None:
        snap = gap.snapshot()
        section["delivery_gap_us"] = {
            key: snap[key] for key in ("count", "mean", "p50", "p99", "max")
        }
    return section


def serving_section(registry: MetricsRegistry) -> dict[str, Any] | None:
    """The serving-workload section of a health report.

    Built from the ``serving.*`` instruments the
    :class:`~repro.workload.serving.TrafficEngine` feeds through the
    duck-typed ``sim.metrics`` slot; returns ``None`` when the observed
    run carried no sustained traffic (one-shot scheme runs), so
    one-shot reports keep their exact prior shape.
    """
    if not any(name.startswith("serving.") for name in registry.names()):
        return None
    section: dict[str, Any] = {
        name: registry.value(name) for name in SERVING_COUNTERS
    }
    section["delivered_msgs_per_sec"] = registry.value(
        "serving.delivered_msgs_per_sec", 0.0
    )
    delivery = registry.get("serving.delivery_us")
    if delivery is not None:
        snap = delivery.snapshot()
        section["delivery_us"] = {
            key: snap[key] for key in ("count", "mean", "p50", "p99", "max")
        }
    return section


@dataclass
class ObservedRun:
    """One scheme driven once with metrics (and optionally trace) on."""

    scheme: str
    nodes: int
    size: int
    seed: int
    registry: MetricsRegistry
    #: per-node delivery info from ``BoundScheme.run_once``
    delivered: dict[int, Any]
    #: simulated end time of the run, µs
    sim_time_us: float
    #: the simulator's tracer (records populated only when trace=True)
    tracer: Any = None
    #: the run's flight recorder (attached when flight=True)
    flight: Any = None
    notes: list[str] = field(default_factory=list)


def run_observed(
    scheme: str,
    nodes: int = 8,
    size: int = 4096,
    seed: int = 0,
    loss: "LossModel | None" = None,
    trace: bool = False,
    registry: MetricsRegistry | None = None,
    flight: bool = False,
) -> ObservedRun:
    """Run *scheme* once on an *nodes*-node cluster, observed.

    The registry is attached directly to the run's own simulator
    (``cluster.sim.metrics``), so observation never leaks across runs
    and the process-global default stays untouched.  ``flight=True``
    additionally attaches a full-sampling
    :class:`~repro.obs.flight.FlightRecorder` (``run.flight``), whose
    gauge samples feed the Chrome trace's counter tracks.
    """
    spec = get_scheme(scheme)
    cost = GMCostModel()
    cluster = Cluster(
        ClusterConfig(n_nodes=nodes, cost=cost, seed=seed, trace=trace),
        loss=loss,
    )
    registry = registry if registry is not None else MetricsRegistry()
    cluster.sim.metrics = registry
    recorder = None
    if flight:
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(sample=1.0)
        cluster.sim.flight = recorder

    dests = list(range(1, nodes))
    if spec.tree_uses_cost:
        tree = build_tree(0, dests, shape=spec.default_tree,
                          cost=cost, size=size)
    else:
        tree = build_tree(0, dests, shape=spec.default_tree)
    bound = spec.cls(spec, cluster, tree)
    result = bound.run_once(size)

    return ObservedRun(
        scheme=scheme,
        nodes=nodes,
        size=size,
        seed=seed,
        registry=registry,
        delivered=dict(result.get("delivered", {})),
        sim_time_us=cluster.now,
        tracer=cluster.sim.trace,
        flight=recorder,
    )


def _drop_counters(registry: MetricsRegistry) -> dict[str, int]:
    """Every drop tally in the registry, by name."""
    out: dict[str, int] = {}
    for name in registry.names():
        if ".drops." in name or name == "net.fault_drops":
            out[name] = registry.value(name)
    return out


def _scheme_report(run: ObservedRun) -> dict[str, Any]:
    reg = run.registry
    ack = reg.get(ACK_LATENCY_METRIC)
    ack_snapshot = (
        ack.snapshot() if ack is not None
        else {"type": "histogram", "count": 0, "sum": 0.0, "mean": 0.0,
              "min": None, "max": None, "p50": 0.0, "p99": 0.0,
              "buckets": {}}
    )
    report = {
        "scheme": run.scheme,
        "title": get_scheme(run.scheme).title,
        "nodes": run.nodes,
        "size": run.size,
        "seed": run.seed,
        "sim_time_us": round(run.sim_time_us, 6),
        "delivered": len(run.delivered),
        "retransmits": {
            name: reg.value(name) for name in RETRANSMIT_COUNTERS
        },
        "ack_latency": ack_snapshot,
        "drops": _drop_counters(reg),
        "metrics": reg.snapshot(),
    }
    serving = serving_section(reg)
    if serving is not None:
        report["serving"] = serving
    resilience = resilience_section(reg)
    if resilience is not None:
        report["resilience"] = resilience
    reliability = reliability_section(reg)
    if reliability is not None:
        report["reliability"] = reliability
    return report


def build_health_report(runs: list[ObservedRun]) -> dict[str, Any]:
    """Machine-readable health report for a batch of observed runs."""
    return {
        "report": "repro.obs health",
        "schemes_available": list(available_schemes()),
        "runs": [_scheme_report(run) for run in runs],
    }


def render_health_report(runs: list[ObservedRun]) -> str:
    """The text report: an overview table plus one section per scheme."""
    from repro.experiments.report import render_table

    out = ["# Protocol health report", ""]
    headers = ["scheme", "nodes", "size", "sim_us", "delivered",
               "retransmits", "acks", "drops"]
    rows = []
    for run in runs:
        rep = _scheme_report(run)
        rows.append([
            run.scheme,
            str(run.nodes),
            str(run.size),
            f"{run.sim_time_us:.1f}",
            str(rep["delivered"]),
            str(rep["retransmits"]["proto.retransmits"]
                + rep["retransmits"]["mcast.laggard_resends"]),
            str(rep["ack_latency"]["count"]),
            str(sum(rep["drops"].values())),
        ])
    out.append(render_table(headers, rows))

    for run in runs:
        rep = _scheme_report(run)
        out += ["", f"## {run.scheme}: {rep['title']}", ""]
        out.append("retransmits:")
        out.append(render_table(
            ["counter", "value"],
            [[name, str(value)]
             for name, value in rep["retransmits"].items()],
        ))
        out.append("")
        ack = rep["ack_latency"]
        out.append("ack latency (us):")
        out.append(render_table(
            ["count", "mean", "p50", "p99", "max"],
            [[str(ack["count"]), f"{ack['mean']:.2f}", f"{ack['p50']:g}",
              f"{ack['p99']:g}",
              "-" if ack["max"] is None else f"{ack['max']:.2f}"]],
        ))
        out.append("")
        out.append("drops:")
        drops = rep["drops"]
        if drops:
            out.append(render_table(
                ["counter", "value"],
                [[name, str(value)] for name, value in sorted(drops.items())],
            ))
        else:
            out.append("  (none recorded)")
    return "\n".join(out)
