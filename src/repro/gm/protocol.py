"""The GM protocol engine: reliable ordered unicast on the NIC.

Implements GM's send/receive paths as they appear to the firmware
(paper §4):

* **Sending** — a host send event is translated into a send token; for
  each packet the NIC DMAs data from the host into an SRAM send buffer,
  assigns a per-connection sequence number, keeps a *send record* with a
  timestamp, and queues the packet.  Unacknowledged records time out and
  trigger Go-back-N retransmission ("the sender will retransmit the
  packet, as well as all the later packets from the same port").
* **Receiving** — an in-sequence packet claims a receive token, is DMAd
  to host memory, and is acknowledged; when all packets of a message have
  arrived a receive event is posted to the host.  Out-of-order packets
  are dropped (Go-back-N); duplicates are re-acknowledged so lost ACKs
  cannot wedge the sender.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import ConfigError, ReproError
from repro.gm.api import GMPort, RecvCompletion, SendCommand
from repro.gm.memory import RegisteredMemory
from repro.gm.tokens import ReceiveToken, SendToken
from repro.net.packet import (
    GM_HEADER_BYTES,
    Packet,
    PacketHeader,
    PacketType,
    make_packet,
    split_message,
)
from repro.nic.descriptor import PacketDescriptor
from repro.nic.lanai import NIC, TX_PRIO_DATA
from repro.proto import NEVER, GoBackN, RetransmitTimer, SendWindow, send_ack
from repro.proto.engines import get_engine, unicast_engines
from repro.sim.resources import EMPTY, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["GMEngine", "Connection", "SendRecord"]


@dataclass
class SendRecord:
    """Bookkeeping for one transmitted, unacknowledged packet."""

    seq: int
    token: SendToken
    chunk: int
    nchunks: int
    payload: int
    msg_size: int
    dst: int
    dst_port: int
    local_port: int
    ptype: PacketType = PacketType.DATA
    group: int | None = None
    sent_at: float = 0.0
    retransmits: int = 0
    #: absolute retransmission deadline, managed by the connection's
    #: :class:`~repro.proto.timer.RetransmitTimer`.
    deadline: float = NEVER
    #: flight-recorder trace id (-1 = untraced); stamped into every
    #: packet built from this record, retransmissions included.
    trace_id: int = -1


class Connection:
    """Per (local port, remote port) unidirectional sequencing state."""

    __slots__ = (
        "next_send_seq", "recv_seq", "records", "window", "timer",
        "inflight", "key",
    )

    def __init__(self, key: tuple):
        self.key = key
        self.next_send_seq = 1
        self.recv_seq = 0
        #: unacked send records by seq (backing dict of ``window``)
        self.records: dict[int, SendRecord] = {}
        self.window = SendWindow(self.records)
        #: retransmission timer; attached by the engine on send
        #: connections (receive connections keep no records).
        self.timer: RetransmitTimer | None = None
        #: in-progress multi-packet receives by msg_id
        self.inflight: dict[int, "_InflightRecv"] = {}

    def alloc_seq(self) -> int:
        seq = self.next_send_seq
        self.next_send_seq += 1
        return seq


@dataclass
class _InflightRecv:
    token: ReceiveToken
    nchunks: int
    src: int
    src_port: int
    msg_size: int
    received: int = 0
    app_info: Any = None


class _GMGoBackN(GoBackN):
    """GM's Go-back-N, bound to one engine's counters and transport."""

    __slots__ = ("engine",)

    def __init__(self, engine: "GMEngine"):
        self.engine = engine

    @property
    def max_retransmits(self) -> int:
        return self.engine.cost.max_retransmits

    def count(self, record: SendRecord, *, conn: Connection) -> None:
        self.engine.retransmissions += 1
        m = self.engine.sim.metrics
        if m is not None:
            m.inc("proto.retransmits")

    def unreachable(self, record: SendRecord, *, conn: Connection) -> str:
        return (
            f"{self.engine.nic.name}: packet seq={record.seq} to node "
            f"{record.dst} dropped {record.retransmits} times — "
            f"peer unreachable"
        )

    def resend(self, record: SendRecord, *, conn: Connection) -> Generator:
        engine = self.engine
        engine.sim.record(
            engine.nic.name, "retransmit", seq=record.seq, dst=record.dst,
            attempt=record.retransmits,
        )
        yield from engine._retransmit_record(conn, record)


class GMEngine:
    """One GM protocol instance, bound to one NIC."""

    def __init__(
        self,
        nic: NIC,
        memory: RegisteredMemory | None = None,
        reliability: str = "ack_window",
    ):
        self.nic = nic
        self.sim = nic.sim
        self.cost = nic.cost
        self.memory = memory or RegisteredMemory(nic.id)
        family = get_engine(reliability)
        if not family.unicast:
            raise ConfigError(
                f"reliability engine {reliability!r} cannot drive GM "
                f"unicast connections; unicast-capable engines: "
                f"{', '.join(unicast_engines())}"
            )
        self.reliability = reliability
        #: receiver half of the unicast reliability engine; GM's
        #: ``Connection`` plays the engine's "group" role (only
        #: ``recv_seq`` is touched by unicast-capable families).
        self._receiver = family.receiver_cls(self)
        self.ports: dict[int, GMPort] = {}
        self._send_conns: dict[tuple, Connection] = {}
        self._recv_conns: dict[tuple, Connection] = {}
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.out_of_order_dropped = 0
        self.no_token_dropped = 0
        self.policy = _GMGoBackN(self)

        nic.command_handlers[SendCommand] = self._handle_send_command
        nic.packet_handlers[PacketType.DATA] = self._handle_data
        nic.packet_handlers[PacketType.ACK] = self._handle_ack

        # The staging pipeline: the send DMA engine fetches packet data
        # from host memory *in parallel with* the LANai processing later
        # requests — "the request processing is completely overlapped
        # with the transmission of a previous queued packet" (paper §6.1).
        self._stage_queue: Store = Store(nic.sim, name=f"{nic.name}.stage")
        nic.sim.process(self._staging_loop(), name=f"{nic.name}.stager")

    def _staging_loop(self) -> Generator:
        queue = self._stage_queue
        while True:
            job = queue.try_get()
            if job is EMPTY:
                job = yield queue.get()
            yield from job()

    def stage(self, job) -> None:
        """Queue a zero-argument generator function on the staging FIFO."""
        self._stage_queue.put(job)

    # -- ports ------------------------------------------------------------
    def create_port(self, port_num: int, owner: Any) -> GMPort:
        if port_num in self.ports:
            raise ReproError(
                f"port {port_num} already open on NIC {self.nic.id}"
            )
        port = GMPort(self, port_num, owner)
        self.ports[port_num] = port
        return port

    # -- connections ----------------------------------------------------------
    def send_conn(self, local_port: int, dst: int, dst_port: int) -> Connection:
        key = (local_port, dst, dst_port)
        conn = self._send_conns.get(key)
        if conn is None:
            conn = Connection(("send",) + key)
            conn.timer = RetransmitTimer(
                self.sim,
                self.cost.ack_timeout,
                conn.window,
                lambda record, conn=conn: self._expired(conn, record),
            )
            self._send_conns[key] = conn
        return conn

    def recv_conn(self, src: int, src_port: int, local_port: int) -> Connection:
        key = (src, src_port, local_port)
        conn = self._recv_conns.get(key)
        if conn is None:
            conn = Connection(("recv",) + key)
            self._recv_conns[key] = conn
        return conn

    # -- send path -----------------------------------------------------------------
    def _handle_send_command(self, cmd: SendCommand) -> Generator:
        token = cmd.token
        assert token is not None
        # Translate the host send event into a send token (the per-request
        # LANai work that host-based multiple unicasts repeat k times).
        yield from self.nic.processing(self.cost.nic_send_token_processing)
        if token.region is not None:
            self.memory.require(token.region)
        conn = self.send_conn(token.port_num, token.dst, token.dst_port)
        chunks = split_message(token.size, self.cost.mtu)
        fr = self.sim.flight
        tid = -1
        if fr is not None:
            tid = fr.begin(
                self.sim.now, self.nic.id, "unicast",
                size=token.size, msg_id=token.msg_id,
            )
        for idx, payload in enumerate(chunks):
            record = SendRecord(
                seq=conn.alloc_seq(),
                token=token,
                chunk=idx,
                nchunks=len(chunks),
                payload=payload,
                msg_size=token.size,
                dst=token.dst,
                dst_port=token.dst_port,
                local_port=token.port_num,
                trace_id=tid,
            )
            conn.window.add(record)
            token.unacked_packets += 1
            # LANai work stays on the command path; the data fetch is
            # handed to the staging pipeline (DMA overlaps later
            # requests' processing and earlier packets' transmission).
            yield from self.nic.processing(self.cost.nic_per_packet_send)
            self.stage(
                lambda conn=conn, record=record: self._transmit_record(
                    conn, record
                )
            )
        if fr is not None:
            fr.record(
                self.sim.now, -1, "gauge", self.nic.id, -1, 0,
                {"name": "proto.send_window_depth",
                 "value": len(conn.records)},
            )
        token.all_packets_sent = True
        self._maybe_complete(token)

    def _transmit_record(self, conn: Connection, record: SendRecord) -> Generator:
        """Stage one packet (fresh or retransmit) and queue it for the wire."""
        staged_at = self.sim.now
        buf = yield self.nic.send_buffers.acquire()
        yield from self.nic.dma(record.payload + GM_HEADER_BYTES)
        record.sent_at = self.sim.now
        m = self.sim.metrics
        if m is not None:
            m.observe("nic.send_service_us", self.sim.now - staged_at)
        conn.timer.arm(record)
        # make_packet: one header per transmitted packet (fresh or
        # retransmit) makes this a serving-rate hot site.
        pkt = make_packet(
            record.ptype, self.nic.id, record.dst, self.nic.id,
            port=record.dst_port,
            from_port=record.local_port,
            seq=record.seq,
            group=record.group,
            msg_id=record.token.msg_id,
            chunk=record.chunk,
            nchunks=record.nchunks,
            payload=record.payload,
            msg_size=record.msg_size,
            trace_id=record.trace_id,
        )
        if record.chunk == 0 and record.token.context.get("info") is not None:
            pkt.header.info["app"] = record.token.context["info"]
        fr = self.sim.flight
        if fr is not None and record.trace_id >= 0:
            fr.record(
                self.sim.now, record.trace_id, "tx", self.nic.id,
                pkt.uid, record.chunk,
                {"attempt": record.retransmits, "dst": record.dst},
            )
        desc = PacketDescriptor(pkt, buffer=buf)
        self.nic.queue_tx(desc, TX_PRIO_DATA)

    # -- reliability: timers & retransmission ------------------------------------
    def _expired(self, conn: Connection, record: SendRecord) -> None:
        """The oldest unacked record timed out: start the Go-back-N sweep.

        (Non-oldest and already-acked records never reach here — the
        connection's :class:`RetransmitTimer` re-arms or ignores them.)
        """
        self.sim.record(
            self.nic.name, "timeout", seq=record.seq, dst=record.dst,
            retransmits=record.retransmits,
        )
        self.sim.process(
            self.policy.sweep(conn.window, record.seq, conn=conn),
            name=f"{self.nic.name}.gbn",
        )

    def _retransmit_record(self, conn: Connection, record: SendRecord) -> Generator:
        """Default retransmission: re-fetch the data from host memory.

        Subclasses/sibling engines (multicast) override the data source;
        for GM unicast the host buffer is always still registered while
        the token is outstanding.
        """
        yield from self.nic.processing(self.cost.nic_per_packet_send)
        yield from self._transmit_record(conn, record)

    # -- ACK handling ------------------------------------------------------------
    def _handle_ack(self, pkt: Packet, _buf: Any) -> Generator:
        # nic.processing() inlined on the per-ack path (profile-hot).
        cpu = self.nic.cpu
        ev = cpu.use_fast(self.cost.nic_ack_processing)
        if ev is None:
            yield from cpu.use(self.cost.nic_ack_processing)
        else:
            yield ev
        h = pkt.header
        conn = self._send_conns.get((h.port, h.src, h.from_port))
        if conn is None:
            return  # stale ack for a connection we never opened
        m = self.sim.metrics
        fr = self.sim.flight
        acked = 0
        for record in conn.window.ack_cumulative(h.ack_seq):
            acked += 1
            if m is not None:
                m.observe("proto.ack_latency_us", self.sim.now - record.sent_at)
            if fr is not None and record.trace_id >= 0:
                fr.record(
                    self.sim.now, record.trace_id, "ack", self.nic.id,
                    pkt.uid, record.chunk, {"src": h.src},
                )
            token = record.token
            token.unacked_packets -= 1
            self._maybe_complete(token)
        if fr is not None and acked:
            fr.record(
                self.sim.now, -1, "gauge", self.nic.id, -1, 0,
                {"name": "proto.send_window_depth",
                 "value": len(conn.records)},
            )
        conn.timer.defuse()

    def _maybe_complete(self, token: SendToken) -> None:
        if not token.complete:
            return
        port = self.ports.get(token.port_num)
        if token.region is not None:
            token.region.unpin()
        if port is not None:
            # A cheap event DMA tells the host its send is done.
            if self.sim.trace.enabled:
                self.sim.record(
                    self.nic.name, "send_complete",
                    msg=token.msg_id, dst=token.dst,
                )
            port.complete_send(token)

    # -- receive path ---------------------------------------------------------------
    def _handle_data(self, pkt: Packet, buf: Any) -> Generator:
        arrived_at = self.sim.now
        # nic.processing() inlined on the per-packet path (profile-hot).
        cpu = self.nic.cpu
        ev = cpu.use_fast(self.cost.nic_recv_processing)
        if ev is None:
            yield from cpu.use(self.cost.nic_recv_processing)
        else:
            yield ev
        h = pkt.header
        m = self.sim.metrics
        conn = self.recv_conn(h.src, h.from_port, h.port)
        verdict = self._receiver.classify(conn, h)
        if verdict == "duplicate":
            # Duplicate (our ACK was probably lost): drop, re-ack.
            self.duplicates_dropped += 1
            if m is not None:
                m.inc("gm.drops.duplicate")
            if buf is not None:
                buf.release()
            yield from self._send_ack(conn, h)
            return
        if verdict != "accept":
            # Out of order: Go-back-N receivers drop and wait.
            self.out_of_order_dropped += 1
            if m is not None:
                m.inc("gm.drops.out_of_order")
            self.sim.record(
                self.nic.name, "ooo_drop", seq=h.seq,
                expected=conn.recv_seq + 1, src=h.src,
            )
            if buf is not None:
                buf.release()
            return
        port = self.ports.get(h.port)
        if port is None:
            if buf is not None:
                buf.release()
            return
        msg = conn.inflight.get(h.msg_id)
        if msg is None:
            rtoken = port.take_recv_token()
            if rtoken is None:
                # No preposted receive buffer: cannot accept.  Do NOT
                # advance recv_seq; the sender's timeout recovers.
                self.no_token_dropped += 1
                if m is not None:
                    m.inc("gm.drops.no_token")
                self.sim.record(
                    self.nic.name, "no_recv_token", seq=h.seq, src=h.src
                )
                if buf is not None:
                    buf.release()
                return
            msg = _InflightRecv(
                token=rtoken,
                nchunks=h.nchunks,
                src=h.src,
                src_port=h.from_port,
                msg_size=h.msg_size,
            )
            conn.inflight[h.msg_id] = msg
        if h.chunk == 0 and h.info.get("app") is not None:
            msg.app_info = h.info["app"]
        self._receiver.on_accept(conn, h)
        if m is not None:
            m.observe("nic.recv_service_us", self.sim.now - arrived_at)
        yield from self._send_ack(conn, h)
        # Copy to host memory in the background so the next packet can be
        # processed while the receive DMA engine streams this one up.
        self.sim.process(
            self._rdma_to_host(conn, msg, pkt, buf),
            name=f"{self.nic.name}.rdma",
        )

    def _rdma_to_host(self, conn: Connection, msg: _InflightRecv,
                      pkt: Packet, buf: Any) -> Generator:
        # nic.dma_write() inlined on the per-packet path (profile-hot).
        nic = self.nic
        duration = nic.cost.dma_write_time(pkt.header.payload)
        ev = nic.pci.use_fast(duration)
        if ev is None:
            yield from nic.pci.use(duration)
        else:
            yield ev
        if buf is not None:
            buf.release()
        msg.received += 1
        if msg.received == msg.nchunks:
            conn.inflight.pop(pkt.header.msg_id, None)
            yield from self.nic.processing(self.cost.nic_event_post)
            port = self.ports.get(pkt.header.port)
            fr = self.sim.flight
            if fr is not None and pkt.header.trace_id >= 0:
                fr.record(
                    self.sim.now, pkt.header.trace_id, "host_deliver",
                    self.nic.id, pkt.uid, pkt.header.chunk,
                )
            if port is not None:
                port.return_recv_token(msg.token)
                port.deliver_event(
                    RecvCompletion(
                        src=msg.src,
                        src_port=msg.src_port,
                        size=msg.msg_size,
                        msg_id=pkt.header.msg_id,
                        received_at=self.sim.now,
                        info=msg.app_info if msg.app_info is not None else {},
                    )
                )

    def _send_ack(self, conn: Connection, h: PacketHeader) -> Generator:
        yield from send_ack(
            self.nic, self.cost,
            ptype=PacketType.ACK,
            dst=h.src,
            port=h.from_port,
            from_port=h.port,
            ack_seq=conn.recv_seq,
        )
