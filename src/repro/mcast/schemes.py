"""The multicast scheme registry.

Every multicast scheme the paper compares (Fig. 1) is constructible
here by key, bound to a cluster and a spanning tree, and driven through
one small interface — so the experiment runner contains **no per-scheme
branches**, and adding a scheme is a registry entry plus a
:class:`BoundScheme` subclass, not another ``elif`` in every harness.

Keys are canonical (``nic_based``, ``nic_multisend``, ``host_based``,
``nic_assisted``, ``fmmc``, ``lfc``); the figure scripts' historical
``"nb"``/``"hb"`` spellings are context-dependent — ``nb`` means
"multisend into a flat group" in the Fig. 3 sweep but "multisend +
NIC forwarding on the optimal tree" in Fig. 5 — and resolve through
:func:`resolve_scheme`.

Each spec links to its row in the paper's feature comparison
(:data:`repro.mcast.features.SCHEMES`) via ``feature_key``.

The driving interface (all simulation coroutines unless noted):

``install()``
    one-time setup before measurement — prepost the group table,
    instantiate per-node engines (plain call, zero simulated cost);
``post(size)``
    the root's per-iteration action, *without* waiting for delivery
    acknowledgments (harnesses that detect completion at the receivers
    use this);
``send(size)``
    ``post`` + wait until the root's send completes (all acks in);
``relay(node_id, size)``
    a member's forwarding obligation after receiving one message —
    empty for NIC-forwarding schemes (zero simulated events), the
    host-driven re-send for host-based/NIC-assisted forwarding;
``run_once(size)``
    one-shot demonstration: install, send once, collect per-node
    delivery times (used by ``repro.mcast.manager.run_scheme``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.mcast.features import SCHEMES as FEATURE_SCHEMES
from repro.mcast.features import SchemeFeatures

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import Cluster
    from repro.trees.base import SpanningTree

__all__ = [
    "BoundScheme",
    "SchemeSpec",
    "available_schemes",
    "create_scheme",
    "get_scheme",
    "register_scheme",
    "resolve_scheme",
]


class BoundScheme:
    """One multicast scheme bound to one cluster and one spanning tree."""

    #: optional :class:`repro.scenario.spec.ReliabilitySpec` (duck-typed:
    #: anything with ``.family`` and ``.params()``) attached by the
    #: harness before ``install()``.  Only NIC-based schemes honour it;
    #: the baselines ride GM unicast reliability and ignore it.
    reliability = None

    def __init__(
        self,
        spec: "SchemeSpec",
        cluster: "Cluster",
        tree: "SpanningTree",
        port_num: int = 0,
    ):
        self.spec = spec
        self.cluster = cluster
        self.tree = tree
        self.port_num = port_num

    def install(self) -> None:
        """One-time setup before the first send (zero simulated cost)."""

    def post(self, size: int, info: dict | None = None) -> Generator:
        """Root coroutine: launch one multicast without waiting for acks.

        ``info`` is an optional application payload carried to every
        receiver's :class:`~repro.gm.api.RecvCompletion` (the serving
        workload stamps post timestamps through it).
        """
        raise NotImplementedError

    def send(self, size: int, info: dict | None = None) -> Generator:
        """Root coroutine: one multicast, waiting for send completion."""
        raise NotImplementedError

    def relay(
        self, node_id: int, size: int, info: dict | None = None
    ) -> Generator:
        """Member coroutine: forwarding duty after one received message.

        The default is the NIC-forwarding case: nothing to do, and —
        deliberately — not a single simulated event.
        """
        return
        yield  # pragma: no cover - makes this a generator function

    def run_once(self, size: int) -> dict[str, Any]:
        """Install, multicast once, return per-node delivery times."""
        self.install()
        cluster, tree = self.cluster, self.tree
        delivered: dict[int, float] = {}

        def root_prog() -> Generator:
            yield from self.send(size)

        def member_prog(node_id: int) -> Generator:
            port = cluster.port(node_id)
            yield from port.receive()
            delivered[node_id] = cluster.sim.now
            yield from self.relay(node_id, size)

        procs = [cluster.spawn(root_prog(), name=f"{self.spec.key}_root")]
        for node_id in tree.nodes:
            if node_id != tree.root:
                procs.append(
                    cluster.spawn(
                        member_prog(node_id),
                        name=f"{self.spec.key}_rx[{node_id}]",
                    )
                )
        cluster.run(until=cluster.sim.all_of(procs))
        return {"delivered": delivered}


@dataclass(frozen=True)
class SchemeSpec:
    """Registry entry for one multicast scheme."""

    key: str
    title: str
    #: row in :data:`repro.mcast.features.SCHEMES` (None: not on Fig. 1,
    #: e.g. the host-based baseline the figure measures schemes against)
    feature_key: str | None
    #: default spanning-tree shape when the caller doesn't pick one
    default_tree: str
    #: whether tree construction wants the cost model + message size
    #: (the paper's optimal trees are cost-driven; binomial/flat aren't)
    tree_uses_cost: bool
    cls: type[BoundScheme]

    @property
    def features(self) -> SchemeFeatures | None:
        """The scheme's row of the paper's Fig. 1 comparison."""
        if self.feature_key is None:
            return None
        return FEATURE_SCHEMES[self.feature_key]


_REGISTRY: dict[str, SchemeSpec] = {}

#: The figure scripts' historical scheme spellings, by harness context.
_LEGACY_NAMES: dict[str, dict[str, str]] = {
    "multisend": {"nb": "nic_multisend", "hb": "host_based"},
    "multicast": {"nb": "nic_based", "hb": "host_based"},
}


def register_scheme(spec: SchemeSpec) -> SchemeSpec:
    """Add *spec* to the registry (key must be unused)."""
    if spec.key in _REGISTRY:
        raise ValueError(f"multicast scheme {spec.key!r} already registered")
    if spec.feature_key is not None and spec.feature_key not in FEATURE_SCHEMES:
        raise ValueError(
            f"scheme {spec.key!r} references unknown feature row "
            f"{spec.feature_key!r}"
        )
    _REGISTRY[spec.key] = spec
    return spec


def available_schemes() -> tuple[str, ...]:
    """All registered canonical scheme keys, sorted."""
    return tuple(sorted(_REGISTRY))


def get_scheme(key: str) -> SchemeSpec:
    """Look up a spec by canonical key."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown multicast scheme {key!r} "
            f"(available: {', '.join(available_schemes())})"
        ) from None


def resolve_scheme(name: str, context: str = "multicast") -> str:
    """Canonicalize *name*, accepting the legacy ``nb``/``hb`` spellings.

    ``context`` picks the harness dialect: in the Fig. 3 ``"multisend"``
    sweep ``nb`` is the flat-group multisend; in the Fig. 5
    ``"multicast"`` sweep it is the full NIC-based scheme.
    """
    if name in _REGISTRY:
        return name
    try:
        return _LEGACY_NAMES[context][name]
    except KeyError:
        raise ValueError(
            f"unknown {context} scheme {name!r} "
            f"(available: {', '.join(available_schemes())})"
        ) from None


def create_scheme(
    key: str,
    cluster: "Cluster",
    tree: "SpanningTree",
    port_num: int = 0,
) -> BoundScheme:
    """Construct *key*'s bound scheme for (*cluster*, *tree*)."""
    spec = get_scheme(key)
    return spec.cls(spec, cluster, tree, port_num)


# ---------------------------------------------------------------------------
# The paper's schemes.
# ---------------------------------------------------------------------------

class NicBasedScheme(BoundScheme):
    """The paper's scheme: NIC multisend + NIC forwarding over a
    preposted group table (with a flat tree, the forwarding-free
    ``nic_multisend`` variant measured in Fig. 3)."""

    group_id: int | None = None
    #: default reliability engine family (a :mod:`repro.proto.engines`
    #: registry name); a :attr:`BoundScheme.reliability` spec attached
    #: by the harness overrides it per run.
    reliability_family: str = "ack_window"

    def _reliability_config(self) -> tuple[str, dict]:
        spec = self.reliability
        if spec is None:
            return self.reliability_family, {}
        family = spec.family or self.reliability_family
        return family, spec.params()

    def install(self) -> None:
        from repro.mcast.manager import install_group, next_group_id

        # Partitioned runs pre-pin group_id (every shard must agree on
        # the id stamped into packets) but still need the local group
        # tables installed — install_group always runs; only id
        # allocation is guarded.  install_group_now is an idempotent
        # table write, so re-installation is harmless.
        if self.group_id is None:
            self.group_id = next_group_id()
        family, params = self._reliability_config()
        install_group(
            self.cluster, self.group_id, self.tree, self.port_num,
            family=family, params=params,
        )

    def post(self, size: int, info: dict | None = None) -> Generator:
        root = self.tree.root
        handle = yield from self.cluster.node(root).mcast.multicast_send(
            self.cluster.port(root), self.group_id, size, info=info
        )
        return handle

    def send(self, size: int, info: dict | None = None) -> Generator:
        handle = yield from self.post(size, info=info)
        yield handle.done


class HostBasedScheme(BoundScheme):
    """MPICH-GM's broadcast: unicasts along the tree, every hop through
    the intermediate host (see :mod:`repro.mcast.hostbased`)."""

    def post(self, size: int, info: dict | None = None) -> Generator:
        yield from self.relay(self.tree.root, size, info=info)

    send = post

    def relay(
        self, node_id: int, size: int, info: dict | None = None
    ) -> Generator:
        kids = self.tree.children_of(node_id)
        if not kids:
            return
        port = self.cluster.port(node_id)
        handles = []
        for child in kids:
            handle = yield from port.send(child, size, info=info)
            handles.append(handle.done)
        yield self.cluster.sim.all_of(handles)


class NicAssistedScheme(BoundScheme):
    """Multidestination sends with host-driven forwarding
    (see :mod:`repro.mcast.nic_assisted`)."""

    def install(self) -> None:
        from repro.mcast.nic_assisted import NicAssistedEngine

        for node in self.cluster.nodes:
            if node is not None and not hasattr(node, "nic_assisted"):
                node.nic_assisted = NicAssistedEngine(node)

    def post(self, size: int, info: dict | None = None) -> Generator:
        yield from self.relay(self.tree.root, size, info=info)

    send = post

    def relay(
        self, node_id: int, size: int, info: dict | None = None
    ) -> Generator:
        from repro.mcast.nic_assisted import nic_assisted_multisend

        kids = self.tree.children_of(node_id)
        if not kids:
            return
        handle = yield from nic_assisted_multisend(
            self.cluster.node(node_id), self.cluster.port(node_id), kids,
            size, info=info,
        )
        yield handle.done


class FmmcScheme(BoundScheme):
    """FM/MC: NIC forwarding gated by a centralized credit manager
    (see :mod:`repro.mcast.fmmc`).  Data moves over the NIC-based
    machinery; the credit plumbing is the scheme's defect."""

    group_id: int | None = None

    def install(self) -> None:
        from repro.mcast.fmmc import FMMCCreditManager
        from repro.mcast.manager import install_group, next_group_id

        if self.group_id is None:
            self.group_id = next_group_id()
            install_group(self.cluster, self.group_id, self.tree, self.port_num)
            # The centralized manager lives on some host other than the
            # sending root (a root asking itself for credits would be a
            # self-route); its node still consumes the multicast data on
            # the ordinary port while credit traffic uses the control
            # port.
            self.manager = FMMCCreditManager(
                self.cluster,
                node_id=min(n for n in self.tree.nodes if n != self.tree.root),
            )

    def run_once(self, size: int) -> dict[str, Any]:
        from repro.mcast.fmmc import fmmc_consumer_program, fmmc_sender_program

        self.install()
        cluster, tree = self.cluster, self.tree
        sent_log: list[float] = []
        procs = [
            cluster.spawn(self.manager.program(1), name="fmmc_mgr"),
            cluster.spawn(
                fmmc_sender_program(
                    self.manager, tree.root, self.group_id, size, 1, sent_log
                ),
                name="fmmc_root",
            ),
        ]
        delivered: dict[int, float] = {}

        def consumer(node_id: int) -> Generator:
            yield from fmmc_consumer_program(cluster, node_id, 1)
            delivered[node_id] = cluster.sim.now

        for node_id in tree.nodes:
            if node_id != tree.root:
                procs.append(
                    cluster.spawn(consumer(node_id), name=f"fmmc_rx[{node_id}]")
                )
        cluster.run(until=cluster.sim.all_of(procs))
        return {"delivered": delivered, "sent": sent_log}


class LfcScheme(BoundScheme):
    """LFC: hop-by-hop credits on an abstract fabric (see
    :mod:`repro.mcast.lfc`) — the deadlock-prone point in Fig. 1's
    flow-control axis, modelled above the packet level."""

    def run_once(self, size: int) -> dict[str, Any]:
        from repro.mcast.lfc import run_lfc_multicasts

        fabric = run_lfc_multicasts(
            self.cluster.sim, len(self.cluster.nodes), [self.tree]
        )
        return {
            "delivered": {
                node.id: list(node.delivered) for node in fabric.nodes
            }
        }


register_scheme(SchemeSpec(
    key="nic_based",
    title="NIC-based multicast (multisend + NIC forwarding)",
    feature_key="ours",
    default_tree="optimal",
    tree_uses_cost=True,
    cls=NicBasedScheme,
))
register_scheme(SchemeSpec(
    key="nic_multisend",
    title="NIC-based multisend only (flat group, no forwarding)",
    feature_key="ours",
    default_tree="flat",
    tree_uses_cost=False,
    cls=NicBasedScheme,
))
class NicNackScheme(NicBasedScheme):
    """NIC-based multicast with receiver-driven NACK reliability:
    receivers detect gaps and multicast repairs are pulled on demand
    (see :mod:`repro.proto.engines.nack`)."""

    reliability_family = "nack"


class NicNackFecScheme(NicBasedScheme):
    """NIC-based multicast with NACK + XOR-parity FEC: one loss per
    parity block reconstructs in place, with NACK repair as fallback
    (see :mod:`repro.proto.engines.nack_fec`)."""

    reliability_family = "nack_fec"


register_scheme(SchemeSpec(
    key="nic_nack",
    title="NIC-based multicast, NACK reliability",
    feature_key="ours",
    default_tree="optimal",
    tree_uses_cost=True,
    cls=NicNackScheme,
))
register_scheme(SchemeSpec(
    key="nic_nack_fec",
    title="NIC-based multicast, NACK + XOR-FEC reliability",
    feature_key="ours",
    default_tree="optimal",
    tree_uses_cost=True,
    cls=NicNackFecScheme,
))
register_scheme(SchemeSpec(
    key="host_based",
    title="Host-based multiple unicasts (MPICH-GM broadcast)",
    feature_key=None,
    default_tree="binomial",
    tree_uses_cost=False,
    cls=HostBasedScheme,
))
register_scheme(SchemeSpec(
    key="nic_assisted",
    title="NIC-assisted multidestination sends (Buntinas et al.)",
    feature_key="nic_assisted",
    default_tree="binomial",
    tree_uses_cost=False,
    cls=NicAssistedScheme,
))
register_scheme(SchemeSpec(
    key="fmmc",
    title="FM/MC end-to-end credits (Verstoep et al.)",
    feature_key="fmmc",
    default_tree="binomial",
    tree_uses_cost=False,
    cls=FmmcScheme,
))
register_scheme(SchemeSpec(
    key="lfc",
    title="LFC point-to-point credits (Bhoedjang et al.)",
    feature_key="lfc",
    default_tree="binomial",
    tree_uses_cost=False,
    cls=LfcScheme,
))

# The self-healing variants (backup_tree, tree_repair) live with the
# recovery control plane and register themselves on import.
from repro.mcast import recovery as _recovery  # noqa: E402,F401
