"""Unit tests for the Process coroutine driver."""

import pytest

from repro.sim import Interrupt, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)
        return "result"

    p = sim.process(proc())
    assert sim.run(until=p) == "result"
    assert sim.now == 5.0


def test_process_is_alive():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    p = sim.process(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_receives_event_values():
    sim = Simulator()

    def proc():
        v = yield sim.timeout(1.0, value=41)
        return v + 1

    assert sim.run(until=sim.process(proc())) == 42


def test_yield_non_event_raises_inside_process():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield "not an event"  # type: ignore[misc]
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.run(until=sim.process(proc()))
    assert caught and "not a SimEvent" in caught[0]


def test_failed_event_raises_in_process():
    sim = Simulator()
    ev = sim.event()
    sim.timeout(1.0).add_callback(lambda _e: ev.fail(KeyError("lost")))
    seen = []

    def proc():
        try:
            yield ev
        except KeyError:
            seen.append(sim.now)

    sim.run(until=sim.process(proc()))
    assert seen == [1.0]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        with pytest.raises(ValueError, match="child died"):
            yield sim.process(child())
        return "survived"

    assert sim.run(until=sim.process(parent())) == "survived"


def test_unwaited_process_exception_surfaces():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_wait_on_another_process():
    sim = Simulator()
    order = []

    def worker():
        yield sim.timeout(5.0)
        order.append("worker")
        return 99

    def boss(w):
        v = yield w
        order.append(f"boss:{v}")

    w = sim.process(worker())
    sim.process(boss(w))
    sim.run()
    assert order == ["worker", "boss:99"]


def test_wait_on_finished_process_resumes_immediately():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return "done"

    w = sim.process(worker())

    def late():
        yield sim.timeout(10.0)
        v = yield w
        return (sim.now, v)

    assert sim.run(until=sim.process(late())) == (10.0, "done")


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        p.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert log == [(3.0, "wake up")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        return sim.now

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(5.0)
        p.interrupt()

    sim.process(interrupter())
    assert sim.run(until=p) == 6.0


def test_nested_generators_with_yield_from():
    sim = Simulator()

    def inner():
        yield sim.timeout(2.0)
        return 10

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    assert sim.run(until=sim.process(outer())) == 20
    assert sim.now == 4.0


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def proc(tag, period, n):
        for _ in range(n):
            yield sim.timeout(period)
            log.append((sim.now, tag))

    sim.process(proc("a", 2.0, 3))
    sim.process(proc("b", 3.0, 2))
    sim.run()
    # At t=6.0 both fire; b's timeout was scheduled first (at t=3) so the
    # deterministic (time, priority, sequence) ordering resumes b first.
    assert log == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a")]


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def proc(i):
        yield sim.timeout(float(i % 17))
        done.append(i)

    for i in range(500):
        sim.process(proc(i))
    sim.run()
    assert len(done) == 500
