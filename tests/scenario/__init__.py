"""Tests for the declarative scenario layer."""
