"""ClusterConfig serialization, extras hygiene, and config-driven loss."""

import warnings

import pytest

from repro.cluster import Cluster
from repro.config import (
    KNOWN_EXTRAS,
    ClusterConfig,
    register_extra_key,
)
from repro.errors import ConfigError
from repro.gm.params import GMCostModel
from repro.net.fault import BernoulliLoss, LossSpec, ScriptedLoss


def test_unknown_extras_key_warns():
    with pytest.warns(UserWarning, match="typo_knob"):
        ClusterConfig(n_nodes=4, extras={"typo_knob": 1})


def test_registered_extras_key_is_silent():
    key = register_extra_key("test_registered_knob")
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ClusterConfig(n_nodes=4, extras={key: 1})
    finally:
        KNOWN_EXTRAS.discard(key)


def test_live_loss_model_rejected_in_config():
    with pytest.raises(ConfigError, match="declarative LossSpec"):
        ClusterConfig(n_nodes=4, loss=BernoulliLoss(0.1))


def test_cluster_builds_loss_from_config():
    cfg = ClusterConfig(n_nodes=4, loss=LossSpec(kind="bernoulli", rate=0.5))
    cluster = Cluster(cfg)
    assert isinstance(cluster.network.loss, BernoulliLoss)
    # A fresh model per cluster: two clusters never share drop counters.
    assert Cluster(cfg).network.loss is not cluster.network.loss


def test_explicit_loss_argument_wins_over_config():
    cfg = ClusterConfig(n_nodes=4, loss=LossSpec(kind="bernoulli", rate=0.5))
    scripted = ScriptedLoss(lambda pkt: False)
    cluster = Cluster(cfg, loss=scripted)
    assert cluster.network.loss is scripted


def test_cluster_config_round_trips_through_dict():
    cfg = ClusterConfig(
        n_nodes=8,
        seed=3,
        topology="line",
        cost=GMCostModel(mtu=2048),
        loss=LossSpec(kind="bit_error", ber=1e-7),
    )
    data = cfg.to_dict()
    assert data["cost"] == {"mtu": 2048}
    assert data["loss"] == {"kind": "bit_error", "ber": 1e-7}
    assert ClusterConfig.from_dict(data) == cfg


def test_cluster_config_unknown_key_rejected():
    with pytest.raises(ConfigError, match="unknown cluster config"):
        ClusterConfig.from_dict({"n_nodes": 4, "toplogy": "clos"})
