"""Command line driver: regenerate the paper's figures, or run any
user-written scenario spec.

Usage::

    python -m repro.experiments --figure fig3
    python -m repro.experiments --all --quick
    python -m repro.experiments --all -o EXPERIMENTS-results.md
    python -m repro.experiments --figure fig5 --metrics  # + fig5.metrics.json
    python -m repro.experiments --scenario examples/scenarios/spec.json
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys
import time

from repro.experiments import FIGURES
from repro.experiments.parallel import default_jobs
from repro.experiments.report import render_scenario_result

__all__ = ["main"]


def run_figure(figure_id: str, quick: bool, jobs: int | None = 1):
    module = importlib.import_module(FIGURES[figure_id])
    # Sweep figures fan cells across workers; fig1/fig2 are single probes
    # with no jobs parameter.
    if "jobs" in inspect.signature(module.run).parameters:
        return module.run(quick=quick, jobs=jobs)
    return module.run(quick=quick)


def _run_with_metrics(figure_id: str, quick: bool, started: float):
    """Run one figure with a registry attached; write its sidecar.

    Every simulator the figure builds adopts one shared registry (via
    ``set_default_metrics``), so the sidecar aggregates the whole sweep.
    Serial only — the registry cannot see into pool workers.
    """
    from repro.obs.registry import MetricsRegistry
    from repro.perf.counters import KERNEL_COUNTERS
    from repro.sim.engine import set_default_metrics

    registry = MetricsRegistry()
    kernel_before = KERNEL_COUNTERS.snapshot()
    previous = set_default_metrics(registry)
    try:
        result = run_figure(figure_id, quick=quick, jobs=1)
    finally:
        set_default_metrics(previous)
    kernel_after = KERNEL_COUNTERS.snapshot()
    sidecar = f"{figure_id}.metrics.json"
    payload = {
        "figure": figure_id,
        "quick": quick,
        "wall_s": round(time.time() - started, 3),
        "kernel_counters": {
            k: kernel_after[k] - kernel_before.get(k, 0)
            for k in kernel_after
        },
        "metrics": registry.snapshot(),
    }
    with open(sidecar, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return result, sidecar


def run_scenario_file(path: str, metrics: bool = False) -> str:
    """Run one serialized scenario spec; return the rendered result.

    With ``metrics``, a registry observes the run and a
    ``<name>.metrics.json`` sidecar lands next to the invocation.
    """
    import repro.workload  # noqa: F401  (registers the serving runner)
    from repro.scenario import Harness, ScenarioSpec

    with open(path, encoding="utf-8") as fh:
        spec = ScenarioSpec.from_json(fh.read())
    registry = None
    if metrics:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
    result = Harness(spec, registry=registry).run()
    text = render_scenario_result(result, registry=registry)
    if registry is not None:
        sidecar = f"{spec.name or 'scenario'}.metrics.json"
        with open(sidecar, "w", encoding="utf-8") as fh:
            json.dump(
                {"scenario": spec.to_dict(), "metrics": registry.snapshot()},
                fh, indent=1, sort_keys=True,
            )
            fh.write("\n")
        text += f"\nwrote {sidecar}"
    return text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from 'High Performance and "
        "Reliable NIC-Based Multicast over Myrinet/GM-2' (ICPP 2003).",
    )
    parser.add_argument(
        "--figure", choices=sorted(FIGURES), action="append",
        help="figure(s) to run (repeatable)",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweeps/iterations (seconds instead of minutes)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="also append rendered results to this markdown file",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep figures "
        "(default: all CPUs; 1 = serial in-process)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="attach a metrics registry to every simulator and write a "
        "<figure>.metrics.json sidecar per figure (forces --jobs 1: the "
        "registry observes this process only)",
    )
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="SPEC.json",
        help="run a serialized scenario spec end-to-end (repeatable; "
        "see examples/scenarios/ and docs/architecture.md)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.metrics:
        jobs = 1
    targets = sorted(FIGURES) if args.all else (args.figure or [])
    scenarios = args.scenario or []
    if not targets and not scenarios:
        parser.error("pick --all, at least one --figure, or --scenario")
    chunks: list[str] = []
    for figure_id in targets:
        started = time.time()
        print(f"=== {figure_id} ===", flush=True)
        if args.metrics:
            result, sidecar = _run_with_metrics(
                figure_id, quick=args.quick, started=started
            )
            print(f"wrote {sidecar}")
        else:
            result = run_figure(figure_id, quick=args.quick, jobs=jobs)
        text = result.render()
        if "table" in result.extra:
            text += "\n\n" + result.extra["table"]
        if "forwarding_timeline" in result.extra:
            text += "\n\nforwarding timeline: " + ", ".join(
                f"{k}={v:.1f}us"
                for k, v in result.extra["forwarding_timeline"].items()
            )
        print(text)
        print(f"({time.time() - started:.1f}s wall)\n", flush=True)
        chunks.append(text)
    for path in scenarios:
        started = time.time()
        print(f"=== scenario {path} ===", flush=True)
        text = run_scenario_file(path, metrics=args.metrics)
        print(text)
        print(f"({time.time() - started:.1f}s wall)\n", flush=True)
        chunks.append(text)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n")
        print(f"appended results to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
