"""Generator-coroutine process driver.

A *process* wraps a Python generator that yields :class:`SimEvent`
instances.  When a yielded event triggers, the process is resumed with the
event's value (or, if the event failed, the exception is thrown into the
generator).  When the generator returns, the process — itself an event —
succeeds with the generator's return value, so processes can be waited on
and composed like any other event.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Interrupt, SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Process"]


class Process(SimEvent):
    """A running simulation process (also an event: triggers on exit)."""

    __slots__ = ("_generator", "_target", "_resume_cb", "_send", "_throw")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[SimEvent, Any, Any],
        name: str | None = None,
    ):
        # The common case is an actual generator (one type check); only
        # duck-typed stand-ins pay the hasattr probes.
        if type(generator) is not GeneratorType and (
            not hasattr(generator, "send") or not hasattr(generator, "throw")
        ):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", None))
        self._generator = generator
        #: Bound ``send``/``throw``, cached once — rebinding them on every
        #: resume costs a method lookup per event.
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process is currently waiting on (None if not
        #: started or finished).
        self._target: SimEvent | None = None
        #: The bound resume method, created once — registering a fresh
        #: ``self._resume`` on every yield would allocate a bound-method
        #: object per event on the kernel's hottest path.
        self._resume_cb = self._resume
        # Kick off at the current instant, with urgent priority so a
        # just-created process starts before same-time ordinary events.
        # The boot event is anonymous — an f-string name per spawned
        # process showed up in serving-rate profiles.
        boot = SimEvent.__new__(SimEvent)
        boot.sim = sim
        boot.callbacks = [self._resume_cb]
        boot._value = None
        boot._ok = True
        boot.name = None
        sim._now_uq.append(boot)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The event the process was waiting on is abandoned (its callback is
        detached); the process decides what to do with the interrupt.
        Interrupting a finished process raises :class:`RuntimeError`.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        if self._target is None:
            raise RuntimeError(f"cannot interrupt unstarted process {self!r}")
        self._target.remove_callback(self._resume_cb)
        self._target = None
        poke = SimEvent(self.sim, name=f"interrupt:{self.name}")
        poke._ok = False
        poke._value = Interrupt(cause)
        # defused: the failure is delivered via throw(), never "unhandled".
        self.sim._schedule(poke, 0.0, 0)
        poke.add_callback(self._resume_cb)

    def _resume(self, event: SimEvent) -> None:
        self._target = None
        send = self._send
        while True:
            try:
                # Events handed to _resume are always triggered, so the
                # slots are read directly (the ok/value properties cost a
                # descriptor call each on the busiest path in the kernel).
                if event._ok:
                    target = send(event._value)
                else:
                    target = self._throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value, priority=0)
                return
            except BaseException as exc:
                if self.callbacks:
                    # Someone is waiting on this process: propagate to them.
                    self.fail(exc, priority=0)
                    return
                raise
            try:
                # EAFP stand-in for isinstance(target, SimEvent): every
                # event has a `callbacks` slot, and on 3.11+ an untaken
                # except costs nothing, where the isinstance call was
                # measurable at one per yield.
                cbs = target.callbacks
            except AttributeError:
                err = RuntimeError(
                    f"process {self.name!r} yielded {target!r}, "
                    "which is not a SimEvent"
                )
                try:
                    self._throw(err)
                except StopIteration as stop:
                    self.succeed(stop.value, priority=0)
                    return
                raise err
            if target.sim is not self.sim:
                raise ValueError("yielded an event from a different simulator")
            if cbs is None:
                # Already processed: loop around synchronously (no
                # rescheduling), keeping same-instant semantics cheap and
                # deterministic.
                event = target
                continue
            self._target = target
            cbs.append(self._resume_cb)
            return
