"""Lightweight kernel performance counters.

The simulation engine increments these on its hot path (one integer add
per processed event), so any harness — ``repro.perf.bench_kernel``, a
test, or an ad-hoc script — can compute events/sec around an arbitrary
workload without instrumenting every ``Simulator`` it creates:

    KERNEL_COUNTERS.reset()
    run_workload()
    rate = KERNEL_COUNTERS.events / wall_seconds

Counters are per-process: work fanned out by
:class:`repro.experiments.parallel.SweepExecutor` accumulates in the
worker processes, not the parent.
"""

from __future__ import annotations

__all__ = ["KernelCounters", "KERNEL_COUNTERS"]


class KernelCounters:
    """Process-global tallies maintained by the simulation kernel.

    The ``timer*`` counters are maintained by
    :class:`repro.proto.timer.RetransmitTimer` and quantify event-heap
    pressure from retransmission timers:

    ``timers_armed``
        protocol-level (re)arm requests — exactly the number of heap
        callbacks the old per-record ``call_at(lambda …)`` pattern
        pushed, so ``timers_armed - timers_scheduled`` is the heap
        garbage the per-window timer object avoids;
    ``timers_scheduled``
        heap callbacks the per-window timer actually scheduled;
    ``timer_fires``
        timer callbacks that popped;
    ``timer_stale_fires``
        fires that found nothing overdue (every record acked or
        re-armed since scheduling) — pure heap churn;
    ``timers_cancelled``
        outstanding timers defused (window drained before the fire).
        A defused timer costs no event dispatch, but its disposal is
        split across two kernel counters: one cancelled while still in
        the wheel is dropped at flush (``wheel_cancelled``); one whose
        slot already flushed to the heap — or that bypassed the wheel
        because it was due within one slot — is skipped at pop
        (``wheel_skipped``).  Once the queue drains,
        ``timers_cancelled == wheel_cancelled + wheel_skipped``.

    The ``batched_events`` / ``wheel_*`` counters are maintained by the
    Kernel v3 engine itself: ``batched_events`` counts events that rode
    the same-instant now-queue instead of the heap; ``wheel_armed`` /
    ``wheel_flushed`` / ``wheel_cancelled`` count timers entering the
    hierarchical wheel, reaching the heap live, and being dropped in
    the wheel after cancellation; ``wheel_skipped`` counts cancelled
    handles discarded at heap pop without dispatching an event.
    """

    __slots__ = (
        "events",
        "batched_events",
        "simulators",
        "timers_armed",
        "timers_scheduled",
        "timers_cancelled",
        "timer_fires",
        "timer_stale_fires",
        "wheel_armed",
        "wheel_flushed",
        "wheel_cancelled",
        "wheel_skipped",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.events = 0
        self.batched_events = 0
        self.simulators = 0
        self.timers_armed = 0
        self.timers_scheduled = 0
        self.timers_cancelled = 0
        self.timer_fires = 0
        self.timer_stale_fires = 0
        self.wheel_armed = 0
        self.wheel_flushed = 0
        self.wheel_cancelled = 0
        self.wheel_skipped = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelCounters events={self.events} sims={self.simulators}>"


#: The counters the engine increments.  Reset before a measured region.
KERNEL_COUNTERS = KernelCounters()
