"""Multiple processes per node: port isolation and concurrency.

GM's protection model lets several user processes share one NIC through
separate ports ("concurrent memory-protected OS-bypass access to the NIC
by several user-level applications", paper §2/§4).
"""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ProtectionError, ReproError
from repro.gm.tokens import ReceiveToken


def open_extra_port(cluster, node_id, port_num, owner=None):
    port = cluster.node(node_id).open_port(port_num, owner=owner or object())
    for _ in range(16):
        port._recv_tokens.append(ReceiveToken(port_num))
    return port


def test_duplicate_port_number_rejected():
    cluster = Cluster(ClusterConfig(n_nodes=1))
    with pytest.raises(ReproError):
        cluster.node(0).open_port(0)  # port 0 opened by the cluster


def test_two_ports_independent_streams():
    cluster = Cluster(ClusterConfig(n_nodes=2))
    owner_a, owner_b = object(), object()
    a0 = open_extra_port(cluster, 0, 1, owner_a)
    b0 = open_extra_port(cluster, 0, 2, owner_b)
    a1 = open_extra_port(cluster, 1, 1, owner_a)
    b1 = open_extra_port(cluster, 1, 2, owner_b)
    got = {"a": [], "b": []}

    def app_a_sender():
        for k in range(5):
            yield from a0.send(1, 100 + k, dst_port=1, caller=owner_a)

    def app_b_sender():
        for k in range(5):
            yield from b0.send(1, 200 + k, dst_port=2, caller=owner_b)

    def app_a_receiver():
        for _ in range(5):
            completion = yield from a1.receive(caller=owner_a)
            got["a"].append(completion.size)

    def app_b_receiver():
        for _ in range(5):
            completion = yield from b1.receive(caller=owner_b)
            got["b"].append(completion.size)

    procs = [
        cluster.spawn(g())
        for g in (app_a_sender, app_b_sender, app_a_receiver, app_b_receiver)
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    # Per-port FIFO streams, never cross-delivered.
    assert got["a"] == [100, 101, 102, 103, 104]
    assert got["b"] == [200, 201, 202, 203, 204]


def test_port_to_missing_port_dropped_then_recovered():
    # Sending to a port that opens later: packets drop (no port), the
    # sender's timeout recovers once the port exists with buffers.
    from repro.gm.params import GMCostModel

    cost = GMCostModel(ack_timeout=100.0)
    cluster = Cluster(ClusterConfig(n_nodes=2, cost=cost))
    owner = object()
    sender_port = open_extra_port(cluster, 0, 3, owner)
    got = []

    def sender():
        handle = yield from sender_port.send(1, 64, dst_port=3, caller=owner)
        yield handle.done

    def late_opener():
        yield cluster.sim.timeout(150.0)
        rx = open_extra_port(cluster, 1, 3, owner)
        completion = yield from rx.receive(caller=owner)
        got.append(completion.size)

    procs = [cluster.spawn(sender()), cluster.spawn(late_opener())]
    cluster.run(until=cluster.sim.all_of(procs))
    assert got == [64]
    assert cluster.node(0).gm.retransmissions >= 1


def test_token_pools_are_per_port():
    from repro.gm.params import GMCostModel

    cost = GMCostModel(send_tokens_per_port=2)
    cluster = Cluster(ClusterConfig(n_nodes=2, cost=cost))
    owner = object()
    extra = cluster.node(0).open_port(5, owner=owner)
    # Exhaust port 0's tokens; port 5 is unaffected.
    default_port = cluster.port(0)

    def prog():
        yield from default_port.send(1, 8)
        yield from default_port.send(1, 8)
        assert default_port.free_send_tokens == 0
        assert extra.free_send_tokens == 2

    def rx():
        for _ in range(2):
            yield from cluster.port(1).receive()

    procs = [cluster.spawn(prog()), cluster.spawn(rx())]
    cluster.run(until=cluster.sim.all_of(procs))


def test_foreign_process_cannot_drain_events():
    cluster = Cluster(ClusterConfig(n_nodes=2))
    owner = object()
    port = open_extra_port(cluster, 1, 7, owner)
    with pytest.raises(ProtectionError):
        port.try_receive(caller=object())
