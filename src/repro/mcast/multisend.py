"""The NIC-based multisend (root side of the multicast).

"The host posts only one multisend request.  The NIC then finds a
corresponding list of destinations and queues the message for
transmission to the first destination.  When that transmission completes,
the NIC modifies the packet header and queues it for transmission to
another destination, and so on.  The same data is transmitted again with
a small overhead" (paper §3).

Of the three design alternatives in §5 (multiple send tokens; descriptor
callbacks; header rewrite during transmit) the paper implements the
second — descriptor callbacks — and so do we.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.net.packet import GM_HEADER_BYTES, split_message
from repro.nic.descriptor import PacketDescriptor
from repro.nic.lanai import TX_PRIO_DATA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mcast.engine import McastEngine
    from repro.mcast.group import GroupState, McastSendCommand
    from repro.mcast.reliability import McastRecord

__all__ = ["Multisend"]


class Multisend:
    """Root-side multisend: one of ``McastEngine``'s composed components.

    Owns the replica-chain emission (descriptor callbacks), which the
    forwarding component shares for its own replica chains.
    """

    def __init__(self, engine: "McastEngine"):
        self.engine = engine
        self.nic = engine.nic
        self.gm = engine.gm
        self.sim = engine.sim
        self.cost = engine.cost
        self.table = engine.table

    def _handle_mcast_send(self, cmd: "McastSendCommand") -> Generator:
        token = cmd.token
        assert token is not None
        # One send-token translation for the whole multisend — this is
        # the processing host-based multiple unicasts repeat per
        # destination (Fig. 2a vs 2b).
        yield from self.nic.processing(self.cost.nic_send_token_processing)
        group = self.table.require(cmd.group_id)
        if not group.is_root:
            raise RuntimeError(
                f"{self.nic.name}: multisend into group {group.group_id} "
                "from a non-root member"
            )
        chunks = split_message(token.size, self.cost.mtu)
        token.context["records_pending"] = len(chunks)
        if not group.children:
            # Degenerate group: nothing to send; complete immediately.
            token.all_packets_sent = True
            token.unacked_packets = 0
            self.engine._root_token_complete(group, token)
            return
        for idx, payload in enumerate(chunks):
            yield from self.nic.processing(self.cost.nic_per_packet_send)
            record = self._make_record(group, token, idx, payload, len(chunks))
            if idx == 0 and token.context.get("info"):
                record.app_info = token.context["info"]
            # The data fetch goes through the staging pipeline (shared
            # with GM unicast) so it overlaps the wire and later chunks.
            self.gm.stage(
                lambda group=group, record=record: (
                    self._stage_multisend_chunk(group, record)
                )
            )
        token.all_packets_sent = True

    def _stage_multisend_chunk(self, group, record):
        buf = yield self.nic.send_buffers.acquire()
        # The message crosses the PCI bus ONCE, whatever the fanout.
        yield from self.nic.dma(record.payload + GM_HEADER_BYTES)
        fr = self.sim.flight
        if fr is not None and record.trace_id >= 0:
            fr.record(
                self.sim.now, record.trace_id, "dma", self.nic.id,
                -1, record.chunk,
            )
        self.engine.reliability.arm(group, record)
        first, rest = group.children[0], group.children[1:]
        pkt = self.engine._build_mcast_packet(group, record, first)
        desc = PacketDescriptor(
            pkt,
            buffer=buf,
            on_transmit=self._replica_callback,
            context={"remaining": list(rest), "record": record,
                     "group": group},
        )
        record.sent_at = self.sim.now
        self.nic.queue_tx(desc, TX_PRIO_DATA)
        self.engine.reliability.sender_engine(group).on_data_queued(
            group, record
        )

    def _make_record(
        self,
        group: "GroupState",
        token,
        chunk: int,
        payload: int,
        nchunks: int,
    ) -> "McastRecord":
        from repro.mcast.reliability import McastRecord

        record = McastRecord(
            seq=group.alloc_seq(),
            group_id=group.group_id,
            msg_id=token.msg_id,
            chunk=chunk,
            nchunks=nchunks,
            payload=payload,
            msg_size=token.size,
            unacked=set(group.children),
            token=token,
            trace_id=token.context.get("trace_id", -1),
        )
        group.window.add(record)
        if chunk == 0:
            group.msg_meta[token.msg_id] = (
                record.seq, nchunks, token.size, record.trace_id
            )
        token.unacked_packets += 1
        return record

    def _replica_callback(self, desc: PacketDescriptor):
        """GM-2 descriptor callback: retarget the same SRAM bytes at the
        next destination, or release the buffer after the last replica."""
        remaining: list[int] = desc.context["remaining"]
        if not remaining:
            if desc.buffer is not None:
                desc.buffer.release()
            return None
        return self._emit_next_replica(desc, remaining)

    def _emit_next_replica(
        self, desc: PacketDescriptor, remaining: list[int]
    ) -> Generator:
        # "The same data is transmitted again with a small overhead" —
        # the header rewrite on the NIC processor.  Under the paper's
        # third design alternative the rewrite overlapped the previous
        # transmission, so the inter-replica gap omits it.
        if not self.cost.multisend_inline_rewrite:
            yield from self.nic.processing(self.cost.nic_header_rewrite)
        nxt = remaining.pop(0)
        desc.retarget(dst=nxt)
        m = self.sim.metrics
        if m is not None:
            m.inc("mcast.replicas_sent")
        if self.sim.trace.enabled:
            self.sim.record(
                self.nic.name, "replica", seq=desc.packet.header.seq, dst=nxt,
                group=desc.packet.header.group,
            )
        # Each replica emission refreshes the send record's timestamp
        # and timer — the retransmission clock must not start ticking
        # for children whose replica has not left the NIC yet.
        record = desc.context.get("record")
        group = desc.context.get("group")
        if (
            record is not None
            and group is not None
            and record.seq in group.window
        ):
            record.sent_at = self.sim.now
            self.engine.reliability.arm(group, record)
        self.nic.queue_tx(desc, TX_PRIO_DATA)
