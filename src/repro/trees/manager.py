"""Live tree management: backup trees and incremental repair.

The builders (:mod:`repro.trees.builder`) are build-once — the right
model while the fabric never changes.  Under the topology failure
lifecycle (:mod:`repro.net.failure`) a tree must *heal*: when a
forwarding node becomes unreachable, its orphaned subtrees need a new
live parent.  :class:`TreeManager` wraps a built tree with the two
recovery strategies the multicast layer registers as schemes:

``backup_for(node)``
    A precomputed alternate tree that excludes *node* from the interior
    (it is reattached as a leaf under the root, so it still receives
    once its link recovers).  Switching trees is O(1) at failure time —
    the whole point of precomputation.

``repair(unreachable)``
    Incremental in-place regraft: each orphan (live child of a dead
    node) is re-attached, in ascending ID order, to the live connected
    node with the smallest ``(fanout, id)``.  Candidates are restricted
    to the root or nodes with a *smaller* ID than the orphan, which
    preserves the paper's §5 deadlock-ordering rule by construction —
    and because every descendant of an orphan has a larger ID than the
    orphan, a regraft can never create a cycle.

Both paths still run the full feasibility check
(:func:`check_feasible`: structural validation **and** the ID-ordering
rule) on every produced tree — the invariant is enforced, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import TreeError
from repro.trees.base import SpanningTree
from repro.trees.builder import build_tree, check_deadlock_ordering

__all__ = ["Regraft", "RepairResult", "TreeManager", "check_feasible"]


def check_feasible(tree: SpanningTree) -> SpanningTree:
    """The hard feasibility gate every repaired/backup tree must pass.

    Structural validity (a tree: no cycles, no unreachable parents) is
    re-checked explicitly, and the §5 deadlock-ordering rule (non-root
    parents have smaller IDs than their children) must hold.  Returns
    the tree for call chaining; raises :class:`TreeError` otherwise.
    """
    tree.validate()
    check_deadlock_ordering(tree)
    return tree


@dataclass(frozen=True)
class Regraft:
    """One orphan's move: ``orphan`` left ``old_parent`` for ``new_parent``."""

    orphan: int
    old_parent: int
    new_parent: int


@dataclass(frozen=True)
class RepairResult:
    """A repaired tree plus the regrafts that produced it."""

    tree: SpanningTree
    regrafts: tuple[Regraft, ...]


class TreeManager:
    """Owns a multicast tree's lifecycle across topology failures.

    ``primary`` is the originally built tree; ``current`` is whatever
    the group is forwarding on right now.  All mutation goes through
    :meth:`repair` / :meth:`switch_to`, so every installed tree has
    passed :func:`check_feasible`.
    """

    def __init__(
        self,
        tree: SpanningTree,
        *,
        backup_shape: str = "binomial",
        precompute_backups: bool = False,
    ):
        self.primary = check_feasible(tree)
        self.current = tree
        self.backup_shape = backup_shape
        self._backups: dict[int, SpanningTree] = {}
        if precompute_backups:
            for node in tree.interior():
                self._backups[node] = self._build_backup(node)

    # -- backup trees ------------------------------------------------------
    def _build_backup(self, node: int) -> SpanningTree:
        """The alternate tree protecting against *node*'s death.

        Rebuilt over every destination except *node* (so no forwarding
        responsibility lands on it), with *node* reattached as a direct
        leaf of the root: when its link comes back, the root's
        retransmit window replays straight to it.
        """
        root = self.primary.root
        rest = [n for n in self.primary.nodes if n not in (root, node)]
        base = build_tree(root, rest, shape=self.backup_shape)
        children = dict(base.children)
        children[root] = children.get(root, ()) + (node,)
        return check_feasible(SpanningTree(root, children))

    def backup_for(self, node: int) -> SpanningTree | None:
        """The precomputed backup protecting *node* (``None`` for leaves
        of the primary or unknown nodes; built lazily if needed)."""
        if node in self._backups:
            return self._backups[node]
        if node not in self.primary.interior():
            return None
        backup = self._backups[node] = self._build_backup(node)
        return backup

    def switch_to(self, tree: SpanningTree) -> SpanningTree:
        """Install *tree* as current (after the feasibility gate)."""
        self.current = check_feasible(tree)
        return self.current

    # -- incremental repair ------------------------------------------------
    def repair(self, unreachable: Iterable[int]) -> RepairResult:
        """Regraft every orphan stranded by the *unreachable* nodes.

        Unreachable nodes stay in the tree as leaves (their old parent
        keeps retrying; when the fabric heals they catch up from the
        retransmit window) but lose their children, each of which is
        re-attached to a live connected candidate.  Deterministic: the
        same (tree, unreachable-set) input always yields the same
        repaired tree, which is what lets every shard of a partitioned
        run derive the repair independently.
        """
        cur = self.current
        node_set = set(cur.nodes)
        dead = {n for n in unreachable if n in node_set}
        if cur.root in dead:
            raise TreeError(
                f"root {cur.root} is unreachable — no repair can help"
            )
        if not dead:
            return RepairResult(cur, ())
        children: dict[int, list[int]] = {
            n: list(cur.children_of(n)) for n in node_set
        }
        parent = {c: p for p, kids in children.items() for c in kids}
        orphans = sorted(
            c for d in dead for c in children[d] if c not in dead
        )
        regrafts: list[Regraft] = []
        for orphan in orphans:
            connected = self._alive_connected(cur.root, children, dead)
            candidates = [
                n for n in connected if n == cur.root or n < orphan
            ]
            # The root is always alive-connected, so this never picks
            # from an empty pool.
            new_parent = min(
                candidates, key=lambda n: (len(children[n]), n)
            )
            old_parent = parent[orphan]
            children[old_parent].remove(orphan)
            children[new_parent].append(orphan)
            parent[orphan] = new_parent
            regrafts.append(Regraft(orphan, old_parent, new_parent))
        repaired = check_feasible(
            SpanningTree(
                cur.root,
                {n: tuple(kids) for n, kids in children.items() if kids},
            )
        )
        self.current = repaired
        return RepairResult(repaired, tuple(regrafts))

    @staticmethod
    def _alive_connected(
        root: int, children: dict[int, list[int]], dead: set[int]
    ) -> set[int]:
        """Nodes whose path to the root crosses no dead node."""
        out = {root}
        stack = [root]
        while stack:
            n = stack.pop()
            for c in children.get(n, ()):
                if c in dead:
                    continue
                out.add(c)
                stack.append(c)
        return out
