"""Host-side multicast group management and one-shot drivers.

Tree construction happens at the host; the host inserts each member's
local view into that member's NIC group table ("the host generates a
spanning tree and inserts it into a group table stored in the NIC", §5).

Two installation paths:

* :func:`install_group` — zero-cost preinstall before simulated time
  starts (GM-level experiments assume membership exists, as the paper's
  GM tests do);
* :func:`demand_install_group` — the MPI layer's demand-driven path: the
  root unicasts the tree to every member and waits for acknowledgments,
  paying the "cost of creating group membership" the paper describes for
  the first broadcast on a communicator.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Generator

from repro.mcast.group import CreateGroupCommand, local_views

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import Cluster
    from repro.trees.base import SpanningTree

__all__ = [
    "install_group",
    "demand_install_group",
    "nic_based_multicast",
    "multicast",
    "next_group_id",
    "run_scheme",
]

_group_ids = count(1)


def next_group_id() -> int:
    """A fresh unique multicast group identifier."""
    return next(_group_ids)


def install_group(
    cluster: "Cluster",
    group_id: int,
    tree: "SpanningTree",
    port_num: int = 0,
    family: str = "ack_window",
    params: dict | None = None,
) -> None:
    """Prepost *tree* into every member NIC's group table (zero cost).

    On a partitioned shard (a cluster built with ``local_nodes``) only
    the shard-local members' tables exist; the other shards install the
    same tree into theirs, so the union covers the whole group.
    ``family``/``params`` select the group's reliability engine
    (see :mod:`repro.proto.engines`).
    """
    is_local = getattr(cluster, "is_local", None)
    views = local_views(group_id, tree, port_num, family, params)
    for node_id, state in views.items():
        if is_local is not None and not is_local(node_id):
            continue
        cluster.node(node_id).mcast.install_group_now(state)
    m = cluster.sim.metrics
    if m is not None:
        m.set_gauge("mcast.group_depth", tree.max_depth)


def demand_install_group(
    cluster: "Cluster",
    group_id: int,
    tree: "SpanningTree",
    port_num: int = 0,
) -> Generator:
    """Root-driven installation paying realistic costs.

    The root installs its own view via a host command, then unicasts the
    tree description to every other member; each member posts a
    CreateGroupCommand on receipt and acks with a 0-byte message.  Driven
    from the root's host process: ``yield from demand_install_group(...)``.
    """
    views = local_views(group_id, tree, port_num)
    root = tree.root
    root_node = cluster.node(root)
    sim = cluster.sim
    yield sim.timeout(cluster.cost.host_send_post)
    root_node.nic.post_command(
        CreateGroupCommand(port=port_num, state=views[root])
    )
    members = [n for n in tree.nodes if n != root]
    acks_needed = len(members)

    # Member-side responder processes (modelling each member's MPI
    # library reacting to the membership message).
    def member_prog(node_id: int) -> Generator:
        port = cluster.port(node_id)
        completion = yield from port.receive()
        spec = completion.info["group_spec"]
        yield sim.timeout(cluster.cost.host_send_post)
        cluster.node(node_id).nic.post_command(
            CreateGroupCommand(port=port_num, state=spec)
        )
        handle = yield from port.send(root, 0)
        yield handle.done

    for node_id in members:
        sim.process(member_prog(node_id), name=f"grp_install[{node_id}]")

    root_port = cluster.port(root)
    handles = []
    for node_id in members:
        handle = yield from root_port.send(
            node_id, 64, info={"group_spec": views[node_id]}
        )
        handles.append(handle.done)
    for _ in range(acks_needed):
        yield from root_port.receive()
    yield sim.all_of(handles)


def nic_based_multicast(
    cluster: "Cluster",
    group_id: int,
    size: int,
    root: int,
    info: Any = None,
) -> Generator:
    """Root host program fragment: post one multisend, return the handle."""
    port = cluster.port(root)
    handle = yield from cluster.node(root).mcast.multicast_send(
        port, group_id, size, info=info
    )
    return handle


def multicast(
    cluster: "Cluster",
    tree: "SpanningTree",
    size: int,
    group_id: int | None = None,
    info: Any = None,
) -> dict[str, Any]:
    """One-shot NIC-based multicast: install, send, wait for delivery.

    Returns ``{"delivered": {node: time}, "send_complete": time}``.
    Convenience for tests and examples; experiment runners drive the
    lower-level pieces for iterated measurements.
    """
    gid = group_id if group_id is not None else next_group_id()
    install_group(cluster, gid, tree)
    delivered: dict[int, float] = {}
    result: dict[str, Any] = {"delivered": delivered}
    destinations = [n for n in tree.nodes if n != tree.root]

    def root_prog() -> Generator:
        handle = yield from nic_based_multicast(
            cluster, gid, size, tree.root, info=info
        )
        yield handle.done
        result["send_complete"] = cluster.sim.now

    def dest_prog(node_id: int) -> Generator:
        port = cluster.port(node_id)
        completion = yield from port.receive()
        assert completion.group == gid
        delivered[node_id] = cluster.sim.now
        result.setdefault("completions", {})[node_id] = completion

    procs = [cluster.spawn(root_prog(), name="mcast_root")]
    for node_id in destinations:
        procs.append(cluster.spawn(dest_prog(node_id), name=f"mcast_rx[{node_id}]"))
    cluster.run(until=cluster.sim.all_of(procs))
    return result


def run_scheme(
    cluster: "Cluster",
    scheme: str,
    tree: "SpanningTree",
    size: int,
) -> dict[str, Any]:
    """One-shot multicast under any registered scheme.

    ``scheme`` is a key from :mod:`repro.mcast.schemes` (``nic_based``,
    ``host_based``, ``nic_assisted``, ``fmmc``, ``lfc``, …).  Returns at
    least ``{"delivered": {node: …}}``; exact shape is scheme-defined.
    """
    # Imported lazily: the registry binds every scheme module, several
    # of which import this one.
    from repro.mcast.schemes import create_scheme

    return create_scheme(scheme, cluster, tree).run_once(size)
