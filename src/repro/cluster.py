"""The cluster façade: build a whole simulated system in one call.

>>> from repro.cluster import Cluster
>>> from repro.config import ClusterConfig
>>> cluster = Cluster(ClusterConfig(n_nodes=8))
>>> # drive host programs with cluster.spawn / cluster.run

The cluster owns the simulator, topology, network, and nodes, opens GM
port 0 on every node, and preposts receive tokens so experiments start
from the paper's steady state.

Partitioned execution (:mod:`repro.sim.parallel`) builds one cluster per
shard with ``local_nodes`` restricted to that shard: the topology is
replicated everywhere (routes must be derivable on any shard), but only
local NICs get :class:`~repro.host.node.Node` state, GM ports, and
network sinks — remote slots stay ``None``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.config import ClusterConfig
from repro.gm.api import GMPort
from repro.gm.tokens import ReceiveToken
from repro.host.node import Node
from repro.net.fabric import Network
from repro.net.failure import FailureInjector
from repro.net.fault import LossModel
from repro.net.topology import Topology, clos, line, single_switch
from repro.sim.engine import Simulator
from repro.sim.events import SimEvent
from repro.sim.process import Process

__all__ = ["Cluster", "build_topology"]


def build_topology(sim: Simulator, cfg: ClusterConfig) -> Topology:
    """The fabric a :class:`ClusterConfig` describes, on *sim*.

    Module-level so the partition planner can build a scratch replica
    (for shard assignment and lookahead) without paying for nodes,
    ports, or prepost tokens.
    """
    cost = cfg.cost
    args = (
        sim,
        cfg.n_nodes,
        cost.wire_bandwidth,
        cost.link_latency,
        cost.switch_hop_latency,
    )
    if cfg.topology == "single":
        return single_switch(*args)
    if cfg.topology == "clos":
        return clos(*args, radix=cfg.clos_radix)
    return line(*args)


class Cluster:
    """A complete simulated system (or one shard of one)."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        loss: LossModel | None = None,
        local_nodes: Iterable[int] | None = None,
    ):
        self.config = config or ClusterConfig()
        cfg = self.config
        self.cost = cfg.cost
        self.sim = Simulator(seed=cfg.seed, trace=cfg.trace)
        self.topology = build_topology(self.sim, cfg)
        if loss is None and cfg.loss is not None:
            # The declarative spec in the config (serializable scenarios);
            # an explicit model argument wins (tests with ScriptedLoss).
            loss = cfg.loss.build()
        self.network = Network(self.sim, self.topology, loss=loss)
        #: Topology-failure lifecycle (``None`` on the perfect fabric).
        #: Each shard of a partitioned run builds its own replica from
        #: the same spec and seed, so transitions land at identical
        #: instants everywhere without cross-shard control traffic.
        self.failures: FailureInjector | None = (
            FailureInjector(self.sim, self.topology, cfg.failures)
            if cfg.failures is not None and cfg.failures.kind != "none"
            else None
        )
        self._local: frozenset[int] | None = (
            None if local_nodes is None else frozenset(local_nodes)
        )
        self.nodes: list[Node | None] = [
            Node(self.sim, i, cfg.cost, self.network)
            if self._local is None or i in self._local
            else None
            for i in range(cfg.n_nodes)
        ]
        self.ports: list[GMPort | None] = [
            node.open_port(0) if node is not None else None
            for node in self.nodes
        ]
        for port in self.ports:
            if port is None:
                continue
            for _ in range(cfg.prepost_recv_tokens):
                port._recv_tokens.append(ReceiveToken(port.port_num))

    # -- convenience ----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def is_local(self, i: int) -> bool:
        """Whether node *i* has state on this (shard of a) cluster."""
        return self._local is None or i in self._local

    def node(self, i: int) -> Node:
        node = self.nodes[i]
        if node is None:
            raise LookupError(f"node {i} lives on another shard")
        return node

    def port(self, i: int) -> GMPort:
        port = self.ports[i]
        if port is None:
            raise LookupError(f"node {i} lives on another shard")
        return port

    def spawn(
        self, generator: Generator, name: str | None = None
    ) -> Process:
        """Start a host program (or any process) on the simulator."""
        return self.sim.process(generator, name=name)

    def spawn_on_all(
        self, make_program: Callable[[Node], Generator]
    ) -> list[Process]:
        """One process per (local) node, built by ``make_program(node)``."""
        return [
            self.spawn(make_program(node), name=f"prog[{node.id}]")
            for node in self.nodes
            if node is not None
        ]

    def run(self, until: float | SimEvent | None = None) -> Any:
        return self.sim.run(until=until)

    @property
    def now(self) -> float:
        return self.sim.now

    def __repr__(self) -> str:
        return (
            f"<Cluster n={self.n_nodes} topology={self.config.topology} "
            f"t={self.sim.now:.1f}us>"
        )
