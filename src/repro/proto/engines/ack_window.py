"""The paper's reliability family: cumulative ACK window + Go-back-N.

Receivers accept strictly in sequence and acknowledge cumulatively on
every accept; anything below the window is a duplicate (re-acked so a
lost ack cannot wedge the sender), anything above is dropped and
recovered by the sender's timeout sweep.  Every hook is a pure decision
or a single state write — zero simulated events — so the transport's
inline cost/ack sequence (and therefore the golden traces) is
byte-identical to the pre-refactor code.

This is the only family capable of driving GM *unicast*: the hooks only
touch ``recv_seq``, which a GM ``Connection`` has too.
"""

from __future__ import annotations

from typing import Any

from repro.proto.engines import EngineFamily, register_engine
from repro.proto.engines.base import ReceiverEngine, SenderEngine

__all__ = ["AckWindowReceiver", "AckWindowSender"]


class AckWindowReceiver(ReceiverEngine):
    """In-order accept, cumulative ack on every accept."""

    __slots__ = ()
    name = "ack_window"

    def classify(self, group: Any, h: Any) -> str:
        if h.seq <= group.recv_seq:
            return "duplicate"
        if h.seq != group.recv_seq + 1:
            return "drop"  # Go-back-N receivers drop and wait
        return "accept"

    def on_accept(self, group: Any, h: Any) -> None:
        group.recv_seq = h.seq

    # ack_after_accept: inherited True — ack every accepted packet.


class AckWindowSender(SenderEngine):
    """Sender side is entirely the transport's timeout sweep; every
    hook keeps its zero-event default."""

    __slots__ = ()
    name = "ack_window"


register_engine(EngineFamily(
    name="ack_window",
    title="Cumulative ACK window + Go-back-N (paper §4/§5)",
    sender_cls=AckWindowSender,
    receiver_cls=AckWindowReceiver,
    unicast=True,
))
