"""Shared benchmark helpers."""

import pytest


def run_once(benchmark, fn):
    """Run *fn* exactly once under the benchmark timer and return its
    result.  Simulation experiments are deterministic, so one round is
    both sufficient and honest (re-running would measure the same
    events)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _once(fn):
        return run_once(benchmark, fn)

    return _once
