"""NACK reliability: receiver-detected gaps, sender-multicast repairs.

Receivers accept out of order and track the set of sequences beyond the
contiguous prefix.  A gap (a hole in that set, or a message tail that
never arrived — detectable because every header carries its message
geometry) arms a **suppression timer** with seeded jitter: if the gap is
filled before the timer fires (a repair multicast triggered by a sibling
beat us to it, or an FEC reconstruction), the timer is cancelled and no
NACK is sent — that is what keeps 64 receivers missing the same packet
from imploding the parent with 64 simultaneous NACKs.  When the timer
does fire, the receiver reports every open gap to its parent in one
MCAST_NACK and re-arms (a lost NACK or lost repair must not strand the
gap).

The sender answers a gap report by **multicasting the repair**: the
record is re-sent to every child whose cumulative ack is below the gap,
not just the reporter.  Repeated NACKs for a sequence repaired within
``repair_suppression_us`` are counted and dropped (sender-side
suppression).  Retired records are regenerated through the engine
replay interface.

Cumulative acks still exist but become rare: a receiver acks at message
completion boundaries and on duplicates (exactly-once re-ack).  The
transport's fallback retransmission timer stays armed at a scaled
timeout — it is the only recovery when *everything* after a point is
lost at a child that therefore never sees evidence of a gap (e.g. a
mid-broadcast link failure severing the subtree).

Determinism under sharding: jitter draws come from the per-node named
stream ``nack.node<id>``, consumed only by this node's suppression
timers — identical across shard counts.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.proto.engines import EngineFamily, register_engine
from repro.proto.engines.base import ReceiverEngine, SenderEngine

__all__ = ["NackReceiver", "NackSender"]

#: Family tunables (group ``reliability_params`` override per key).
NACK_DEFAULTS = {
    #: base suppression delay before a detected gap is reported
    "nack_delay_us": 60.0,
    #: uniform jitter range added to the delay (implosion avoidance)
    "nack_jitter_us": 60.0,
    #: sender-side window: NACKs for a seq repaired more recently than
    #: this are suppressed, not re-repaired
    "repair_suppression_us": 120.0,
    #: fallback retransmission timer = ack_timeout * this scale
    "fallback_timeout_scale": 4.0,
    #: a tail gap is overdue after this many observed inter-arrival
    #: gaps of silence (replica chains stretch spacing with fan-out, so
    #: the quiescence clock adapts instead of hardcoding)
    "tail_spacing_factor": 4.0,
    #: extra suppression delay per hop of tree depth below the first
    #: non-root level: a gap at a deep receiver is usually an upstream
    #: loss already being repaired, and the repair cascades down at
    #: roughly one hop per forwarding latency — only the node just
    #: below the lossy link should actually NACK
    "depth_scale_us": 20.0,
}


class NackReceiver(ReceiverEngine):
    """Out-of-order accept; gap detection; jittered NACK emission."""

    __slots__ = ()
    name = "nack"

    # -- classification ----------------------------------------------------
    def classify(self, group: Any, h: Any) -> str:
        if h.seq <= group.recv_seq:
            return "duplicate"
        if h.seq in self.state(group).get("r_received", ()):
            return "duplicate"
        return "accept"

    def on_accept(self, group: Any, h: Any) -> None:
        st = self.state(group)
        now = self.transport.sim.now
        last = st.get("r_last_arrival")
        if last is not None and now > last:
            gap = now - last
            ewma = st.get("r_gap_ewma")
            st["r_gap_ewma"] = (
                gap if ewma is None else 0.75 * ewma + 0.25 * gap
            )
        st["r_last_arrival"] = now
        received = st.setdefault("r_received", set())
        if h.seq < max(received, default=group.recv_seq):
            # A hole filled: repair progress, so the NACK backoff clock
            # restarts (remaining gaps are being worked on).
            st["r_nack_backoff"] = 0
        received.add(h.seq)
        # Advance the contiguous prefix and prune behind it.
        nxt = group.recv_seq + 1
        while nxt in received:
            received.discard(nxt)
            group.recv_seq = nxt
            nxt += 1
        # Message geometry from *any* chunk: the first seq of the
        # message is h.seq - h.chunk, so a lost tail is a detectable gap
        # as soon as any packet of the message arrives.  (The in-order
        # family records msg_meta at chunk 0 only; out-of-order accept
        # cannot rely on chunk 0 arriving first.)
        base = h.seq - h.chunk
        group.msg_meta.setdefault(
            h.msg_id, (base, h.nchunks, h.msg_size, h.trace_id)
        )
        st.setdefault("r_ends", set()).add(base + h.nchunks - 1)
        self._update_nack_timer(group, st)

    def ack_after_accept(self, group: Any, h: Any) -> bool:
        # Ack only when the contiguous prefix crosses a message-end
        # boundary — that is when the parent can retire records.
        st = self.state(group)
        ends = st.get("r_ends")
        if not ends:
            return False
        done = [e for e in ends if e <= group.recv_seq]
        if not done:
            return False
        ends.difference_update(done)
        return True

    # -- gap detection and the suppression timer ---------------------------
    def _gaps(self, group: Any, st: dict) -> list[int]:
        """Open gaps: every missing seq up to the highest evidence of
        transmitted data (received packets or known message ends)."""
        received = st.get("r_received", ())
        hi = max(received, default=group.recv_seq)
        for end in st.get("r_ends", ()):
            if end > hi:
                hi = end
        return [
            seq for seq in range(group.recv_seq + 1, hi + 1)
            if seq not in received
        ]

    def _update_nack_timer(self, group: Any, st: dict) -> None:
        """Arm the suppression timer when gaps open; cancel when they
        close before firing (the NACK that never needed sending).

        A **hole** (a missing seq below one we received) is definite
        loss evidence: the timer runs from first detection.  A **tail**
        gap (the message end is known but packets beyond the highest
        received seq are absent) may just be data in flight, so the
        quiescence clock restarts on every accept — a tail NACK fires
        only after delay+jitter of silence.
        """
        timer = st.get("r_nack_timer")
        received = st.get("r_received", ())
        hi_data = max(received, default=group.recv_seq)
        hole = any(
            seq not in received
            for seq in range(group.recv_seq + 1, hi_data)
        )
        tail = any(end > hi_data for end in st.get("r_ends", ()))
        if hole:
            if timer is None:
                self._arm_nack_timer(group, st)
        elif tail:
            if timer is not None:
                timer.cancel()
            self._arm_nack_timer(group, st, tail=True)
        elif timer is not None:
            timer.cancel()
            st["r_nack_timer"] = None

    def _arm_nack_timer(
        self, group: Any, st: dict, tail: bool = False
    ) -> None:
        t = self.transport
        delay = self.param(group, "nack_delay_us")
        depth = getattr(group, "depth", 1)
        if depth > 1:
            # Hierarchical suppression: the deeper this receiver, the
            # longer an upstream repair takes to cascade to it — and
            # the likelier its gap is a shared upstream loss some
            # ancestor is already NACKing.
            delay += self.param(group, "depth_scale_us") * (depth - 1)
        if tail:
            # In-flight data is only "overdue" relative to the spacing
            # this receiver actually sees — replica chains stretch it
            # by the sender's fan-out, so a fixed delay would NACK
            # packets still on the wire at every wide node.
            spacing = st.get("r_gap_ewma")
            if spacing is None or spacing < delay:
                spacing = delay
            delay += self.param(group, "tail_spacing_factor") * spacing
        # Exponential backoff per consecutive unproductive fire: a
        # repair cascading hop-by-hop from a distant ancestor can take
        # many round trips' worth of time; re-NACKing every base delay
        # until it lands is pure chatter.
        delay *= 1 << min(st.get("r_nack_backoff", 0), 5)
        jitter = self.param(group, "nack_jitter_us")
        if jitter:
            delay += t.sim.rng(f"nack.node{t.nic.id}").random() * jitter
        st["r_nack_timer"] = t.sim.schedule_timer(
            t.sim.now + delay, lambda group=group: self._nack_fire(group)
        )

    def _nack_fire(self, group: Any) -> None:
        st = self.state(group)
        st["r_nack_timer"] = None
        gaps = self._gaps(group, st)
        if not gaps or group.parent is None:
            return
        # Local repair first (the FEC family cashes held parity here —
        # an overdue tail loss reconstructs with no round trip at all).
        gaps = self._repair_from_parity(group, st, gaps)
        gaps = self._defer_gaps(group, st, gaps)
        t = self.transport
        if gaps:
            t.sim.process(
                self._send_nack(group, gaps), name=f"{t.nic.name}.nack"
            )
        # Re-arm: a lost NACK, lost repair, or in-flight reconstruction
        # must not strand the gap.  Each consecutive fire backs the
        # timer off; any hole-filling arrival resets it.
        st["r_nack_backoff"] = st.get("r_nack_backoff", 0) + 1
        self._arm_nack_timer(group, st)

    def _repair_from_parity(
        self, group: Any, st: dict, gaps: list[int]
    ) -> list[int]:
        """Hook: repair overdue gaps locally before NACKing (the plain
        NACK family has nothing to repair from)."""
        return gaps

    def _defer_gaps(
        self, group: Any, st: dict, gaps: list[int]
    ) -> list[int]:
        """Hook: hold some gaps back for one more timer cycle (the FEC
        family waits out the parity that usually makes a NACK moot)."""
        return gaps

    def _send_nack(self, group: Any, gaps: list[int]) -> Generator:
        t = self.transport
        m = t.sim.metrics
        if m is not None:
            m.inc("proto.nack_sent")
        t.sim.record(
            t.nic.name, "mcast_nack", gaps=tuple(gaps), parent=group.parent
        )
        yield from t.send_nack(group, gaps)

    # -- parity (ignored by the plain NACK family) -------------------------
    # on_parity: inherited drop.


class NackSender(SenderEngine):
    """Repair multicast on gap reports, with sender-side suppression."""

    __slots__ = ()
    name = "nack"

    def on_nack(self, group: Any, pkt: Any) -> Generator:
        t = self.transport
        m = t.sim.metrics
        now = t.sim.now
        child = pkt.header.src
        window_us = self.param(group, "repair_suppression_us")
        st = self.state(group)
        received = st.get("r_received", ())
        repaired = st.setdefault("s_repaired", {})
        for seq in pkt.header.info.get("gaps", ()):
            if group.child_acked.get(child, 0) >= seq:
                continue  # stale: the child's own ack overtook the NACK
            if (
                group.parent is not None
                and seq > group.recv_seq
                and seq not in received
            ):
                # An intermediate can only repair data it holds.  The
                # child is served when this node's own gap fills and
                # the packet forwards naturally.
                continue
            last = repaired.get(seq)
            if last is not None and now - last < window_us:
                if m is not None:
                    m.inc("proto.nack_suppressed")
                continue
            record = self.record_for_replay(group, seq)
            if record is None:
                continue
            repaired[seq] = now
            if m is not None:
                m.inc("proto.nack_repairs")
            # Multicast the repair: every laggard child gets it, so one
            # child's NACK suppresses its siblings' (their gap closes
            # before their jittered timers fire).
            for c in group.children:
                if group.child_acked.get(c, 0) >= seq:
                    continue
                record.unacked.add(c)
                t.arm(group, record)
                yield from t.retransmit(group, record, c)

    def fallback_timeout(self, group: Any, cost: Any) -> float:
        return cost.ack_timeout * self.param(group, "fallback_timeout_scale")


register_engine(EngineFamily(
    name="nack",
    title="Receiver-driven NACK with suppression; sender repairs by multicast",
    sender_cls=NackSender,
    receiver_cls=NackReceiver,
    defaults=dict(NACK_DEFAULTS),
))
