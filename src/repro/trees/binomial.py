"""The binomial broadcast tree (MPICH's host-based algorithm).

In a binomial broadcast over ranks ``0..p-1`` relative to the root, each
rank receives from ``relrank - 2**j`` (where ``2**j`` is the lowest set
bit of its relative rank) and sends to ``relrank + 2**j`` for each ``j``
above its own lowest set bit, largest subtree first.  This is the tree
the traditional host-based multicast uses (paper §6.1: "the same size
binomial tree used in the traditional host-based multicast").
"""

from __future__ import annotations

from typing import Sequence

from repro.trees.base import SpanningTree
from repro.trees.shapes import _check_members

__all__ = ["binomial_tree"]


def binomial_tree(root: int, destinations: Sequence[int]) -> SpanningTree:
    """Binomial tree over ``[root] + destinations`` in the given order.

    Positions in the concatenated list act as relative ranks; the caller
    controls the node order (experiments use ID-sorted destinations, as
    the paper's deadlock rule requires).
    """
    dests = _check_members(root, destinations)
    members = [root] + dests
    p = len(members)
    children: dict[int, list[int]] = {m: [] for m in members}
    for relrank in range(1, p):
        lowbit = relrank & (-relrank)
        parent_rel = relrank - lowbit
        children[members[parent_rel]].append(members[relrank])
    # Largest subtree first: a child at distance 2**j from its parent
    # roots a subtree of up to 2**j nodes, so send to the farthest child
    # first (MPICH sends in decreasing subtree order).
    ordered: dict[int, tuple[int, ...]] = {}
    index = {m: i for i, m in enumerate(members)}
    for node, kids in children.items():
        if kids:
            ordered[node] = tuple(
                sorted(kids, key=lambda c: index[c], reverse=True)
            )
    return SpanningTree(root=root, children=ordered)
