"""Documentation consistency: the docs reference things that exist."""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "docs/protocol.md", "docs/architecture.md"):
        assert (REPO / name).is_file(), name


def test_design_lists_every_figure_bench():
    design = (REPO / "DESIGN.md").read_text()
    for bench in sorted((REPO / "benchmarks").glob("test_fig*.py")):
        assert bench.name in design, bench.name


def test_readme_examples_exist():
    readme = (REPO / "README.md").read_text()
    for script in re.findall(r"`(\w+\.py)`", readme):
        assert (REPO / "examples" / script).is_file(), script


def test_experiments_md_covers_all_figures():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for fig in range(1, 8):
        assert f"Fig. {fig}" in text or f"fig{fig}" in text, fig


def test_design_modules_exist():
    """Every module path named in DESIGN.md's inventory tree exists."""
    design = (REPO / "DESIGN.md").read_text()
    tree = design.split("```")[1]
    for line in tree.splitlines():
        entry = line.strip().split()[0] if line.strip() else ""
        if entry.endswith(".py"):
            indent = len(line) - len(line.lstrip())
            # Resolve nested paths by scanning known package dirs.
            matches = list((REPO / "src").rglob(entry))
            assert matches, f"DESIGN.md names missing module {entry}"


def test_paper_headline_numbers_in_experiments():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for headline in ("2.05", "1.48", "1.86", "2.02", "5.82"):
        assert headline in text, headline
