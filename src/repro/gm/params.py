"""The cost model: every timing constant in the simulated stack.

All times are microseconds, all bandwidths bytes/µs.  The default preset
:meth:`GMCostModel.lanai9` is calibrated to the paper's testbed — 16
quad-SMP 700 MHz Pentium-III nodes, 66 MHz/64-bit PCI, Myrinet-2000 NICs
with 133 MHz LANai 9.1 processors, GM 2.0 alpha1 — so that the simulated
GM unicast half-round-trip for small messages lands near the ~7 µs the
hardware delivered, host overhead stays under 1 µs (paper §5), and the
LANai's per-request processing dominates small-message multisend exactly
as the paper's Figure 3 requires.

Calibration notes (see EXPERIMENTS.md for the resulting curves):

* ``wire_bandwidth`` 200 B/µs is Myrinet-2000's 2 Gb/s line rate minus
  per-packet gaps/route/CRC overhead — the payload rate GM measured.
* ``pci_bandwidth`` (host→NIC reads, 210 B/µs) sits just above the wire
  so the *wire* bottlenecks large sends on both schemes — that is what
  lets host-based multiple unicasts catch back up to the NIC multisend
  at 16 KB (Fig. 3b levels off around 1).  ``pci_write_bandwidth``
  (NIC→host, 155 B/µs) is slower, as on real chipsets of the era; the
  double PCI crossing is what makes host-based *forwarding* expensive.
* The LANai costs are instruction-path-length estimates at 7.5 ns/insn:
  a host command fetch plus send-token translation is a few hundred
  instructions (~3 µs), while a descriptor-callback header rewrite is a
  few dozen (~0.4 µs) — that gap *is* the multisend win.  Forwarding
  also stages each packet through SRAM on the NIC's copy engine at
  ``nic_sram_copy_bandwidth``; the copies pipeline across the packets of
  a long message but a single-packet 2-4 KB message eats the full copy
  latency (the Fig. 5b dip).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigError

__all__ = ["GMCostModel"]


@dataclass(frozen=True)
class GMCostModel:
    """Timing and sizing constants for the whole stack (µs, bytes, B/µs)."""

    # -- wire ---------------------------------------------------------------
    #: Effective link data rate in bytes/µs.  Myrinet-2000's line rate
    #: is 2 Gb/s = 250 B/µs; per-packet gaps, route bytes and CRC stalls
    #: put GM's measured payload rate near 200 B/µs, which is what the
    #: protocols (and the paper's latency curves) actually see.
    wire_bandwidth: float = 200.0
    #: Cable propagation per link, µs.
    link_latency: float = 0.1
    #: Crossbar head-routing delay per switch, µs.
    switch_hop_latency: float = 0.3
    #: Maximum packet payload, bytes (GM: 4096).
    mtu: int = 4096

    # -- PCI / DMA ------------------------------------------------------------
    #: Effective host→NIC DMA rate over PCI (PCI reads, the send path),
    #: bytes/µs.  66 MHz/64-bit PCI bursts at 528 MB/s but GM-era
    #: effective rates sat near the wire rate; keeping this slightly
    #: above the wire makes the wire the large-message bottleneck for
    #: sends, so host-based multiple unicasts catch the multisend at
    #: 16 KB (Fig. 3b).
    pci_bandwidth: float = 210.0
    #: Effective NIC→host DMA rate (PCI writes, the receive path),
    #: bytes/µs.  Slower than reads on this era's chipsets; it penalizes
    #: the *host-based* forwarding path (which must land the message in
    #: host memory before resending) but not NIC-based forwarding, whose
    #: host copy is off the critical path (Fig. 5b's 16 KB gap).
    pci_write_bandwidth: float = 155.0
    #: Fixed cost to start one DMA transaction, µs.
    dma_startup: float = 0.6

    # -- host ---------------------------------------------------------------
    #: Host cost to post a send event to the NIC (PIO write), µs.
    host_send_post: float = 0.3
    #: Host cost to post a receive buffer, µs.
    host_recv_post: float = 0.2
    #: Host cost to pick a completion event off the event queue, µs.
    host_event_dispatch: float = 0.5
    #: MPI-layer bookkeeping per collective call on each host, µs
    #: (MPICH request setup, communicator checks, progress-engine entry).
    host_mpi_overhead: float = 4.0
    #: Host memcpy rate (eager-protocol copy to the user buffer), B/µs.
    host_memcpy_bandwidth: float = 700.0
    #: Fixed memcpy startup, µs.
    host_memcpy_startup: float = 0.3
    #: Host cost to register one memory region with the NIC, µs.
    host_register_cost: float = 2.0

    # -- LANai processing (133 MHz processor) --------------------------------
    #: Fetch and decode one host command from the event queue — paid per
    #: host request, so k host-based unicasts pay it k times while one
    #: multisend pays it once.
    nic_command_fetch: float = 1.0
    #: Translate a host send event into a send token and set up the first
    #: DMA — the *per-request* cost host-based multiple unicasts repeat.
    nic_send_token_processing: float = 2.0
    #: Per-packet send setup (sequence number, send record, queue), µs.
    nic_per_packet_send: float = 0.5
    #: Per received data packet (CRC check, seq check, token match), µs.
    nic_recv_processing: float = 1.0
    #: Per received ACK (record teardown), µs.
    nic_ack_processing: float = 0.35
    #: Build and queue an ACK packet, µs.
    nic_ack_generation: float = 0.3
    #: Descriptor-callback header rewrite to retarget a replica, µs —
    #: the *per-replica* cost of the NIC-based multisend.
    nic_header_rewrite: float = 0.4
    #: Multicast group-table lookup when forwarding, µs.
    nic_group_lookup: float = 0.3
    #: Fixed per-packet forwarding work at an intermediate NIC (receive-
    #: token transformation, per-child send-record setup, re-queue), µs.
    nic_forward_processing: float = 1.5
    #: LANai-speed SRAM staging of a forwarded packet between the receive
    #: and transmit rings, bytes/µs.  This is what keeps the 133 MHz NIC
    #: from forwarding large packets at wire speed and produces the
    #: paper's modest improvement for single-packet 2-4 KB messages.
    nic_sram_copy_bandwidth: float = 190.0
    #: DMA a completion-event record up to the host, µs (small, fixed).
    nic_event_post: float = 0.4
    #: Combine one child's contribution in a NIC-based reduction, µs
    #: (extension: the paper's future-work collectives).
    nic_reduce_combine: float = 0.5
    #: The paper's *third* multisend alternative (§5): rewrite the next
    #: replica's header while the transmit DMA engine is still draining
    #: the current one, hiding ``nic_header_rewrite`` entirely.  The
    #: paper implements alternative two (descriptor callbacks) and
    #: leaves this "for later research"; enable it for the ablation.
    multisend_inline_rewrite: bool = False

    # -- reliability ----------------------------------------------------------
    #: Retransmission timeout, µs.  (Real GM used ~50 ms; scaled down so
    #: loss tests converge quickly without affecting loss-free runs.)
    ack_timeout: float = 400.0
    #: Give up after this many retransmissions of one packet.
    max_retransmits: int = 50

    # -- resources -------------------------------------------------------------
    #: Send tokens per port (host-side send descriptors).
    send_tokens_per_port: int = 64
    #: Receive tokens per port (preposted host receive buffers).
    recv_tokens_per_port: int = 64
    #: NIC SRAM send packet buffers (MTU-sized).
    nic_send_buffers: int = 16
    #: NIC SRAM receive packet buffers (MTU-sized).
    nic_recv_buffers: int = 16

    # -- MPI (MPICH-GM 1.2.4..8a constants) -----------------------------------
    #: Largest eager-mode message, bytes (paper §6.2: 16,287).
    mpi_eager_max: int = 16287
    #: Rendezvous threshold, bytes (paper §5: "larger than 16K").
    mpi_rendezvous_threshold: int = 16384

    def __post_init__(self) -> None:
        for attr in (
            "wire_bandwidth",
            "pci_bandwidth",
            "pci_write_bandwidth",
            "host_memcpy_bandwidth",
            "nic_sram_copy_bandwidth",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")
        for attr in ("mtu", "send_tokens_per_port", "recv_tokens_per_port",
                     "nic_send_buffers", "nic_recv_buffers"):
            if getattr(self, attr) < 1:
                raise ConfigError(f"{attr} must be >= 1")
        if self.ack_timeout <= 0:
            raise ConfigError("ack_timeout must be positive")

    # -- presets ---------------------------------------------------------------
    @classmethod
    def lanai9(cls, **overrides: Any) -> "GMCostModel":
        """The paper's testbed (default values), with optional overrides."""
        return cls(**overrides)

    @classmethod
    def fast_host(cls, **overrides: Any) -> "GMCostModel":
        """A hypothetical faster host (halved host costs) — for ablations."""
        base = dict(
            host_send_post=0.15,
            host_recv_post=0.1,
            host_event_dispatch=0.25,
            host_mpi_overhead=0.4,
            host_memcpy_bandwidth=1400.0,
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def slow_nic(cls, **overrides: Any) -> "GMCostModel":
        """A hypothetical slower LANai (doubled NIC costs) — for ablations."""
        base = dict(
            nic_send_token_processing=4.0,
            nic_per_packet_send=1.0,
            nic_recv_processing=2.0,
            nic_ack_processing=0.7,
            nic_ack_generation=0.6,
            nic_header_rewrite=0.8,
            nic_group_lookup=0.6,
            nic_event_post=0.8,
        )
        base.update(overrides)
        return cls(**base)

    def with_overrides(self, **overrides: Any) -> "GMCostModel":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    # -- derived quantities -------------------------------------------------------
    def wire_time(self, wire_size: int) -> float:
        """Serialization time of *wire_size* bytes on one link."""
        return wire_size / self.wire_bandwidth

    def dma_time(self, nbytes: int) -> float:
        """One host→NIC DMA transaction of *nbytes* (PCI read)."""
        return self.dma_startup + nbytes / self.pci_bandwidth

    def dma_write_time(self, nbytes: int) -> float:
        """One NIC→host DMA transaction of *nbytes* (PCI write)."""
        return self.dma_startup + nbytes / self.pci_write_bandwidth

    def memcpy_time(self, nbytes: int) -> float:
        """Host memcpy of *nbytes*."""
        return self.host_memcpy_startup + nbytes / self.host_memcpy_bandwidth
