"""Dissemination barrier.

In round k, rank r sends to ``(r + 2**k) % size`` and waits for the
message from ``(r - 2**k) % size``; after ``ceil(log2(size))`` rounds
every rank has transitively heard from every other.  Tags carry the
barrier epoch and round so overlapping epochs cannot be confused.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import RankContext

__all__ = ["barrier", "dissemination_rounds"]

#: Base of the reserved tag space for barrier traffic.
_BARRIER_TAG_BASE = -1_000_000


def dissemination_rounds(size: int) -> int:
    """ceil(log2(size)) — rounds needed for *size* ranks."""
    if size < 1:
        raise ValueError("size must be >= 1")
    return (size - 1).bit_length()


def _tag(epoch: int, round_no: int) -> int:
    return _BARRIER_TAG_BASE - (epoch * 64 + round_no)


def barrier(ctx: "RankContext", epoch: int) -> Generator:
    size = ctx.comm.size
    if size == 1:
        return
    yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
    for k in range(dissemination_rounds(size)):
        to = (ctx.rank + (1 << k)) % size
        frm = (ctx.rank - (1 << k)) % size
        yield from ctx.send(to, 0, tag=_tag(epoch, k))
        yield from ctx.recv(source=frm, tag=_tag(epoch, k))
