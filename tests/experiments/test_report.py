"""Unit tests for the experiment result containers and rendering."""

import pytest

from repro.experiments.report import FigureResult, Series, render_table


class TestSeries:
    def test_add_and_access(self):
        s = Series("lat")
        s.add(1, 10.0)
        s.add(4, 20.0)
        assert s.xs() == [1, 4]
        assert s.ys() == [10.0, 20.0]
        assert s.y_at(4) == 20.0

    def test_missing_x_raises(self):
        s = Series("lat")
        with pytest.raises(KeyError):
            s.y_at(7)


class TestFigureResult:
    def make(self):
        result = FigureResult(figure_id="figX", title="demo")
        a, b = Series("A"), Series("B")
        for x in (1, 2):
            a.add(x, x * 1.0)
            b.add(x, x * 2.0)
        b.add(3, 6.0)  # ragged
        result.series = [a, b]
        result.headlines["peak"] = 6.0
        result.notes.append("a note")
        return result

    def test_get_series(self):
        result = self.make()
        assert result.get("A").label == "A"
        with pytest.raises(KeyError):
            result.get("missing")

    def test_table_handles_ragged_series(self):
        table = self.make().table()
        assert "-" in table  # the missing A@3 cell
        lines = table.splitlines()
        assert len(lines) == 2 + 3  # header + rule + three x rows

    def test_render_includes_everything(self):
        text = self.make().render()
        assert "figX" in text
        assert "peak: 6.00" in text
        assert "note: a note" in text


def test_render_table_alignment():
    out = render_table(["col", "x"], [["a", "1"], ["bbbb", "22"]])
    lines = out.splitlines()
    assert len(lines) == 4
    # every row has the same width
    assert len({len(l) for l in lines}) == 1
