"""Figure 4: MPI-level broadcast, NIC-based vs host-based MPICH-GM.

Paper headlines: improvement up to 2.02× for 8 KB messages over 16
nodes; similar trend to the GM level; a dip at 16,287 bytes (the
largest eager message) from the final-copy cost.
"""

from __future__ import annotations

from repro.experiments.parallel import run_grid
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.scenario import (
    MPI_SIZES,
    QUICK_SIZES,
    ScenarioGrid,
    mpi_bcast_point,
)

__all__ = ["run", "NODE_COUNTS"]

NODE_COUNTS = (4, 8, 16)


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    sizes: list[int] | None = None,
    node_counts: tuple[int, ...] = NODE_COUNTS,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    sizes = sizes or (QUICK_SIZES["mpi_bcast"] if quick else MPI_SIZES)
    iterations = 6 if quick else 20
    result = FigureResult(
        figure_id="fig4",
        title="MPI-level broadcast latency (µs) and improvement factor",
    )
    lat = {
        (scheme, n): Series(label=f"{scheme}-{n}")
        for scheme in ("HB", "NB")
        for n in node_counts
    }
    imp = {n: Series(label=f"factor-{n}") for n in node_counts}
    grid = ScenarioGrid("fig4")
    for size in sizes:
        for n in node_counts:
            for scheme in ("HB", "NB"):
                grid.add(
                    (scheme, n, size),
                    mpi_bcast_point(
                        n, size, nic=(scheme == "NB"),
                        iterations=iterations, cost=cost,
                    ),
                    label=f"fig4[{scheme},n={n},size={size}]",
                )
    values = run_grid(grid, jobs=jobs)
    for size in sizes:
        for n in node_counts:
            hb, nb = values[("HB", n, size)], values[("NB", n, size)]
            lat[("HB", n)].add(size, hb)
            lat[("NB", n)].add(size, nb)
            imp[n].add(size, hb / nb)
    result.series = [lat[("HB", n)] for n in node_counts]
    result.series += [lat[("NB", n)] for n in node_counts]
    result.series += [imp[n] for n in node_counts]
    if 16 in node_counts and 8192 in sizes:
        result.headlines["factor, 16 ranks, 8KB (paper: 2.02)"] = imp[
            16
        ].y_at(8192)
    if 16 in node_counts:
        small = [s for s in sizes if s <= 512]
        result.headlines["max factor, 16 ranks, <=512B (paper: 1.78)"] = max(
            imp[16].y_at(s) for s in small
        )
        if 16287 in sizes and 8192 in sizes:
            result.headlines[
                "factor drop 8KB -> 16287B (paper: dip present)"
            ] = imp[16].y_at(8192) - imp[16].y_at(16287)
    result.notes.append(
        "one iteration = barrier, then root bcast entry to last rank "
        "exit + measured 0-byte ack; first (group-creating) broadcast "
        "excluded as warmup, as in the paper's demand-driven design"
    )
    return result
