#!/usr/bin/env python3
"""Tree explorer: how the optimal multicast tree changes with size.

The Bar-Noy/Kipnis postal-model tree adapts its fan-out to the message
size: small messages get wide, shallow trees (replicas are almost free),
single-packet kilobyte messages get binomial-like trees, and long
pipelined messages get narrow, deep ones.  This script prints the tree
for several sizes, the model's predicted completion time, and the
simulated latency for each shape.

Run:  python examples/tree_explorer.py
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.gm.params import GMCostModel
from repro.mcast import multicast
from repro.trees import (
    build_tree,
    postal_completion_time,
    postal_params,
    tree_stats,
)


def render_tree(tree, node=None, depth=0):
    node = tree.root if node is None else node
    lines = ["  " * depth + f"{node}"]
    for child in tree.children_of(node):
        lines.extend(render_tree(tree, child, depth + 1))
    return lines


def main() -> None:
    cost = GMCostModel()
    n = 16
    print(f"optimal multicast trees, {n} nodes, varying message size\n")
    for size in (4, 512, 4096, 16384):
        params = postal_params(cost, size, scheme="nic")
        tree = build_tree(0, range(1, n), shape="optimal",
                          cost=cost, size=size)
        stats = tree_stats(tree)
        predicted = postal_completion_time(tree, params)
        cluster = Cluster(ClusterConfig(n_nodes=n))
        simulated = max(multicast(cluster, tree, size)["delivered"].values())
        print(f"== {size} bytes: fan-out ratio {params.fanout_ratio:.2f} "
              f"(L={params.l_ready:.1f}us, g={params.gap:.1f}us)")
        print(f"   depth {stats.depth}, root fan-out {stats.root_fanout}, "
              f"mean fan-out {stats.mean_fanout:.1f}")
        print(f"   model-predicted completion {predicted:.1f} us, "
              f"simulated {simulated:.1f} us")
        for line in render_tree(tree):
            print("   " + line)
        print()

    print("shape comparison at 16 KB (simulated latency):")
    for shape in ("optimal", "binomial", "chain", "flat"):
        tree = build_tree(0, range(1, n), shape=shape, cost=cost, size=16384)
        cluster = Cluster(ClusterConfig(n_nodes=n))
        lat = max(multicast(cluster, tree, 16384)["delivered"].values())
        print(f"  {shape:9s} depth={tree_stats(tree).depth:2d}  {lat:8.1f} us")


if __name__ == "__main__":
    main()
