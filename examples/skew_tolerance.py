#!/usr/bin/env python3
"""Process-skew tolerance (the paper's §6.3 headline).

Skewed processes reach MPI_Bcast at different times.  With the
host-based broadcast, a delayed intermediate process stalls its whole
subtree; with the NIC-based broadcast, the NIC forwards regardless of
what the host process is doing.  This script sweeps the skew and prints
the mean host CPU time spent inside MPI_Bcast for both schemes.

Run:  python examples/skew_tolerance.py
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mpi import Communicator, run_skew_experiment


def point(n, nic, max_skew, size=4):
    cluster = Cluster(ClusterConfig(n_nodes=n, seed=3))
    comm = Communicator(cluster, nic_bcast=nic)
    return run_skew_experiment(
        comm, size=size, max_skew=max_skew, iterations=20, warmup=3
    )


def main() -> None:
    n, size = 16, 4
    print(f"MPI_Bcast host CPU time vs process skew "
          f"({n} ranks, {size}-byte broadcasts)\n")
    print(f"{'mean skew':>10} {'host-based':>12} {'NIC-based':>12} {'factor':>8}")
    for max_skew in (0.0, 400.0, 800.0, 1600.0, 3200.0):
        hb = point(n, False, max_skew, size)
        nb = point(n, True, max_skew, size)
        factor = hb.mean_bcast_cpu_time / nb.mean_bcast_cpu_time
        print(f"{hb.mean_applied_skew:9.0f}u {hb.mean_bcast_cpu_time:11.1f}u "
              f"{nb.mean_bcast_cpu_time:11.1f}u {factor:8.2f}")
    print("\nhost-based CPU time grows with skew (ancestors gate their")
    print("subtrees); NIC-based stays flat — the NICs forward on their own.")


if __name__ == "__main__":
    main()
