"""Unit tests for the crossbar switch structure and link validation."""

import pytest

from repro.net.link import Link
from repro.net.switch import CrossbarSwitch, PortRef
from repro.sim import Simulator


class TestCrossbarSwitch:
    def test_construction(self):
        sw = CrossbarSwitch(0, radix=16, hop_latency=0.3)
        assert sw.radix == 16
        assert sw.ports_used == 0
        assert len(sw.free_ports) == 16

    def test_radix_validated(self):
        with pytest.raises(ValueError):
            CrossbarSwitch(0, radix=1, hop_latency=0.3)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            CrossbarSwitch(0, radix=4, hop_latency=-1.0)

    def test_attach_and_peer(self):
        sw = CrossbarSwitch(0, radix=4, hop_latency=0.3)
        sw.attach(2, PortRef(7, 0))
        assert sw.peer(2) == PortRef(7, 0)
        assert sw.ports_used == 1
        assert 2 not in sw.free_ports

    def test_attach_out_of_range(self):
        sw = CrossbarSwitch(0, radix=4, hop_latency=0.3)
        with pytest.raises(ValueError):
            sw.attach(4, PortRef(0, 0))

    def test_attach_twice_rejected(self):
        sw = CrossbarSwitch(0, radix=4, hop_latency=0.3)
        sw.attach(0, PortRef(1, 0))
        with pytest.raises(ValueError):
            sw.attach(0, PortRef(2, 0))

    def test_switch_to_switch_wiring(self):
        a = CrossbarSwitch(0, radix=4, hop_latency=0.3)
        b = CrossbarSwitch(1, radix=4, hop_latency=0.3)
        a.attach(0, PortRef(b, 0))
        b.attach(0, PortRef(a, 0))
        assert a.peer(0).device is b
        assert b.peer(0).device is a

    def test_peers_snapshot(self):
        sw = CrossbarSwitch(0, radix=4, hop_latency=0.3)
        sw.attach(1, PortRef(9, 0))
        peers = sw.peers()
        peers[2] = "tampered"
        assert 2 not in sw.peers()


class TestLink:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth=0, latency=0.1)
        with pytest.raises(ValueError):
            Link(sim, bandwidth=100, latency=-0.1)

    def test_serialization_time(self):
        sim = Simulator()
        link = Link(sim, bandwidth=200.0, latency=0.1)

        class FakePkt:
            wire_size = 400

        assert link.serialization_time(FakePkt()) == pytest.approx(2.0)

    def test_busy_and_queue_introspection(self):
        sim = Simulator()
        link = Link(sim, bandwidth=200.0, latency=0.1, name="l")
        assert not link.busy
        claim = link.claim_head()
        assert claim.triggered
        assert link.busy
        link.claim_head()
        assert link.queue_length == 1
        link.hold_for(5.0)
        sim.run()
        assert link.busy  # second claim was granted when first released

    def test_claim_fast_inline_and_contention(self):
        sim = Simulator()
        link = Link(sim, bandwidth=200.0, latency=0.1, name="l")
        # Idle link: claimed inline, no event.
        assert link.claim_fast()
        assert link.busy
        # Busy link: fast path refuses; the slow path must be taken.
        assert not link.claim_fast()
        link.hold_for(5.0)
        sim.run()
        assert not link.busy
        # Queued waiter also blocks the fast path (FIFO fairness).
        first = link.claim_head()
        assert first.triggered
        link.claim_head()
        assert not link.claim_fast()
