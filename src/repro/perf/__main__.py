"""``python -m repro.perf`` entry point."""

import sys

from repro.perf.bench_kernel import main

sys.exit(main())
