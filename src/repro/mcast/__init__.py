"""NIC-based multicast — the paper's contribution, plus its baselines.

The proposed scheme consists of:

* a **NIC-based multisend** (``multisend``): one host request, one
  host→NIC DMA, then the NIC emits a replica per destination by rewriting
  the packet header in a GM-2 descriptor callback;
* **NIC-based forwarding** (``forward``): an intermediate NIC looks up
  the multicast group table and re-queues received packets to its
  children without host involvement, pipelining multi-packet messages;
* **one-to-many reliability** (``reliability``): per-group sequence
  numbers, an array of per-child acknowledged sequence numbers, and
  selective Go-back-N retransmission from registered host memory;
* **deadlock freedom** without credits, via per-group queues,
  receive-token transformation, and ID-ordered trees (``repro.trees``).

Baselines: host-based multiple unicasts (``hostbased``), the NIC-assisted
scheme (``nic_assisted``), LFC (``lfc``) and FM/MC (``fmmc``) credit
schemes, compared on the paper's feature axes in ``features``.
"""

from repro.mcast.engine import McastEngine
from repro.mcast.group import (
    CreateGroupCommand,
    GroupState,
    GroupTable,
    McastSendCommand,
)
from repro.mcast.hostbased import host_based_multicast
from repro.mcast.manager import (
    install_group,
    multicast,
    nic_based_multicast,
)
from repro.mcast.reliability import McastRecord

__all__ = [
    "CreateGroupCommand",
    "GroupState",
    "GroupTable",
    "McastEngine",
    "McastRecord",
    "McastSendCommand",
    "host_based_multicast",
    "install_group",
    "multicast",
    "nic_based_multicast",
]
