"""Performance measurement: kernel counters and the benchmark harness.

``python -m repro.perf`` runs :mod:`repro.perf.bench_kernel` and writes
``BENCH_kernel.json``.  Only the counters are imported eagerly — the
benchmark pulls in the experiment stack and stays behind ``__main__``.
"""

from repro.perf.counters import KERNEL_COUNTERS, KernelCounters

__all__ = ["KERNEL_COUNTERS", "KernelCounters"]
