"""Unit tests for loss models and fabric drop behaviour."""

import pytest

from repro.net import (
    BernoulliLoss,
    BitErrorLoss,
    CompositeLoss,
    Network,
    NoLoss,
    Packet,
    PacketHeader,
    PacketType,
    ScriptedLoss,
    single_switch,
)
from repro.sim import Simulator


def data_packet(src=0, dst=1, payload=100, seq=0, ptype=PacketType.DATA):
    return Packet(
        header=PacketHeader(
            ptype=ptype, src=src, dst=dst, origin=src, payload=payload, seq=seq
        )
    )


def run_with_loss(loss, packets):
    sim = Simulator(seed=7)
    topo = single_switch(sim, 4, 250.0, 0.1, 0.2)
    net = Network(sim, topo, loss=loss)
    got = []
    for i in range(4):
        net.attach(i, lambda p: got.append(p))
    for p in packets:
        net.inject(p)
    sim.run()
    return net, got


def test_no_loss_delivers_everything():
    net, got = run_with_loss(NoLoss(), [data_packet(seq=i) for i in range(20)])
    assert len(got) == 20
    assert net.dropped == 0


def test_bernoulli_rate_one_drops_everything():
    net, got = run_with_loss(
        BernoulliLoss(1.0), [data_packet(seq=i) for i in range(10)]
    )
    assert got == []
    assert net.dropped == 10


def test_bernoulli_rate_validated():
    with pytest.raises(ValueError):
        BernoulliLoss(1.5)


def test_bernoulli_respects_kinds():
    loss = BernoulliLoss(1.0, kinds=[PacketType.ACK])
    packets = [data_packet(seq=i) for i in range(5)] + [
        data_packet(seq=i, ptype=PacketType.ACK) for i in range(5)
    ]
    _, got = run_with_loss(loss, packets)
    assert len(got) == 5
    assert all(p.header.ptype is PacketType.DATA for p in got)


def test_bernoulli_needs_bind():
    loss = BernoulliLoss(0.5)
    with pytest.raises(RuntimeError):
        loss.should_drop(data_packet(), 0.0)


def test_bernoulli_seed_fallback_works_unbound():
    loss = BernoulliLoss(0.5, seed=42)
    drops = [loss.should_drop(data_packet(seq=i), 0.0) for i in range(100)]
    assert loss.dropped == sum(drops)
    assert 0 < loss.dropped < 100
    # Same seed, same decisions.
    replay = BernoulliLoss(0.5, seed=42)
    assert drops == [
        replay.should_drop(data_packet(seq=i), 0.0) for i in range(100)
    ]


def test_bit_error_seed_fallback_works_unbound():
    loss = BitErrorLoss(1e-5, seed=7)
    drops = sum(
        loss.should_drop(data_packet(payload=4096), 0.0) for _ in range(200)
    )
    assert drops == loss.dropped > 0
    replay = BitErrorLoss(1e-5, seed=7)
    assert drops == sum(
        replay.should_drop(data_packet(payload=4096), 0.0) for _ in range(200)
    )


def test_bind_replaces_seed_fallback():
    # Two models with different fallback seeds converge once bound to
    # the same simulator stream — bind() owns reproducibility in-sim.
    def decisions(seed):
        sim = Simulator(seed=3)
        loss = BernoulliLoss(0.5, seed=seed)
        loss.bind(sim)
        return [loss.should_drop(data_packet(seq=i), 0.0) for i in range(50)]

    assert decisions(1) == decisions(99)


def test_bernoulli_statistics():
    loss = BernoulliLoss(0.3)
    _, got = run_with_loss(loss, [data_packet(seq=i) for i in range(500)])
    # Deterministic given the seed; sanity-check the rate is in the right
    # neighbourhood.
    assert 0.2 < loss.dropped / 500 < 0.4


def test_bernoulli_deterministic_across_runs():
    def one_run():
        loss = BernoulliLoss(0.3)
        net, got = run_with_loss(loss, [data_packet(seq=i) for i in range(100)])
        return [p.header.seq for p in got]

    assert one_run() == one_run()


def test_bit_error_scales_with_size():
    sim = Simulator(seed=1)
    loss = BitErrorLoss(1e-6)
    loss.bind(sim)
    # Probability check via repeated sampling on two sizes.
    big_drops = sum(
        loss.should_drop(data_packet(payload=4096), 0.0) for _ in range(2000)
    )
    small_drops = sum(
        loss.should_drop(data_packet(payload=1), 0.0) for _ in range(2000)
    )
    assert big_drops > small_drops


def test_bit_error_validated():
    with pytest.raises(ValueError):
        BitErrorLoss(1.0)


def test_scripted_loss_drops_exactly_n_times():
    loss = ScriptedLoss(lambda p: p.header.seq == 3, times=2)
    packets = [data_packet(seq=3) for _ in range(5)]
    _, got = run_with_loss(loss, packets)
    assert len(got) == 3
    assert loss.dropped == 2


def test_scripted_loss_predicate_filtering():
    loss = ScriptedLoss(lambda p: p.header.dst == 2, times=100)
    packets = [data_packet(dst=1, seq=1), data_packet(dst=2, seq=2)]
    _, got = run_with_loss(loss, packets)
    assert [p.header.dst for p in got] == [1]


def test_composite_loss_any_drops():
    loss = CompositeLoss(
        [
            ScriptedLoss(lambda p: p.header.seq == 1),
            ScriptedLoss(lambda p: p.header.seq == 2),
        ]
    )
    packets = [data_packet(seq=i) for i in range(4)]
    _, got = run_with_loss(loss, packets)
    assert sorted(p.header.seq for p in got) == [0, 3]


def test_drop_recorded_in_trace():
    sim = Simulator(seed=7, trace=True)
    topo = single_switch(sim, 2, 250.0, 0.1, 0.2)
    net = Network(sim, topo, loss=BernoulliLoss(1.0))
    net.attach(0, lambda p: None)
    net.attach(1, lambda p: None)
    net.inject(data_packet())
    sim.run()
    drops = sim.trace.filter(category="pkt_drop")
    assert len(drops) == 1
    assert drops[0]["dst"] == 1
