"""The send window: one table of unacknowledged send records.

"For each packet given to the NIC to transmit, GM keeps a send record
with a timestamp" (paper §4); multicast keeps "the same sequence number
and send record" per group (§5).  Both tables behave identically —
records are added in sequence order, retired by cumulative acks, and
scanned from the oldest on timeout — so both are instances of this one
class.

A record stored in a window is any object with the attributes

``seq``
    the per-window sequence number (dict key, orders the window);
``deadline``
    absolute simulation time at which the retransmission timer should
    consider the record overdue (managed by
    :class:`repro.proto.timer.RetransmitTimer`; ``NEVER`` when unarmed);
``retransmits``
    how many times the record has been resent (managed by the policies).

The multicast record additionally carries ``unacked`` — the set of
children that have not yet acknowledged it — consumed by
:meth:`SendWindow.ack_from_child`.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["NEVER", "SendWindow"]

#: Deadline sentinel for "no timer armed": sorts after every real time,
#: so an unarmed (or already-expired-and-swept) record never reads as
#: due.  ``float("inf")`` rather than ``None`` keeps deadline
#: comparisons branch-free on the timer's scan.
NEVER = float("inf")


class SendWindow:
    """Unacknowledged send records, keyed and ordered by sequence number.

    The window may *wrap* an existing dict (``SendWindow(backing)``) so
    legacy attributes like ``Connection.records`` and
    ``GroupState.records`` stay valid views of the same state, or own a
    fresh one.
    """

    __slots__ = ("records",)

    def __init__(self, records: dict[int, Any] | None = None):
        #: seq -> record; shared with the owning connection/group.
        self.records: dict[int, Any] = {} if records is None else records

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __contains__(self, seq: int) -> bool:
        return seq in self.records

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SendWindow {sorted(self.records)}>"

    # -- record management -------------------------------------------------
    def add(self, record: Any) -> Any:
        """Insert *record* under its ``seq``."""
        self.records[record.seq] = record
        return record

    def get(self, seq: int) -> Any | None:
        return self.records.get(seq)

    def pop(self, seq: int) -> Any | None:
        return self.records.pop(seq, None)

    def seqs(self) -> list[int]:
        """All outstanding sequence numbers, oldest first."""
        return sorted(self.records)

    def oldest(self) -> int | None:
        """The oldest unacked seq — the only one whose expiry triggers
        retransmission (as in GM; younger records ride its Go-back-N)."""
        return min(self.records) if self.records else None

    # -- acknowledgment processing -----------------------------------------
    def ack_cumulative(self, ack_seq: int) -> Iterator[Any]:
        """Retire and yield every record with ``seq <= ack_seq``.

        Popping the record *is* the timer defusing: the window timer
        consults the table, so a retired record can never fire (the old
        per-record scheme needed a generation bump here).
        """
        records = self.records
        for seq in sorted(records):
            if seq > ack_seq:
                break
            yield records.pop(seq)

    def remove_child(self, child: int) -> Iterator[Any]:
        """Discharge *child* from every record's ``unacked`` set.

        Used when a tree repair moves a child to a new parent: the old
        parent is no longer responsible for its acknowledgments.
        Records whose last pending child was *child* are retired and
        yielded (in sequence order), exactly like :meth:`ack_from_child`.
        """
        records = self.records
        for seq in sorted(records):
            record = records[seq]
            record.unacked.discard(child)
            if not record.unacked:
                del records[seq]
                yield record

    def ack_from_child(self, child: int, ack_seq: int) -> Iterator[Any]:
        """Per-child cumulative ack for one-to-many windows.

        Discards *child* from the ``unacked`` set of every record up to
        ``ack_seq``; records whose last child just acknowledged are
        retired and yielded (in sequence order).
        """
        records = self.records
        for seq in sorted(records):
            if seq > ack_seq:
                break
            record = records[seq]
            record.unacked.discard(child)
            if not record.unacked:
                del records[seq]
                yield record
