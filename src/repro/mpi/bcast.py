"""MPI_Bcast: host-based binomial and NIC-based implementations.

Host-based (what MPICH-GM does): unicasts along a binomial tree over
relative ranks; every intermediate *process* must call bcast and relay.

NIC-based (the paper's modification): for eager-sized messages, the
first broadcast from a given root on a communicator creates a multicast
group (demand-driven membership update into the NICs), then the root
posts one NIC multisend and the destinations post blocking receives;
intermediate NICs forward without host involvement.  Messages beyond
the eager limit fall back to the host-based path (the rendezvous regime
is out of the NIC multicast's scope, paper §5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import MPIError
from repro.gm.api import RecvCompletion
from repro.mcast.group import CreateGroupCommand, local_views
from repro.mcast.manager import next_group_id
from repro.trees.base import SpanningTree
from repro.trees.binomial import binomial_tree
from repro.trees.builder import build_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import RankContext

__all__ = ["host_based_bcast", "nic_based_bcast", "rank_binomial_tree"]

#: Tag space reserved for collective plumbing (never collides with user
#: tags, which must be >= 0).
_BCAST_TAG = -42
_GROUP_TAG = -43


def rank_binomial_tree(comm_size: int, root: int) -> SpanningTree:
    """Binomial tree over *relative ranks*, then mapped back to ranks."""
    relative = binomial_tree(0, list(range(1, comm_size)))
    remap = {rel: (rel + root) % comm_size for rel in range(comm_size)}
    return SpanningTree(
        root=root,
        children={
            remap[n]: tuple(remap[c] for c in kids)
            for n, kids in relative.children.items()
        },
    )


def host_based_bcast(
    ctx: "RankContext", root: int, size: int, payload: Any
) -> Generator:
    """The traditional implementation: recv from parent, send to kids."""
    if not 0 <= root < ctx.comm.size:
        raise MPIError(f"bad root rank {root}")
    yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
    tree = rank_binomial_tree(ctx.comm.size, root)
    if ctx.rank != root:
        entry = yield from ctx.recv(
            source=tree.parent_of(ctx.rank), tag=_BCAST_TAG
        )
        payload = entry["payload"]
    for child in tree.children_of(ctx.rank):
        yield from ctx.send(child, size, tag=_BCAST_TAG, payload=payload)
    return payload


def nic_based_bcast(
    ctx: "RankContext", root: int, size: int, payload: Any
) -> Generator:
    """The paper's implementation for eager-sized messages."""
    if not 0 <= root < ctx.comm.size:
        raise MPIError(f"bad root rank {root}")
    if size > ctx.cost.mpi_eager_max:
        if ctx.comm.nic_bcast_rdma:
            from repro.coll.rdma_bcast import rdma_bcast

            yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
            group_id = ctx.bcast_groups.get(root)
            if group_id is None:
                group_id = yield from _create_group(ctx, root)
            result = yield from rdma_bcast(ctx, root, size, payload, group_id)
            return result
        result = yield from host_based_bcast(ctx, root, size, payload)
        return result
    yield ctx.sim.timeout(ctx.cost.host_mpi_overhead)
    group_id = ctx.bcast_groups.get(root)
    if group_id is None:
        group_id = yield from _create_group(ctx, root)
    if ctx.rank == root:
        handle = yield from ctx.node.mcast.multicast_send(
            ctx.port, group_id, size,
            info={"mpi_payload": payload} if payload is not None else None,
        )
        del handle  # fire-and-forget: reliability is the NIC's job
        return payload
    completion = yield from _group_recv(ctx, group_id)
    # Eager copy to the user buffer.
    yield ctx.sim.timeout(ctx.cost.memcpy_time(size))
    return completion.info.get("mpi_payload")


def _group_recv(
    ctx: "RankContext", group_id: int
) -> Generator[Any, Any, RecvCompletion]:
    pending = ctx.group_pending.get(group_id)
    if pending:
        return pending.pop(0)
    while True:
        completion = yield from ctx._pump()
        if completion.group == group_id:
            return completion
        ctx._stash(completion)


def _create_group(ctx: "RankContext", root: int) -> Generator[Any, Any, int]:
    """Demand-driven group creation — the first-bcast cost (paper §5).

    The root builds the spanning tree (over *node ids*, ID-sorted, the
    deadlock rule), unicasts each member its local view, waits for all
    acknowledgments, and only then proceeds.  Members handle their part
    inside their own first bcast call.
    """
    comm = ctx.comm
    if ctx.rank == root:
        group_id = next_group_id()
        members = [comm.node_of_rank[r] for r in range(comm.size)]
        tree = build_tree(
            ctx.node.id,
            [n for n in members if n != ctx.node.id],
            shape="optimal",
            cost=ctx.cost,
            size=ctx.cost.mpi_eager_max // 2,
        )
        views = local_views(group_id, tree, port_num=ctx.port.port_num)
        # Install our own view through the host command path.
        yield ctx.sim.timeout(ctx.cost.host_send_post)
        ctx.node.nic.post_command(
            CreateGroupCommand(
                port=ctx.port.port_num, state=views[ctx.node.id]
            )
        )
        for rank in range(comm.size):
            if rank == root:
                continue
            member_node = comm.node_of_rank[rank]
            yield from ctx.send(
                rank, 96, tag=_GROUP_TAG,
                payload={"group_id": group_id, "view": views[member_node]},
            )
        for _ in range(comm.size - 1):
            yield from ctx.recv(tag=_GROUP_TAG)
    else:
        entry = yield from ctx.recv(source=root, tag=_GROUP_TAG)
        group_id = entry["payload"]["group_id"]
        yield ctx.sim.timeout(ctx.cost.host_send_post)
        ctx.node.nic.post_command(
            CreateGroupCommand(
                port=ctx.port.port_num, state=entry["payload"]["view"]
            )
        )
        yield from ctx.send(root, 0, tag=_GROUP_TAG)
    ctx.bcast_groups[root] = group_id
    if ctx.rank == root:
        comm.bcast_groups[root] = group_id
    return group_id
