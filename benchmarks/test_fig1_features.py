"""Bench: Figure 1 — feature axes, with live probes of the claims."""

from repro.experiments import fig1


def test_fig1_features(once):
    result = once(lambda: fig1.run())
    print()
    print(result.render())
    print()
    print(result.extra["table"])

    # All four dynamic probes must demonstrate their claim:
    # protection, LFC deadlock, ID-ordering immunity, FM/MC bottleneck.
    assert result.headlines["probes passing (of 4)"] == 4.0
