"""Bench: Figure 6 — host CPU time in MPI_Bcast under process skew."""

from repro.experiments import fig6


def test_fig6_skew(once):
    result = once(lambda: fig6.run(quick=True, sizes=(4,)))
    print()
    print(result.render())

    hb = result.get("HB-4B")
    nb = result.get("NB-4B")
    factor = result.get("factor-4B")
    xs = sorted(hb.xs())

    # Paper Fig. 6a: host-based CPU time grows once skew exceeds ~40 us.
    assert hb.y_at(xs[-1]) > 2 * hb.y_at(xs[0])
    # NIC-based CPU time does NOT grow — it falls toward its floor.
    assert nb.y_at(xs[-1]) <= nb.y_at(xs[0]) * 1.2
    # The improvement factor grows with skew (paper: up to 5.82; our
    # simulated MPI floor is lower, so the ceiling is higher).
    factor_ys = [factor.y_at(x) for x in xs]
    assert factor_ys == sorted(factor_ys)
    assert factor_ys[-1] > 4.0
