"""Figure 8: broadcast completion time vs failures injected mid-flight.

Beyond the paper's evaluation: the paper's reliability story (§5) covers
packet loss, not fabric failures.  This figure injects link failures on
interior tree nodes *while a broadcast is in flight* and compares three
recoveries on a 64-node Clos:

* ``nic_based`` — the paper's scheme as-is: the ACK-window retransmit
  timer alone re-delivers once the link returns;
* ``backup_tree`` — switch the group to a precomputed per-node backup
  tree at failure-detection time;
* ``tree_repair`` — regraft the orphaned subtrees in place, replaying
  the delivery gap from the new parents' retransmit windows.

All three deliver 100% of payloads (checked per destination, every
point); the self-healing schemes complete faster because they stop
waiting on the dead link as soon as the failure is *detected* rather
than when it heals.
"""

from __future__ import annotations

from repro.cluster import build_topology
from repro.config import ClusterConfig
from repro.errors import ReproError
from repro.experiments.parallel import run_grid
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.net.failure import FailureEvent, FailureSpec
from repro.scenario import ScenarioGrid, broadcast_point
from repro.sim.engine import Simulator

__all__ = ["run", "NODES", "SIZE", "SCHEMES", "VICTIMS", "FAILURE_COUNTS"]

NODES = 64
SIZE = 16384
SCHEMES = ("nic_based", "backup_tree", "tree_repair")
#: Interior nodes of the 64-node binomial tree, largest subtree first —
#: each failure orphans a big subtree, the worst case for recovery.
VICTIMS = (32, 16, 8)
FAILURE_COUNTS = (0, 1, 2, 3)
#: First link goes down mid-broadcast, later ones staggered; every
#: failure heals late enough that only the recovery path can beat it.
DOWN_AT, UP_AT, STAGGER = 30.0, 700.0, 40.0


def failure_spec(
    n_failures: int, cost: GMCostModel, seed: int = 0
) -> FailureSpec | None:
    """*n_failures* staggered interior-NIC-link outages, each healed."""
    if n_failures == 0:
        return None
    topo = build_topology(
        Simulator(),
        ClusterConfig(n_nodes=NODES, cost=cost, seed=seed, topology="clos"),
    )
    events = []
    for k, victim in enumerate(VICTIMS[:n_failures]):
        cable = topo.nic_cable_index(victim)
        events.append(
            FailureEvent(DOWN_AT + STAGGER * k, "link_down", cable)
        )
        events.append(FailureEvent(UP_AT + STAGGER * k, "link_up", cable))
    events.sort(key=lambda e: (e.time_us, e.action, e.target))
    return FailureSpec(kind="scheduled", events=tuple(events))


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    counts = (0, 3) if quick else FAILURE_COUNTS
    result = FigureResult(
        figure_id="fig8",
        title="Broadcast completion time vs mid-flight link failures "
        f"({NODES}-node Clos, {SIZE} B, binomial tree)",
    )
    grid = ScenarioGrid("fig8")
    for scheme in SCHEMES:
        for n_failures in counts:
            grid.add(
                (scheme, n_failures),
                broadcast_point(
                    NODES, SIZE, scheme,
                    cost=cost,
                    tree_shape="binomial",
                    failures=failure_spec(n_failures, cost),
                    name=f"fig8[{scheme},failures={n_failures}]",
                ),
                label=f"fig8[{scheme},failures={n_failures}]",
            )
    values = run_grid(grid, jobs=jobs)
    members = list(range(1, NODES))
    for scheme in SCHEMES:
        series = Series(label=scheme)
        for n_failures in counts:
            point = values[(scheme, n_failures)]
            if not point.delivered_all(members):
                missing = sorted(set(members) - set(point.deliveries))
                raise ReproError(
                    f"fig8[{scheme},failures={n_failures}]: "
                    f"incomplete delivery, missing {missing}"
                )
            series.add(n_failures, point.completion_us)
        result.series.append(series)
    worst = counts[-1]
    baseline = values[("nic_based", worst)].completion_us
    for scheme in ("backup_tree", "tree_repair"):
        healed = values[(scheme, worst)].completion_us
        result.headlines[
            f"{scheme}: completion saved vs ACK-window retransmit at "
            f"{worst} failures, us (expected: > 0)"
        ] = baseline - healed
    result.headlines[
        "all schemes: destinations delivered at every point "
        f"(expected: {NODES - 1})"
    ] = NODES - 1
    return result
