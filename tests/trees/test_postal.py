"""Tests for postal-model optimal trees, including brute-force optimality."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TreeError
from repro.gm.params import GMCostModel
from repro.trees import (
    PostalParams,
    SpanningTree,
    build_tree,
    check_deadlock_ordering,
    optimal_postal_tree,
    postal_completion_time,
    postal_params,
    tree_stats,
)


def all_trees(n):
    """Every labelled rooted tree on nodes 0..n-1 with root 0 (via Prüfer-
    style parent vectors: node i>0 picks any parent < i or any node)."""
    nodes = list(range(n))
    for parents in product(*[nodes[:i] + nodes[i + 1 :] for i in range(1, n)]):
        children = {k: [] for k in nodes}
        ok = True
        # Build and check acyclicity by walking up.
        for child, parent in enumerate(parents, start=1):
            children[parent].append(child)
        # Detect cycles: every node must reach 0.
        for node in range(1, n):
            seen = set()
            cur = node
            while cur != 0:
                if cur in seen:
                    ok = False
                    break
                seen.add(cur)
                cur = parents[cur - 1]
            if not ok:
                break
        if ok:
            yield SpanningTree(
                root=0,
                children={k: tuple(v) for k, v in children.items() if v},
            )


class TestPostalParams:
    def test_validation(self):
        with pytest.raises(TreeError):
            PostalParams(l_ready=1.0, l_full=1.0, gap=0.0)
        with pytest.raises(TreeError):
            PostalParams(l_ready=5.0, l_full=1.0, gap=1.0)

    def test_fanout_ratio(self):
        p = PostalParams(l_ready=8.0, l_full=8.0, gap=1.0)
        assert p.fanout_ratio == pytest.approx(8.0)

    def test_small_message_high_ratio(self):
        cost = GMCostModel()
        p = postal_params(cost, 4, scheme="nic")
        assert p.fanout_ratio > 3.0  # many replicas before child ready

    def test_multi_packet_low_ratio(self):
        # 16 KB: readiness after the first packet, but another replica
        # costs four packet times -> ratio < 1 -> chains.
        cost = GMCostModel()
        p = postal_params(cost, 16384, scheme="nic")
        assert p.fanout_ratio < 1.0

    def test_single_packet_large_ratio_near_one(self):
        # The paper's 2-4 KB dip: fanout ratio close to 1.
        cost = GMCostModel()
        p = postal_params(cost, 4096, scheme="nic")
        assert 0.5 < p.fanout_ratio < 2.5

    def test_host_scheme_ready_after_full(self):
        cost = GMCostModel()
        p = postal_params(cost, 1024, scheme="host")
        # Store-and-forward: no readiness before full receipt.
        assert p.l_ready >= p.l_full * 0.99

    def test_unknown_scheme(self):
        with pytest.raises(TreeError):
            postal_params(GMCostModel(), 100, scheme="quantum")


class TestGreedyConstruction:
    def test_high_ratio_gives_flat_tree(self):
        params = PostalParams(l_ready=100.0, l_full=100.0, gap=1.0)
        tree = optimal_postal_tree(0, list(range(1, 9)), params)
        assert tree.children_of(0) == tuple(range(1, 9))

    def test_low_ratio_gives_chain(self):
        params = PostalParams(l_ready=1.0, l_full=1.0, gap=100.0)
        tree = optimal_postal_tree(0, list(range(1, 6)), params)
        assert tree.max_depth == 5  # pure chain

    def test_ratio_one_roughly_binomial_depth(self):
        params = PostalParams(l_ready=1.0, l_full=1.0, gap=1.0)
        tree = optimal_postal_tree(0, list(range(1, 16)), params)
        # lam = 1: doubling per step -> depth ~= log2(16) = 4.
        assert 3 <= tree.max_depth <= 5

    def test_covers_all_nodes(self):
        params = PostalParams(l_ready=3.0, l_full=3.0, gap=1.0)
        tree = optimal_postal_tree(0, list(range(1, 40)), params)
        assert sorted(tree.nodes) == list(range(40))

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=30),
        l=st.floats(min_value=0.5, max_value=50.0),
        g=st.floats(min_value=0.1, max_value=50.0),
    )
    def test_property_valid_and_ordered(self, n, l, g):
        params = PostalParams(l_ready=l, l_full=l, gap=g)
        tree = optimal_postal_tree(0, list(range(1, n)), params)
        assert sorted(tree.nodes) == list(range(n))
        check_deadlock_ordering(tree)

    @settings(max_examples=15, deadline=None)
    @given(
        l=st.floats(min_value=0.5, max_value=20.0),
        g=st.floats(min_value=0.2, max_value=20.0),
    )
    def test_property_greedy_optimal_vs_bruteforce_n5(self, l, g):
        """For the classical postal model the greedy completion time
        matches the best over ALL rooted trees on 5 nodes."""
        params = PostalParams(l_ready=l, l_full=l, gap=g)
        greedy = optimal_postal_tree(0, [1, 2, 3, 4], params)
        greedy_t = postal_completion_time(greedy, params)
        best_t = min(
            postal_completion_time(t, params) for t in all_trees(5)
        )
        assert greedy_t <= best_t + 1e-9

    def test_completion_time_flat(self):
        params = PostalParams(l_ready=5.0, l_full=5.0, gap=1.0)
        tree = optimal_postal_tree(0, [1, 2, 3], params)
        # Flat: last child send starts at 2*gap, completes at +l_full.
        assert postal_completion_time(tree, params) == pytest.approx(7.0)

    def test_completion_time_chain(self):
        params = PostalParams(l_ready=1.0, l_full=2.0, gap=10.0)
        tree = SpanningTree(root=0, children={0: (1,), 1: (2,)})
        # 1 ready at 1, sends at 1; 2 full at 1+2=3.
        assert postal_completion_time(tree, params) == pytest.approx(3.0)


class TestBuildTree:
    def test_destinations_sorted_and_deduped(self):
        tree = build_tree(0, [5, 3, 3, 9, 0], shape="flat")
        assert tree.children_of(0) == (3, 5, 9)

    def test_optimal_requires_cost(self):
        with pytest.raises(TreeError):
            build_tree(0, [1, 2], shape="optimal")

    def test_optimal_small_message_shallow(self):
        cost = GMCostModel()
        tree = build_tree(0, range(1, 16), shape="optimal", cost=cost, size=4)
        binom = build_tree(0, range(1, 16), shape="binomial")
        assert tree.max_depth < binom.max_depth

    def test_optimal_16kb_deep(self):
        cost = GMCostModel()
        tree = build_tree(
            0, range(1, 16), shape="optimal", cost=cost, size=16384
        )
        binom = build_tree(0, range(1, 16), shape="binomial")
        assert tree.max_depth > binom.max_depth  # chain-like pipeline

    def test_optimal_4kb_roughly_binomial(self):
        # The paper's dip: near 4 KB the optimal tree "is not
        # significantly different from the binomial tree".
        cost = GMCostModel()
        tree = build_tree(
            0, range(1, 16), shape="optimal", cost=cost, size=4096
        )
        binom = build_tree(0, range(1, 16), shape="binomial")
        assert abs(tree.max_depth - binom.max_depth) <= 1

    def test_unknown_shape(self):
        with pytest.raises(TreeError):
            build_tree(0, [1], shape="spiral")

    def test_deadlock_ordering_enforced_all_shapes(self):
        for shape in ("flat", "chain", "binomial"):
            tree = build_tree(7, [3, 12, 9, 1], shape=shape)
            check_deadlock_ordering(tree)

    def test_deadlock_ordering_violation_detected(self):
        bad = SpanningTree(root=0, children={0: (5,), 5: (2,)})
        with pytest.raises(TreeError):
            check_deadlock_ordering(bad)

    def test_root_child_may_be_smaller(self):
        # "unless its parent is the root"
        tree = SpanningTree(root=7, children={7: (1,), 1: (9,)})
        check_deadlock_ordering(tree)

    @settings(max_examples=25, deadline=None)
    @given(
        root=st.integers(min_value=0, max_value=31),
        members=st.sets(st.integers(min_value=0, max_value=31), min_size=2, max_size=20),
        size=st.sampled_from([1, 256, 2048, 4096, 16384]),
    )
    def test_property_all_shapes_cover_and_order(self, root, members, size):
        cost = GMCostModel()
        dests = sorted(members - {root})
        if not dests:
            return
        for shape in ("flat", "chain", "binomial", "optimal"):
            tree = build_tree(
                root, dests, shape=shape, cost=cost, size=size
            )
            assert sorted(tree.nodes) == sorted({root, *dests})
            check_deadlock_ordering(tree)


def test_fanout_shrinks_with_message_size():
    cost = GMCostModel()
    fanouts = []
    for size in (4, 512, 4096, 16384):
        tree = build_tree(0, range(1, 16), shape="optimal", cost=cost, size=size)
        fanouts.append(tree_stats(tree).root_fanout)
    assert fanouts[0] >= fanouts[1] >= fanouts[2] >= fanouts[3]
    assert fanouts[0] > fanouts[3]
