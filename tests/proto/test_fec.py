"""Property tests for the XOR parity codec behind the nack_fec family.

The block codec must round-trip every single-erasure case exactly:
whichever of the k fragments is lost, XORing the parity with the k-1
survivors must return the erased fragment's exact bytes *and* exact
length — including the usual short final fragment of a message and
empty fragments.
"""

import random

import pytest

from repro.proto.engines.fec import encode_parity, recover_fragment


def _fragments(rng, k, max_len=64):
    """k random fragments with deliberately mixed lengths."""
    return [
        rng.randbytes(rng.randrange(0, max_len + 1)) for _ in range(k)
    ]


@pytest.mark.parametrize("k", [1, 2, 3, 4, 8])
def test_every_loss_position_reconstructs(k):
    """For every block size and every erasure position: exact bytes."""
    rng = random.Random(0xFEC ^ k)
    for trial in range(20):
        fragments = _fragments(rng, k)
        parity = encode_parity(fragments)
        for lost in range(k):
            survivors = fragments[:lost] + fragments[lost + 1:]
            assert recover_fragment(parity, survivors) == fragments[lost]


@pytest.mark.parametrize("k", [2, 4, 7])
def test_survivor_order_is_irrelevant(k):
    rng = random.Random(0x5EED + k)
    fragments = _fragments(rng, k)
    parity = encode_parity(fragments)
    for lost in range(k):
        survivors = fragments[:lost] + fragments[lost + 1:]
        rng.shuffle(survivors)
        assert recover_fragment(parity, survivors) == fragments[lost]


def test_final_short_fragment_shapes():
    """The message-tail shape: full-size fragments plus one short tail,
    erased at every position — the recovered length must be exact, not
    padded to the block width."""
    full, tails = 4096, [0, 1, 7, 100, 4095]
    rng = random.Random(1234)
    for tail_len in tails:
        fragments = [rng.randbytes(full) for _ in range(3)]
        fragments.append(rng.randbytes(tail_len))
        parity = encode_parity(fragments)
        for lost in range(len(fragments)):
            survivors = fragments[:lost] + fragments[lost + 1:]
            recovered = recover_fragment(parity, survivors)
            assert recovered == fragments[lost]
            assert len(recovered) == len(fragments[lost])


def test_seeded_fuzz_round_trip():
    """Seeded fuzz over block sizes and fragment lengths (deterministic
    so a failure reproduces from the seed alone)."""
    rng = random.Random(20260809)
    for trial in range(200):
        k = rng.randrange(1, 9)
        fragments = [
            rng.randbytes(rng.choice([0, 1, 3, 16, 128, 1024, 1500]))
            for _ in range(k)
        ]
        parity = encode_parity(fragments)
        lost = rng.randrange(k)
        survivors = fragments[:lost] + fragments[lost + 1:]
        assert recover_fragment(parity, survivors) == fragments[lost]


def test_single_fragment_block():
    """k=1 degenerates to plain duplication: parity alone recovers."""
    frag = b"lonely fragment"
    parity = encode_parity([frag])
    assert recover_fragment(parity, []) == frag


def test_empty_block_rejected():
    with pytest.raises(ValueError):
        encode_parity([])


def test_oversized_survivor_rejected():
    parity = encode_parity([b"ab", b"cd"])
    with pytest.raises(ValueError):
        recover_fragment(parity, [b"x" * 64])


def test_wrong_survivors_detected_or_wrong_bytes():
    """Feeding survivors from a different block must not silently
    return the original fragment (either an error or a mismatch)."""
    a = [b"aaaa", b"bbbb", b"cccc"]
    b = [b"dddd", b"eeee", b"ffff"]
    parity = encode_parity(a)
    try:
        recovered = recover_fragment(parity, b[:2])
    except ValueError:
        return
    assert recovered != a[2]
