"""Bench: Figure 2 — the timing diagrams, from simulation traces."""

from repro.experiments import fig2


def test_fig2_timeline(once):
    result = once(lambda: fig2.run())
    print()
    print(result.render())

    hb_gap = result.headlines["HB mean inter-replica gap (request processing)"]
    nb_gap = result.headlines["NB mean inter-replica gap (header rewrite)"]
    # Fig. 2a vs 2b: the NIC-based multisend replaces a full request
    # processing per destination with a cheap header rewrite.
    assert nb_gap < hb_gap / 2.5

    # Fig. 2c: the intermediate NIC forwards before its own host sees
    # the (complete) message.
    lead = result.headlines["NIC-1 forward lead over its own host delivery"]
    assert lead > 0

    timeline = result.extra["forwarding_timeline"]
    # Forwarding starts before the full message has even arrived at the
    # intermediate (per-packet pipelining on a multi-packet message).
    assert timeline["first_forward_queued"] < timeline["host1_delivery"]
    assert timeline["host2_delivery"] > timeline["host1_delivery"]
