"""The import-layering rules from docs/architecture.md hold."""

import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "tools" / "check_layering.py"


def test_layering_clean():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_checker_sees_through_guards():
    # The checker must ignore TYPE_CHECKING-only imports but catch
    # runtime ones, wherever they hide.
    import ast

    mod = _load_checker()
    tree = ast.parse(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.gm import x\n"
        "def f():\n"
        "    import repro.mcast\n"
    )
    modules = [m for _, m in mod.runtime_imports(tree)]
    assert "repro.mcast" in modules
    assert "repro.gm" not in modules


def test_obs_back_edge_rule(tmp_path):
    """Instrumented layers must not import repro.obs; experiments and
    perf (which aggregate/report) may."""
    mod = _load_checker()
    src = tmp_path / "src" / "repro"
    (src / "nic").mkdir(parents=True)
    (src / "perf").mkdir()
    (src / "nic" / "bad.py").write_text(
        "import repro.obs\n"
    )
    (src / "perf" / "ok.py").write_text(
        "from repro.obs.registry import MetricsRegistry\n"
    )
    mod.SRC = src
    mod.REPO = tmp_path

    violations = mod.check_obs_back_edges()
    assert len(violations) == 1
    assert "nic/bad.py" in violations[0].replace("\\", "/")
    assert "repro.obs" in violations[0]


def test_scenario_back_edge_rule(tmp_path):
    """Protocol engines must not import repro.scenario; the experiment
    harness (which feeds specs to pool workers) may."""
    mod = _load_checker()
    src = tmp_path / "src" / "repro"
    (src / "mcast").mkdir(parents=True)
    (src / "experiments").mkdir()
    (src / "mcast" / "bad.py").write_text(
        "from repro.scenario import ScenarioSpec\n"
    )
    (src / "experiments" / "ok.py").write_text(
        "from repro.scenario.harness import run_cell\n"
    )
    mod.SRC = src
    mod.REPO = tmp_path

    violations = mod.check_scenario_back_edges()
    assert len(violations) == 1
    assert "mcast/bad.py" in violations[0].replace("\\", "/")
    assert "repro.scenario" in violations[0]


def test_scenario_must_not_import_experiments_or_obs(tmp_path):
    """The scenario allowlist excludes the layers above it."""
    mod = _load_checker()
    src = tmp_path / "src" / "repro"
    (src / "scenario").mkdir(parents=True)
    (src / "scenario" / "bad.py").write_text(
        "from repro.experiments.report import render_table\n"
        "import repro.obs\n"
        "from repro.cluster import Cluster\n"
    )
    mod.SRC = src
    mod.REPO = tmp_path

    violations = mod.check_package(
        "scenario", mod.ALLOWED["scenario"]
    )
    assert len(violations) == 2
    assert any("repro.experiments" in v for v in violations)
    assert any("repro.obs" in v for v in violations)


def test_obs_type_checking_import_allowed(tmp_path):
    # Annotations may name obs types without a runtime back-edge.
    mod = _load_checker()
    src = tmp_path / "src" / "repro"
    (src / "gm").mkdir(parents=True)
    (src / "gm" / "annotated.py").write_text(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.obs import MetricsRegistry\n"
    )
    mod.SRC = src
    mod.REPO = tmp_path
    assert mod.check_obs_back_edges() == []
