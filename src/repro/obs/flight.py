"""Sampled per-packet flight recorder.

The registry (:mod:`repro.obs.registry`) answers *how much*; the flight
recorder answers *where did this message's time go*.  Each sampled root
message gets a **trace id**, stamped into ``PacketHeader.trace_id`` at
the post and carried through fragmentation, NIC forwarding (``clone``
copies the header), retransmission, and recovery replay.  Instrumented
layers append **hop events** — host post, DMA, SRAM copy, transmit,
fabric injection, link-claim queueing, delivery, host delivery, ack,
drops — through the duck-typed ``sim.flight`` slot, exactly like
``sim.metrics``:

```python
fr = sim.flight
if fr is not None and pkt.header.trace_id >= 0:
    fr.record(now, pkt.header.trace_id, "deliver", dst, pkt.uid, chunk)
```

With no recorder attached that is one attribute check per site; with one
attached, recording is a list append — the recorder never touches the
event queue, so attached and detached runs replay byte-identically (the
golden-trace tests pin this).

**Determinism across shard counts.**  Trace ids are allocated per
*origin* node (``origin * ORIGIN_STRIDE + n``-th post from that origin),
and the sampling decision is a deterministic per-origin counter walk —
no RNG, no global allocator.  A given scenario therefore assigns
identical trace ids serial or sharded: an origin's posts all happen on
its own shard, in shard-local deterministic order.  Packets cross shard
boundaries whole (``Network.accept_handoff``), so trace ids survive
cross-shard hops for free; per-shard recorders are folded back with
:meth:`FlightRecorder.absorb` +
:func:`repro.sim.parallel.merge_flight_events`.

The critical-path analyzer over these events lives in
:mod:`repro.obs.critical`.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "FlightRecorder",
    "FlightEvent",
    "ORIGIN_STRIDE",
    "STAGES",
    "EV_WHEN",
    "EV_TRACE",
    "EV_STAGE",
    "EV_NODE",
    "EV_UID",
    "EV_CHUNK",
    "EV_EXTRA",
    "event_to_dict",
    "gauge_series",
]

#: Trace ids are ``origin * ORIGIN_STRIDE + per-origin-sequence``: unique
#: across origins (and therefore across shards) without any global
#: allocator, and stable across shard counts.
ORIGIN_STRIDE = 1 << 20

#: Every stage a hop event may carry (documentation + render order).
STAGES = (
    "post",          # root message posted at the host
    "dma",           # host -> NIC SRAM DMA of one chunk
    "sram_copy",     # NIC-forwarding SRAM copy of a held chunk
    "tx",            # packet built/queued at a NIC (attempt/replay flags)
    "inject",        # fabric traversal starts (src NIC -> wire)
    "queue",         # link-claim wait ended (carries the wait)
    "deliver",       # fabric delivered the packet to the dst NIC sink
    "host_deliver",  # RecvCompletion surfaced to the host port
    "ack",           # (m)cast ack matched to an in-window record
    "retransmit",    # timeout/laggard retransmission leaving a NIC
    "drop",          # injected-loss drop
    "failure_drop",  # dead-link / unroutable drop
    "regraft",       # recovery heal applied (global note, trace_id = -1)
    "gauge",         # gauge sample (global note, trace_id = -1)
)

#: A hop event is a plain tuple (hot-path append, picklable, mergeable):
#: ``(when, trace_id, stage, node, uid, chunk, extra)``.
FlightEvent = tuple
EV_WHEN, EV_TRACE, EV_STAGE, EV_NODE, EV_UID, EV_CHUNK, EV_EXTRA = range(7)


class FlightRecorder:
    """Bounded recorder of hop events for sampled root messages.

    Parameters
    ----------
    sample:
        Fraction of root messages to trace, in ``[0, 1]``.  The decision
        is deterministic per origin (the ``n``-th post from an origin is
        sampled iff ``floor((n+1)*sample) > floor(n*sample)``), so
        ``1.0`` traces everything and ``0.0`` nothing — no RNG draw, no
        perturbation of seeded streams.
    cap:
        Ring-buffer capacity in events.  When full, the oldest events
        are overwritten and :attr:`dropped` counts the overwrites.
    """

    __slots__ = ("sample", "cap", "dropped", "_events", "_write",
                 "_origin_seq")

    def __init__(self, sample: float = 1.0, cap: int = 1 << 18):
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.sample = sample
        self.cap = cap
        self.dropped = 0
        self._events: list[FlightEvent] = []
        self._write = 0
        self._origin_seq: dict[int, int] = {}

    # -- recording (hot path when attached) --------------------------------
    def begin(
        self,
        when: float,
        origin: int,
        kind: str,
        size: int = 0,
        group: int | None = None,
        msg_id: int = 0,
    ) -> int:
        """Open a trace for a root message posted at *origin*.

        Returns the trace id to stamp into the message's packets, or
        ``-1`` when this post falls outside the sampling fraction.
        """
        n = self._origin_seq.get(origin, 0)
        self._origin_seq[origin] = n + 1
        if int((n + 1) * self.sample) - int(n * self.sample) <= 0:
            return -1
        tid = origin * ORIGIN_STRIDE + n
        self.record(when, tid, "post", origin, -1, 0, {
            "kind": kind, "size": size, "group": group, "msg_id": msg_id,
        })
        return tid

    def record(
        self,
        when: float,
        trace_id: int,
        stage: str,
        node: int,
        uid: int = -1,
        chunk: int = 0,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """Append one hop event (ring semantics once *cap* is reached)."""
        ev = (when, trace_id, stage, node, uid, chunk, extra)
        events = self._events
        if len(events) < self.cap:
            events.append(ev)
        else:
            events[self._write % self.cap] = ev
            self.dropped += 1
        self._write += 1

    def note(self, when: float, stage: str, node: int,
             **extra: Any) -> None:
        """A global (trace-less) annotation event, e.g. a recovery heal."""
        self.record(when, -1, stage, node, -1, 0, extra)

    # -- reading / merging -------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[FlightEvent]:
        """Recorded events in append order (ring rotation undone)."""
        if self.dropped:
            split = self._write % self.cap
            return self._events[split:] + self._events[:split]
        return list(self._events)

    def traces(self) -> list[int]:
        """All trace ids seen, in first-appearance order."""
        seen: dict[int, None] = {}
        for ev in self.events:
            tid = ev[EV_TRACE]
            if tid >= 0 and tid not in seen:
                seen[tid] = None
        return list(seen)

    def fork(self) -> "FlightRecorder":
        """A fresh empty recorder with the same settings (one per shard)."""
        return FlightRecorder(sample=self.sample, cap=self.cap)

    def absorb(self, events: Iterable[FlightEvent]) -> None:
        """Fold merged shard events (already globally ordered) in."""
        for ev in events:
            ev_t = tuple(ev)
            evs = self._events
            if len(evs) < self.cap:
                evs.append(ev_t)
            else:
                evs[self._write % self.cap] = ev_t
                self.dropped += 1
            self._write += 1


def event_to_dict(ev: FlightEvent) -> dict[str, Any]:
    """One hop event as a JSON-ready dict."""
    out: dict[str, Any] = {
        "t": ev[EV_WHEN],
        "trace": ev[EV_TRACE],
        "stage": ev[EV_STAGE],
        "node": ev[EV_NODE],
    }
    if ev[EV_UID] >= 0:
        out["uid"] = ev[EV_UID]
    if ev[EV_CHUNK]:
        out["chunk"] = ev[EV_CHUNK]
    if ev[EV_EXTRA]:
        out.update(ev[EV_EXTRA])
    return out


def gauge_series(
    events: Iterable[FlightEvent],
) -> dict[str, list[tuple[float, int, float]]]:
    """Gauge samples grouped by name: ``{name: [(t, node, value), ...]}``.

    Feed the result to
    :func:`repro.obs.timeline.counter_events` to render the series as
    Chrome trace ``"C"`` counter tracks.
    """
    series: dict[str, list[tuple[float, int, float]]] = {}
    for ev in events:
        if ev[EV_STAGE] != "gauge":
            continue
        extra = ev[EV_EXTRA] or {}
        name = extra.get("name", "gauge")
        series.setdefault(name, []).append(
            (ev[EV_WHEN], ev[EV_NODE], extra.get("value", 0))
        )
    return series
