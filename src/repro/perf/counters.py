"""Lightweight kernel performance counters.

The simulation engine increments these on its hot path (one integer add
per processed event), so any harness — ``repro.perf.bench_kernel``, a
test, or an ad-hoc script — can compute events/sec around an arbitrary
workload without instrumenting every ``Simulator`` it creates:

    KERNEL_COUNTERS.reset()
    run_workload()
    rate = KERNEL_COUNTERS.events / wall_seconds

Counters are per-process: work fanned out by
:class:`repro.experiments.parallel.SweepExecutor` accumulates in the
worker processes, not the parent.
"""

from __future__ import annotations

__all__ = ["KernelCounters", "KERNEL_COUNTERS"]


class KernelCounters:
    """Process-global tallies maintained by the simulation kernel."""

    __slots__ = ("events", "simulators")

    def __init__(self) -> None:
        self.events = 0
        self.simulators = 0

    def reset(self) -> None:
        self.events = 0
        self.simulators = 0

    def snapshot(self) -> dict[str, int]:
        return {"events": self.events, "simulators": self.simulators}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelCounters events={self.events} sims={self.simulators}>"


#: The counters the engine increments.  Reset before a measured region.
KERNEL_COUNTERS = KernelCounters()
