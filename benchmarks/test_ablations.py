"""Bench: ablations of the design choices DESIGN.md calls out.

* Tree shape: the postal-model optimal tree vs binomial/chain/flat
  under NIC forwarding, across the three size regimes.
* Scheme decomposition: how much of the win is multisend vs forwarding
  (NIC-assisted = multisend only, host forwarding).
* Cost-model sensitivity: a faster host shrinks the win, a slower NIC
  shrinks it too — the mechanism lives in the host/NIC cost ratio.
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.experiments.runner import measure_gm_multicast
from repro.gm.params import GMCostModel


def test_tree_shape_ablation(once):
    def sweep():
        rows = {}
        for size in (64, 4096, 16384):
            rows[size] = {
                shape: measure_gm_multicast(
                    16, size, "nb", iterations=6, warmup=2,
                    tree_shape=shape,
                ).latency
                for shape in ("optimal", "binomial", "chain", "flat")
            }
        return rows

    rows = once(sweep)
    print()
    print(f"{'size':>7} {'optimal':>9} {'binomial':>9} {'chain':>9} {'flat':>9}")
    for size, by_shape in rows.items():
        print(f"{size:>7} " + " ".join(
            f"{by_shape[s]:>9.1f}" for s in ("optimal", "binomial", "chain", "flat")
        ))
    # The size-adapted optimal tree is never (meaningfully) worse than
    # any fixed shape, at any size.
    for size, by_shape in rows.items():
        best_fixed = min(
            by_shape["binomial"], by_shape["chain"], by_shape["flat"]
        )
        assert by_shape["optimal"] <= best_fixed * 1.10, size
    # And the fixed shapes each lose somewhere: flat loses at 16 KB,
    # chain loses at small sizes.
    assert rows[16384]["flat"] > 2 * rows[16384]["optimal"]
    assert rows[64]["chain"] > 2 * rows[64]["optimal"]


def test_scheme_decomposition(once):
    """multisend-only (NIC-assisted) sits between host-based and the
    full scheme: forwarding is what wins on deep trees."""

    def sweep():
        out = {}
        for size in (64, 8192):
            out[size] = {
                scheme: measure_gm_multicast(
                    16, size, scheme, iterations=6, warmup=2
                ).latency
                for scheme in ("hb", "nic_assisted", "nb")
            }
        return out

    rows = once(sweep)
    print()
    print(f"{'size':>7} {'host-based':>11} {'nic-assisted':>13} {'nic-based':>10}")
    for size, r in rows.items():
        print(f"{size:>7} {r['hb']:>11.1f} {r['nic_assisted']:>13.1f} "
              f"{r['nb']:>10.1f}")
        assert r["nb"] < r["nic_assisted"] <= r["hb"] * 1.02, size


def test_cost_model_sensitivity(once):
    def factor(cost):
        hb = measure_gm_multicast(8, 256, "hb", iterations=5, warmup=2,
                                  cost=cost)
        nb = measure_gm_multicast(8, 256, "nb", iterations=5, warmup=2,
                                  cost=cost)
        return hb.latency / nb.latency

    def sweep():
        return {
            "lanai9": factor(GMCostModel.lanai9()),
            "fast_host": factor(GMCostModel.fast_host()),
            "slow_nic": factor(GMCostModel.slow_nic()),
        }

    factors = once(sweep)
    print()
    for name, f in factors.items():
        print(f"  {name:10s}: improvement factor {f:.2f}")
    # A faster host narrows the gap the NIC scheme exploits.
    assert factors["fast_host"] < factors["lanai9"]
    # A slower NIC makes NIC-side replication/forwarding costlier too.
    assert factors["slow_nic"] < factors["lanai9"] * 1.6
    # The scheme still wins in every regime.
    assert all(f > 1.0 for f in factors.values())
