"""Registered (DMA-able) host memory accounting.

"GM can only send and receive data from registered memory" (paper §5).
Regions must be registered before the NIC may DMA them, and the paper's
forwarding scheme *pins* the host replica of a forwarded message until
every child has acknowledged — retransmission re-fetches the data from
host memory rather than holding scarce NIC receive buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.errors import RegistrationError

__all__ = ["RegisteredRegion", "RegisteredMemory"]

_region_ids = count()


@dataclass
class RegisteredRegion:
    """One registered host-memory region."""

    size: int
    owner: int  # host/node id
    region_id: int = field(default_factory=lambda: next(_region_ids))
    registered: bool = True
    #: DMA-in-progress / retransmit-hold references; deregistration is
    #: refused while nonzero.
    pin_count: int = 0

    def pin(self) -> None:
        if not self.registered:
            raise RegistrationError(
                f"region {self.region_id} pinned after deregistration"
            )
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise RegistrationError(f"region {self.region_id} unpin underflow")
        self.pin_count -= 1


class RegisteredMemory:
    """Per-node registry of DMA-able regions."""

    def __init__(self, owner: int, limit_bytes: int | None = None):
        self.owner = owner
        self.limit_bytes = limit_bytes
        self.regions: dict[int, RegisteredRegion] = {}
        self.registered_bytes = 0

    def register(self, size: int) -> RegisteredRegion:
        if size < 0:
            raise RegistrationError(f"negative region size {size}")
        if (
            self.limit_bytes is not None
            and self.registered_bytes + size > self.limit_bytes
        ):
            raise RegistrationError(
                f"registration limit exceeded on node {self.owner}: "
                f"{self.registered_bytes} + {size} > {self.limit_bytes}"
            )
        region = RegisteredRegion(size=size, owner=self.owner)
        self.regions[region.region_id] = region
        self.registered_bytes += size
        return region

    def deregister(self, region: RegisteredRegion) -> None:
        if region.region_id not in self.regions:
            raise RegistrationError(
                f"region {region.region_id} not registered on node {self.owner}"
            )
        if region.pin_count > 0:
            raise RegistrationError(
                f"region {region.region_id} is pinned "
                f"({region.pin_count} references) — e.g. held for multicast "
                "retransmission until all children acknowledge"
            )
        region.registered = False
        del self.regions[region.region_id]
        self.registered_bytes -= region.size

    def require(self, region: RegisteredRegion) -> None:
        """Raise unless *region* is usable for DMA on this node."""
        if region.owner != self.owner or region.region_id not in self.regions:
            raise RegistrationError(
                f"DMA on unregistered region {region.region_id} "
                f"(node {self.owner})"
            )
