"""GM reliability: ACK/timeout/retransmission under injected loss."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ReproError
from repro.gm.params import GMCostModel
from repro.net import BernoulliLoss, PacketType, ScriptedLoss


def run_transfer(loss, n_messages=5, size=512, n=2, seed=3, cost=None,
                 horizon=1_000_000.0):
    cluster = Cluster(
        ClusterConfig(n_nodes=n, seed=seed, cost=cost or GMCostModel()),
        loss=loss,
    )
    received = []

    def sender():
        port = cluster.port(0)
        handles = []
        for k in range(n_messages):
            handle = yield from port.send(1, size + k)
            handles.append(handle.done)
        yield cluster.sim.all_of(handles)

    def receiver():
        port = cluster.port(1)
        for _ in range(n_messages):
            completion = yield from port.receive()
            received.append(completion)

    s = cluster.spawn(sender())
    r = cluster.spawn(receiver())
    cluster.run(until=s & r)
    return cluster, received


def test_single_data_loss_recovered():
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.DATA and p.header.seq == 2
    )
    cluster, received = run_transfer(loss, n_messages=5)
    assert [c.size for c in received] == [512, 513, 514, 515, 516]
    assert cluster.node(0).gm.retransmissions >= 1


def test_ack_loss_covered_by_cumulative_ack():
    # A lost ACK is repaired for free by the cumulative ACK of the next
    # message — no retransmission needed.
    loss = ScriptedLoss(lambda p: p.header.ptype is PacketType.ACK, times=1)
    cluster, received = run_transfer(loss, n_messages=3)
    assert len(received) == 3
    assert cluster.node(0).gm.retransmissions == 0


def test_final_ack_loss_recovered_via_duplicate():
    # Losing the *last* ACK forces a timeout retransmission; the receiver
    # drops the duplicate data packet and re-acks it.
    loss = ScriptedLoss(lambda p: p.header.ptype is PacketType.ACK, times=1)
    cluster, received = run_transfer(loss, n_messages=1)
    assert len(received) == 1
    assert cluster.node(0).gm.retransmissions >= 1
    assert cluster.node(1).gm.duplicates_dropped >= 1


def test_loss_burst_recovered():
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.DATA, times=4
    )
    cluster, received = run_transfer(loss, n_messages=6)
    assert len(received) == 6


def test_multipacket_message_with_middle_packet_lost():
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.DATA and p.header.chunk == 2
    )
    cluster, received = run_transfer(loss, n_messages=1, size=16384)
    assert received[0].size == 16384
    # Go-back-N: the receiver drops later in-flight packets too.
    assert cluster.node(1).gm.out_of_order_dropped >= 1


def test_persistent_loss_eventually_fails_loudly():
    cost = GMCostModel(max_retransmits=3, ack_timeout=50.0)
    loss = BernoulliLoss(1.0, kinds=[PacketType.DATA])
    with pytest.raises(ReproError, match="unreachable"):
        run_transfer(loss, n_messages=1, cost=cost)


def test_moderate_random_loss_all_delivered():
    loss = BernoulliLoss(0.1)
    cluster, received = run_transfer(loss, n_messages=20, size=256)
    assert [c.size for c in received] == [256 + k for k in range(20)]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    rate=st.floats(min_value=0.0, max_value=0.35),
    n_messages=st.integers(min_value=1, max_value=12),
    size=st.sampled_from([0, 4, 512, 4096, 9000]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_exactly_once_in_order(rate, n_messages, size, seed):
    """Any loss pattern below saturation: every message arrives exactly
    once, in order, with the right size."""
    loss = BernoulliLoss(rate)
    _cluster, received = run_transfer(
        loss, n_messages=n_messages, size=size, seed=seed
    )
    assert [c.size for c in received] == [size + k for k in range(n_messages)]
    assert [c.msg_id for c in received] == sorted(c.msg_id for c in received)


def test_loss_free_run_has_no_retransmissions():
    cluster, _ = run_transfer(None, n_messages=10)
    assert cluster.node(0).gm.retransmissions == 0
    assert cluster.node(1).gm.duplicates_dropped == 0


def test_retransmit_statistics_exposed():
    loss = ScriptedLoss(lambda p: p.header.ptype is PacketType.DATA, times=2)
    cluster, _ = run_transfer(loss, n_messages=4)
    gm = cluster.node(0).gm
    assert gm.retransmissions >= 2
