"""Edge cases of the multicast engine and the multisend ablation."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ProtectionError, TokenExhausted
from repro.gm.params import GMCostModel
from repro.mcast import install_group, multicast
from repro.mcast.group import GroupState
from repro.mcast.manager import next_group_id, nic_based_multicast
from repro.trees import SpanningTree, build_tree


def test_multisend_protection_enforced():
    cluster = Cluster(ClusterConfig(n_nodes=2))
    tree = build_tree(0, [1], shape="flat")
    gid = next_group_id()
    install_group(cluster, gid, tree)
    with pytest.raises(ProtectionError):
        next(
            cluster.node(0).mcast.multicast_send(
                cluster.port(0), gid, 8, caller=object()
            )
        )


def test_multisend_token_exhaustion():
    cost = GMCostModel(send_tokens_per_port=1)
    cluster = Cluster(ClusterConfig(n_nodes=2, cost=cost))
    tree = build_tree(0, [1], shape="flat")
    gid = next_group_id()
    install_group(cluster, gid, tree)
    errors = []

    def root():
        try:
            yield from nic_based_multicast(cluster, gid, 8, 0)
            yield from nic_based_multicast(cluster, gid, 8, 0)
        except TokenExhausted as exc:
            errors.append(exc)

    def rx():
        yield from cluster.port(1).receive()

    procs = [cluster.spawn(root()), cluster.spawn(rx())]
    cluster.run()
    assert len(errors) == 1


def test_multisend_into_childless_group_completes():
    # A one-member "group": nothing to send, token returns immediately.
    cluster = Cluster(ClusterConfig(n_nodes=2))
    gid = next_group_id()
    cluster.node(0).mcast.install_group_now(
        GroupState(group_id=gid, root=0, parent=None, children=())
    )
    done = {}

    def root():
        handle = yield from nic_based_multicast(cluster, gid, 64, 0)
        yield handle.done
        done["t"] = cluster.now

    cluster.run(until=cluster.spawn(root()))
    assert done["t"] < 5.0
    assert cluster.port(0).free_send_tokens == cluster.cost.send_tokens_per_port


def test_multicast_to_uninstalled_group_recovers_after_install():
    # The paper's demand-driven design implies packets can race group
    # creation; an unknown-group packet is dropped and the parent's
    # timeout recovers once the member installs.
    cost = GMCostModel(ack_timeout=100.0)
    cluster = Cluster(ClusterConfig(n_nodes=3, cost=cost))
    tree = build_tree(0, [1, 2], shape="chain")
    gid = next_group_id()
    from repro.mcast.group import local_views

    views = local_views(gid, tree)
    # Install everywhere except node 2, which is late.
    cluster.node(0).mcast.install_group_now(views[0])
    cluster.node(1).mcast.install_group_now(views[1])
    delivered = {}

    def root():
        handle = yield from nic_based_multicast(cluster, gid, 128, 0)
        yield handle.done

    def late_installer():
        yield cluster.sim.timeout(250.0)
        cluster.node(2).mcast.install_group_now(views[2])

    def member(i):
        completion = yield from cluster.port(i).receive()
        assert completion.group == gid
        delivered[i] = cluster.now

    procs = [
        cluster.spawn(root()),
        cluster.spawn(late_installer()),
        cluster.spawn(member(1)),
        cluster.spawn(member(2)),
    ]
    cluster.run(until=cluster.sim.all_of(procs))
    assert delivered[1] < 250.0
    assert delivered[2] > 250.0  # recovered by node 1's retransmission
    assert cluster.node(2).mcast.unknown_group_dropped >= 1
    assert cluster.node(1).mcast.retransmissions >= 1


class TestInlineRewriteAblation:
    def run_multisend(self, inline, n_dest=8, size=64):
        from repro.experiments.runner import measure_multisend

        cost = GMCostModel(multisend_inline_rewrite=inline)
        return measure_multisend(
            n_dest, size, "nb", iterations=8, warmup=2, cost=cost
        )

    def test_inline_rewrite_is_faster(self):
        # "The benefits of the third approach could be more" — §5.
        with_cb = self.run_multisend(inline=False)
        inline = self.run_multisend(inline=True)
        assert inline < with_cb
        # Saved ~one rewrite per replica.
        saved = with_cb - inline
        cost = GMCostModel()
        assert saved == pytest.approx(
            7 * cost.nic_header_rewrite, rel=0.6
        )

    def test_inline_rewrite_still_correct(self):
        cost = GMCostModel(multisend_inline_rewrite=True)
        cluster = Cluster(ClusterConfig(n_nodes=6, cost=cost))
        tree = build_tree(0, range(1, 6), shape="optimal", cost=cost,
                          size=512)
        result = multicast(cluster, tree, 512)
        assert sorted(result["delivered"]) == [1, 2, 3, 4, 5]
